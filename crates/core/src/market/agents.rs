//! The seller, broker, and buyer agents and the purchase protocol.

use crate::error::ErrorTransform;
use crate::market::curves::{buyer_points, DemandCurve, ValueCurve};
use crate::market::durability::DurabilitySink;
use crate::mechanism::{GaussianMechanism, NoiseMechanism};
use crate::pricing::{BatchScratch, PhiMemo, PricingFunction, PricingTable};
use crate::revenue::{solve_bv_dp, BuyerPoint, RevenueSolution};
use mbp_data::TrainTest;
use mbp_ml::train::{gradient_descent, newton_logistic, RidgeSolver, TrainConfig};
use mbp_ml::{LinearModel, LogisticLoss, ModelKind, SmoothedHingeLoss};
use mbp_randx::MbpRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Static trace label for a model kind (the `listing` dimension of the
/// `(listing, mechanism, phase)` latency attribution; no per-quote
/// allocation).
pub(crate) fn kind_label(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::LinearRegression => "linear_regression",
        ModelKind::LogisticRegression => "logistic_regression",
        ModelKind::LinearSvm => "linear_svm",
    }
}

/// Errors raised by market interactions.
#[derive(Debug)]
pub enum MarketError {
    /// The requested model type is not on the broker's menu.
    UnsupportedModel(ModelKind),
    /// Training the optimal instance failed (e.g. singular Gram matrix).
    TrainingFailed(mbp_linalg::LinalgError),
    /// The requested expected error is unachievable (below the noiseless
    /// floor or outside the transform's range).
    UnachievableError(f64),
    /// The buyer's budget does not afford any positive-precision instance.
    InsufficientBudget(f64),
    /// Malformed request (e.g. non-positive NCP).
    BadRequest(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnsupportedModel(kind) => {
                write!(f, "model {:?} is not on the broker's menu", kind)
            }
            MarketError::TrainingFailed(e) => write!(f, "training the optimal model failed: {e}"),
            MarketError::UnachievableError(e) => {
                write!(
                    f,
                    "expected error {e} is unachievable for this model/dataset"
                )
            }
            MarketError::InsufficientBudget(b) => {
                write!(f, "budget {b} cannot afford any model instance")
            }
            MarketError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for MarketError {}

impl From<mbp_linalg::LinalgError> for MarketError {
    fn from(e: mbp_linalg::LinalgError) -> Self {
        MarketError::TrainingFailed(e)
    }
}

/// The seller: owns the dataset for sale and the market-research curves
/// (Figure 1(A), Figure 2(a)).
#[derive(Debug)]
pub struct Seller {
    /// The dataset `D = (D_train, D_test)` offered for sale.
    pub data: TrainTest,
    /// Inverse-NCP grid over which the market operates.
    pub grid: Vec<f64>,
    /// Market-research value curve.
    pub value_curve: ValueCurve,
    /// Market-research demand curve.
    pub demand_curve: DemandCurve,
}

impl Seller {
    /// Creates a seller listing.
    ///
    /// # Panics
    /// Panics when `grid` is empty or not strictly ascending — a listing
    /// with no sampleable market grid is a programming error, caught at
    /// construction rather than deep inside curve sampling.
    // LINT-SCOPE(reach-panic): sellers are built at simulation setup,
    // never on the serve path; the call-graph pass proves it.
    pub fn new(
        data: TrainTest,
        grid: Vec<f64>,
        value_curve: ValueCurve,
        demand_curve: DemandCurve,
    ) -> Self {
        if let Err(e) = super::curves::validate_grid(&grid) {
            panic!("invalid seller grid: {e}");
        }
        Seller {
            data,
            grid,
            value_curve,
            demand_curve,
        }
    }

    /// The buyer population implied by the research curves.
    // LINT-SCOPE(reach-panic): simulation-side population synthesis; the
    // grid was validated in `Seller::new` and no serve root reaches it.
    pub fn buyer_population(&self) -> Vec<BuyerPoint> {
        buyer_points(&self.grid, &self.value_curve, &self.demand_curve)
            .expect("seller grid validated at construction")
    }
}

/// A buyer with a budget (used by the examples; the protocol itself is
/// stateless and lives in [`Broker::buy`]).
#[derive(Debug, Clone)]
pub struct Buyer {
    /// Display name.
    pub name: String,
    /// Price budget.
    pub budget: f64,
}

impl Buyer {
    /// Creates a buyer.
    pub fn new(name: impl Into<String>, budget: f64) -> Self {
        assert!(budget >= 0.0 && budget.is_finite(), "budget must be >= 0");
        Buyer {
            name: name.into(),
            budget,
        }
    }
}

/// The buyer's three purchase options (Section 3.2, broker–buyer step 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PurchaseRequest {
    /// Pick a specific point on the price–error curve by its NCP.
    AtNcp(f64),
    /// "Cheapest instance with expected error ≤ ε̂."
    ErrorBudget(f64),
    /// "Most accurate instance with price ≤ p̂."
    PriceBudget(f64),
}

/// One fulfilled purchase.
#[derive(Debug, Clone)]
pub struct Sale {
    /// The released noisy model instance.
    pub model: LinearModel,
    /// Price charged.
    pub price: f64,
    /// NCP of the released instance.
    pub ncp: f64,
    /// Expected buyer-facing error at that NCP.
    pub expected_error: f64,
}

/// Reusable buffers for the zero-allocation batch purchase path
/// ([`Broker::buy_batch_into`]).
///
/// The arena owns one [`Sale`] slot per request position plus the
/// resolve/price/binning scratch. Slots are grown (and their model
/// buffers cloned) only when a batch is larger than any seen before;
/// after one warm-up batch at the steady-state size — and with ledger
/// capacity reserved via [`Broker::reserve_ledger`] — repeat batches
/// perform no heap allocation.
#[derive(Debug, Default)]
pub struct SaleArena {
    sales: Vec<Sale>,
    outcomes: Vec<Result<f64, MarketError>>,
    xs: Vec<f64>,
    prices: Vec<f64>,
    scratch: BatchScratch,
    len: usize,
}

impl SaleArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        SaleArena::default()
    }

    /// Number of requests in the most recent batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no batch has been run (or the last batch was empty).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-request outcomes of the most recent batch, in request order:
    /// `Ok` borrows the arena-resident [`Sale`], `Err` the rejection.
    pub fn results(&self) -> impl Iterator<Item = Result<&Sale, &MarketError>> {
        self.outcomes
            .iter()
            .take(self.len)
            .zip(self.sales.iter())
            .map(|(outcome, sale)| match outcome {
                Ok(_) => Ok(sale),
                Err(e) => Err(e),
            })
    }
}

/// Ledger entry kept by the broker for revenue accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Model type sold.
    pub kind: ModelKind,
    /// NCP of the sold instance.
    pub ncp: f64,
    /// Price paid.
    pub price: f64,
}

/// A `(δ, expected error, price)` sample of the buyer-facing curve the
/// broker displays (Figure 1(C), step 2).
#[derive(Debug, Clone, Copy)]
pub struct PriceErrorPoint {
    /// Noise control parameter.
    pub ncp: f64,
    /// Expected error at this NCP.
    pub expected_error: f64,
    /// Price at this NCP.
    pub price: f64,
}

/// The buyer-facing price–error curve.
#[derive(Debug, Clone)]
pub struct PriceErrorCurve {
    /// Samples in ascending-NCP order.
    pub points: Vec<PriceErrorPoint>,
}

impl PriceErrorCurve {
    /// `true` when price is non-increasing and error non-decreasing along
    /// the curve — the shape the buyer should always see in a well-behaved
    /// market.
    pub fn is_well_formed(&self) -> bool {
        self.points
            .iter()
            .zip(self.points.iter().skip(1))
            .all(|(a, b)| {
                a.ncp <= b.ncp
                    && a.price >= b.price - 1e-9
                    && a.expected_error <= b.expected_error + 1e-9
            })
    }

    /// Cheapest price at which the curve offers expected error ≤ `err`,
    /// linearly interpolating price between samples. `None` when `err` is
    /// below the most accurate sampled point (or the curve is empty).
    pub fn price_for_error(&self, err: f64) -> Option<f64> {
        let first = self.points.first()?;
        // NaN budgets are unsatisfiable, like budgets below the curve floor.
        if err.is_nan() || err < first.expected_error {
            return None;
        }
        // Largest sampled NCP whose error is still within budget: errors are
        // non-decreasing along the curve, so partition on the error budget.
        let idx = self.points.partition_point(|p| p.expected_error <= err);
        // `first` is within budget, so the partition is never empty.
        debug_assert!(idx >= 1);
        let lo = self.points.get(idx.wrapping_sub(1))?;
        if idx == self.points.len() {
            return Some(lo.price);
        }
        let hi = self.points.get(idx)?;
        if hi.expected_error <= lo.expected_error {
            return Some(hi.price.min(lo.price));
        }
        let t = (err - lo.expected_error) / (hi.expected_error - lo.expected_error);
        Some(lo.price + t * (hi.price - lo.price))
    }
}

/// Per-request outcomes of a batched quote: one `(Sale, Transaction)` or
/// per-request rejection, in request order.
pub type QuoteBatch = Vec<Result<(Sale, Transaction), MarketError>>;

/// Maximum number of requests accepted by one batch call.
///
/// Every batch entry point ([`Broker::quote_batch`], [`Broker::buy_batch`],
/// [`Broker::buy_batch_into`], [`Broker::quote_batch_into`],
/// [`Broker::price_batch`] and the `SharedBroker` wrappers) rejects empty
/// batches and batches larger than this cap with
/// [`MarketError::BadRequest`] before resolving the listing. The cap bounds
/// how much work a single caller can queue behind one shared read guard
/// (and, through `mbp-serve`, behind one connection's dispatch turn); the
/// empty-batch rejection turns a front-end bookkeeping bug into a typed
/// error instead of a silent no-op that still pays the listing lookup.
pub const MAX_BATCH: usize = 4096;

/// Shared admission check for all batch entry points: empty and oversized
/// batches are a caller error, reported before any listing state is read.
fn check_batch(requests: &[PurchaseRequest]) -> Result<(), MarketError> {
    if requests.is_empty() {
        return Err(MarketError::BadRequest(
            "empty batch: batch entry points require at least one request".to_string(),
        ));
    }
    if requests.len() > MAX_BATCH {
        return Err(MarketError::BadRequest(format!(
            "batch of {} requests exceeds the MAX_BATCH cap of {MAX_BATCH}",
            requests.len()
        )));
    }
    Ok(())
}

/// A priced-but-not-purchased resolution of one [`PurchaseRequest`]: the
/// quote path of the network protocol. No model is released, no noise is
/// drawn, and the ledger is untouched, so producing one consumes no RNG.
#[derive(Debug, Clone, Copy)]
pub struct PriceQuote {
    /// Resolved noise control parameter.
    pub ncp: f64,
    /// Price at that NCP under the published listing.
    pub price: f64,
    /// Expected buyer-facing error at that NCP.
    pub expected_error: f64,
}

struct MenuEntry {
    model: LinearModel,
    /// Ridge coefficient the instance was trained with. Re-supporting
    /// linear regression at a different ridge re-solves from the cached
    /// Gram factorization instead of being silently ignored.
    ridge: f64,
}

/// A published offer: the pricing function and error transform under which
/// a model type is currently for sale, plus the serving-side artifacts
/// compiled at publish time: the flat [`PricingTable`] and the memoized
/// error-inverse [`PhiMemo`]. Re-publishing replaces the whole listing, so
/// the compiled artifacts can never go stale.
struct Listing {
    pricing: PricingFunction,
    table: PricingTable,
    phi: PhiMemo,
    transform: Box<dyn ErrorTransform + Send + Sync>,
}

/// The broker: trains optimal instances (one-time cost), derives pricing,
/// and fulfills purchases by injecting fresh noise per sale.
pub struct Broker {
    data: TrainTest,
    mechanism: Box<dyn NoiseMechanism>,
    menu: HashMap<ModelKind, MenuEntry>,
    listings: HashMap<ModelKind, Listing>,
    ledger: Vec<Transaction>,
    /// Lazily-built ridge solver: the train-split Gram matrix is formed
    /// once, and Cholesky factors are cached per ridge value.
    ridge_solver: Option<RidgeSolver>,
    /// Optional write-ahead observer; see [`crate::market::durability`].
    /// Sale hooks fire at origination sites only, never in
    /// [`Broker::settle`] (the stripe-drain path would double-record).
    durability: Option<Arc<dyn DurabilitySink>>,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("mechanism", &self.mechanism.name())
            .field("menu_size", &self.menu.len())
            .field("ledger_len", &self.ledger.len())
            .finish()
    }
}

impl Broker {
    /// Creates a broker for `data` using the paper's Gaussian mechanism.
    pub fn new(data: TrainTest) -> Self {
        Broker::with_mechanism(data, Box::new(GaussianMechanism))
    }

    /// Creates a broker with a custom (unbiased, calibrated) mechanism.
    pub fn with_mechanism(data: TrainTest, mechanism: Box<dyn NoiseMechanism>) -> Self {
        Broker {
            data,
            mechanism,
            menu: HashMap::new(),
            listings: HashMap::new(),
            ledger: Vec::new(),
            ridge_solver: None,
            durability: None,
        }
    }

    /// Attaches a durability sink: every later support, publish, and
    /// completed sale is forwarded to `sink` at its origination site.
    ///
    /// Attach *after* replaying a recovered log into this broker, so the
    /// recovery replay itself is not appended back to the log it came
    /// from.
    pub fn set_durability(&mut self, sink: Arc<dyn DurabilitySink>) {
        self.durability = Some(sink);
    }

    /// Detaches the durability sink, returning it if one was attached.
    pub fn take_durability(&mut self) -> Option<Arc<dyn DurabilitySink>> {
        self.durability.take()
    }

    /// Publishes a standing offer for `kind`: later purchases can go
    /// through [`Broker::buy_listed`] without re-supplying the pricing and
    /// transform on every call. The model must already be on the menu.
    ///
    /// Publishing is where the serving fast path is built: the pricing
    /// function is compiled into a [`PricingTable`] and the transform's
    /// error-inverse is memoized into a [`PhiMemo`], so every subsequent
    /// quote against the listing is a table lookup.
    pub fn publish(
        &mut self,
        kind: ModelKind,
        pricing: PricingFunction,
        transform: Box<dyn ErrorTransform + Send + Sync>,
    ) -> Result<(), MarketError> {
        let _trace =
            mbp_obs::trace_root_hinted("mbp.core.publish", kind_label(kind), self.mechanism.name());
        if !self.menu.contains_key(&kind) {
            mbp_obs::inc("mbp.core.publish.rejected");
            return Err(MarketError::UnsupportedModel(kind));
        }
        let table = pricing.compile();
        let phi = PhiMemo::new(transform.as_ref(), &table);
        if let Some(sink) = &self.durability {
            sink.record_publish(kind, pricing.grid(), pricing.prices());
        }
        self.listings.insert(
            kind,
            Listing {
                pricing,
                table,
                phi,
                transform,
            },
        );
        mbp_obs::inc("mbp.core.publish.count");
        mbp_obs::event(
            mbp_obs::Verbosity::Info,
            "mbp.core.broker",
            "listing published",
            &[("kind", format!("{kind:?}"))],
        );
        Ok(())
    }

    /// Fulfills a purchase against the *published* listing for `kind`,
    /// served from the compiled pricing table.
    pub fn buy_listed(
        &mut self,
        kind: ModelKind,
        request: PurchaseRequest,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let _span = mbp_obs::span("mbp.core.buy");
        let trace =
            mbp_obs::trace_root_hinted("mbp.core.buy", kind_label(kind), self.mechanism.name());
        let result = (|| {
            let lookup = trace.phase(mbp_obs::Phase::Lookup);
            let listing = self
                .listings
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            let entry = self
                .menu
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            drop(lookup);
            mbp_obs::inc("mbp.core.pricing.table_hit");
            let (sale, tx) = execute_purchase(
                entry,
                self.mechanism.as_ref(),
                &PricePath::Table(&listing.table),
                Some(&listing.phi),
                listing.transform.as_ref(),
                kind,
                request,
                rng,
                &trace,
            )?;
            let ledger = trace.phase(mbp_obs::Phase::Ledger);
            if let Some(sink) = &self.durability {
                sink.record_sale(&tx);
            }
            self.ledger.push(tx);
            drop(ledger);
            Ok(sale)
        })();
        record_purchase_outcome(result.as_ref());
        result
    }

    /// Zero-allocation variant of [`Broker::buy_listed`]: writes the
    /// release into `sale`, reusing its model buffer when the kind and
    /// dimension already match. After one warm-up call (and with ledger
    /// capacity reserved via [`Broker::reserve_ledger`]), steady-state
    /// successful purchases perform no heap allocation.
    pub fn buy_listed_into(
        &mut self,
        kind: ModelKind,
        request: PurchaseRequest,
        rng: &mut MbpRng,
        sale: &mut Sale,
    ) -> Result<(), MarketError> {
        let _span = mbp_obs::span("mbp.core.buy");
        let trace =
            mbp_obs::trace_root_hinted("mbp.core.buy", kind_label(kind), self.mechanism.name());
        let result = (|| {
            let lookup = trace.phase(mbp_obs::Phase::Lookup);
            let listing = self
                .listings
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            let entry = self
                .menu
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            drop(lookup);
            mbp_obs::inc("mbp.core.pricing.table_hit");
            let tx = execute_purchase_into(
                entry,
                self.mechanism.as_ref(),
                &listing.table,
                &listing.phi,
                listing.transform.as_ref(),
                kind,
                request,
                rng,
                sale,
                &trace,
            )?;
            let ledger = trace.phase(mbp_obs::Phase::Ledger);
            if let Some(sink) = &self.durability {
                sink.record_sale(&tx);
            }
            self.ledger.push(tx);
            drop(ledger);
            Ok(())
        })();
        match &result {
            Ok(()) => {
                mbp_obs::inc("mbp.core.buy.count");
                mbp_obs::gauge_add("mbp.core.revenue.total", sale.price);
            }
            Err(e) => record_purchase_failure(e),
        }
        result
    }

    /// Quotes a whole batch against the published listing for `kind`: the
    /// listing, menu entry, and compiled table are resolved once and reused
    /// across all requests. Returns one result per request, in order; the
    /// outer error fires only when `kind` has no listing. The ledger is
    /// untouched — pair with [`Broker::settle`] or use
    /// [`Broker::buy_batch`].
    ///
    /// Internally the batch runs the three-pass binned kernel: resolve all
    /// NCPs (no RNG), price all precisions through
    /// [`PricingTable::price_at_batch`] (requests binned by knot segment,
    /// each segment's constants loaded once, results scattered back into
    /// request order), then draw noise in request order. Prices are
    /// bit-identical to a sequential [`Broker::buy_listed`] loop and the
    /// RNG stream is consumed identically (rejected requests draw
    /// nothing), so result digests are unchanged.
    pub fn quote_batch(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
    ) -> Result<QuoteBatch, MarketError> {
        check_batch(requests)?;
        let _span = mbp_obs::span("mbp.core.buy_batch");
        // The whole batch is driven by one RNG, so every per-request trace
        // root carries the batch's replay seed: a slow quote anywhere in
        // the batch is replayed by re-running the batch from that seed.
        let batch_seed = if mbp_obs::is_tracing() {
            mbp_obs::trace::take_request_seed()
        } else {
            0
        };
        let listing = self
            .listings
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        let entry = self
            .menu
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        mbp_obs::counter_add("mbp.core.pricing.table_hit", requests.len() as u64);
        let pricing = PricePath::Table(&listing.table);
        // Pass 1 — resolve every request to its NCP (consumes no RNG).
        let resolve_span = mbp_obs::span("mbp.core.buy_batch.resolve");
        let mut resolved: Vec<Result<f64, MarketError>> = Vec::with_capacity(requests.len());
        let mut xs: Vec<f64> = Vec::with_capacity(requests.len());
        for &request in requests {
            let r = resolve_ncp(
                &pricing,
                Some(&listing.phi),
                listing.transform.as_ref(),
                request,
            );
            xs.push(r.as_ref().map_or(f64::NAN, |&d| 1.0 / d));
            resolved.push(r);
        }
        drop(resolve_span);
        // Pass 2 — binned pricing over the precision vector.
        let price_span = mbp_obs::span("mbp.core.buy_batch.price");
        let mut scratch = BatchScratch::default();
        let mut prices: Vec<f64> = Vec::new();
        listing.table.price_at_batch(&xs, &mut scratch, &mut prices);
        drop(price_span);
        // Pass 3 — noise and Sale assembly, strictly in request order so
        // the RNG stream matches the sequential loop.
        let mut out = Vec::with_capacity(requests.len());
        let mut served = 0u64;
        let mut revenue = 0.0;
        for (i, r) in resolved.into_iter().enumerate() {
            match r {
                Err(e) => out.push(Err(e)),
                Ok(ncp) => {
                    let trace = mbp_obs::trace_root(
                        "mbp.core.buy",
                        kind_label(kind),
                        self.mechanism.name(),
                        batch_seed,
                    );
                    let price = prices.get(i).copied().unwrap_or(0.0);
                    let noise = trace.phase(mbp_obs::Phase::Noise);
                    let weights = self.mechanism.perturb(entry.model.weights(), ncp, rng);
                    let model = entry.model.with_weights(weights);
                    drop(noise);
                    served += 1;
                    revenue += price;
                    out.push(Ok((
                        Sale {
                            model,
                            price,
                            ncp,
                            expected_error: listing.transform.expected_error(ncp),
                        },
                        Transaction { kind, ncp, price },
                    )));
                }
            }
        }
        mbp_obs::counter_add("mbp.core.buy.count", served);
        mbp_obs::counter_add("mbp.core.buy.rejected", requests.len() as u64 - served);
        mbp_obs::gauge_add("mbp.core.revenue.total", revenue);
        Ok(out)
    }

    /// Batch purchase against the published listing: quotes every request
    /// via [`Broker::quote_batch`] and settles the successful transactions
    /// into the ledger in request order. RNG consumption matches a
    /// sequential loop of [`Broker::buy_listed`] calls exactly.
    pub fn buy_batch(
        &mut self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
    ) -> Result<Vec<Result<Sale, MarketError>>, MarketError> {
        let results = self.quote_batch(kind, requests, rng)?;
        self.ledger
            .reserve(results.iter().filter(|r| r.is_ok()).count());
        Ok(results
            .into_iter()
            .map(|r| {
                r.map(|(sale, tx)| {
                    if let Some(sink) = &self.durability {
                        sink.record_sale(&tx);
                    }
                    self.ledger.push(tx);
                    sale
                })
            })
            .collect())
    }

    /// Zero-allocation variant of [`Broker::buy_batch`]: runs the same
    /// three-pass binned kernel but writes every release into `arena`'s
    /// resident [`Sale`] slots (reusing their model buffers) and keeps all
    /// resolve/price/binning scratch in the arena. Successful transactions
    /// settle into the ledger in request order; read per-request outcomes
    /// with [`SaleArena::results`].
    ///
    /// Prices, noise draws, and RNG consumption are bit-identical to
    /// [`Broker::buy_batch`] and to a sequential [`Broker::buy_listed`]
    /// loop. After one warm-up batch at the steady-state batch size (and
    /// with ledger capacity reserved via [`Broker::reserve_ledger`]),
    /// repeat batches perform no heap allocation.
    pub fn buy_batch_into(
        &mut self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
        arena: &mut SaleArena,
    ) -> Result<(), MarketError> {
        check_batch(requests)?;
        let _span = mbp_obs::span("mbp.core.buy_batch");
        let batch_seed = if mbp_obs::is_tracing() {
            mbp_obs::trace::take_request_seed()
        } else {
            0
        };
        let listing = self
            .listings
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        let entry = self
            .menu
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        mbp_obs::counter_add("mbp.core.pricing.table_hit", requests.len() as u64);
        let pricing = PricePath::Table(&listing.table);
        // Pass 1 — resolve (no RNG), recording precision 1/δ per request.
        let resolve_span = mbp_obs::span("mbp.core.buy_batch.resolve");
        arena.len = requests.len();
        arena.outcomes.clear();
        arena.xs.clear();
        for &request in requests {
            let r = resolve_ncp(
                &pricing,
                Some(&listing.phi),
                listing.transform.as_ref(),
                request,
            );
            arena.xs.push(r.as_ref().map_or(f64::NAN, |&d| 1.0 / d));
            arena.outcomes.push(r);
        }
        drop(resolve_span);
        // Pass 2 — binned pricing into the arena's price buffer.
        let price_span = mbp_obs::span("mbp.core.buy_batch.price");
        listing
            .table
            .price_at_batch(&arena.xs, &mut arena.scratch, &mut arena.prices);
        drop(price_span);
        // Grow the Sale pool to the batch size (warm-up cost only).
        while arena.sales.len() < requests.len() {
            arena.sales.push(Sale {
                model: entry.model.clone(),
                price: 0.0,
                ncp: 0.0,
                expected_error: 0.0,
            });
        }
        // Pass 3 — noise and settlement, strictly in request order.
        let mut served = 0u64;
        let mut revenue = 0.0;
        for (i, (outcome, sale)) in arena
            .outcomes
            .iter()
            .zip(arena.sales.iter_mut())
            .enumerate()
        {
            let Ok(&ncp) = outcome.as_ref() else { continue };
            let trace = mbp_obs::trace_root(
                "mbp.core.buy",
                kind_label(kind),
                self.mechanism.name(),
                batch_seed,
            );
            let price = arena.prices.get(i).copied().unwrap_or(0.0);
            if sale.model.kind() != kind || sale.model.dim() != entry.model.dim() {
                sale.model = entry.model.clone();
            }
            let noise = trace.phase(mbp_obs::Phase::Noise);
            self.mechanism
                .perturb_into(entry.model.weights(), ncp, rng, sale.model.weights_mut());
            drop(noise);
            sale.price = price;
            sale.ncp = ncp;
            sale.expected_error = listing.transform.expected_error(ncp);
            let ledger = trace.phase(mbp_obs::Phase::Ledger);
            let tx = Transaction { kind, ncp, price };
            if let Some(sink) = &self.durability {
                sink.record_sale(&tx);
            }
            self.ledger.push(tx);
            drop(ledger);
            served += 1;
            revenue += price;
        }
        mbp_obs::counter_add("mbp.core.buy.count", served);
        mbp_obs::counter_add("mbp.core.buy.rejected", requests.len() as u64 - served);
        mbp_obs::gauge_add("mbp.core.revenue.total", revenue);
        Ok(())
    }

    /// Settlement-free variant of [`Broker::buy_batch_into`] for callers
    /// that hold only shared access (the `SharedBroker` network path):
    /// runs the identical three-pass binned kernel into `arena` — resolve,
    /// binned pricing, noise in request order — but leaves the ledger
    /// untouched, so the caller settles the arena's successful sales
    /// itself (e.g. under a single stripe lock).
    ///
    /// Prices, noise draws, and RNG consumption are bit-identical to
    /// [`Broker::buy_batch_into`] and to a sequential
    /// [`Broker::buy_listed`] loop; only the ledger side effect is split
    /// out.
    pub fn quote_batch_into(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
        arena: &mut SaleArena,
    ) -> Result<(), MarketError> {
        check_batch(requests)?;
        let _span = mbp_obs::span("mbp.core.buy_batch");
        let batch_seed = if mbp_obs::is_tracing() {
            mbp_obs::trace::take_request_seed()
        } else {
            0
        };
        let listing = self
            .listings
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        let entry = self
            .menu
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        mbp_obs::counter_add("mbp.core.pricing.table_hit", requests.len() as u64);
        let pricing = PricePath::Table(&listing.table);
        // Pass 1 — resolve (no RNG), recording precision 1/δ per request.
        let resolve_span = mbp_obs::span("mbp.core.buy_batch.resolve");
        arena.len = requests.len();
        arena.outcomes.clear();
        arena.xs.clear();
        for &request in requests {
            let r = resolve_ncp(
                &pricing,
                Some(&listing.phi),
                listing.transform.as_ref(),
                request,
            );
            arena.xs.push(r.as_ref().map_or(f64::NAN, |&d| 1.0 / d));
            arena.outcomes.push(r);
        }
        drop(resolve_span);
        // Pass 2 — binned pricing into the arena's price buffer.
        let price_span = mbp_obs::span("mbp.core.buy_batch.price");
        listing
            .table
            .price_at_batch(&arena.xs, &mut arena.scratch, &mut arena.prices);
        drop(price_span);
        // Grow the Sale pool to the batch size (warm-up cost only).
        while arena.sales.len() < requests.len() {
            arena.sales.push(Sale {
                model: entry.model.clone(),
                price: 0.0,
                ncp: 0.0,
                expected_error: 0.0,
            });
        }
        // Pass 3 — noise, strictly in request order (identical RNG stream
        // to the settling variant; the ledger push is the caller's job).
        let mut served = 0u64;
        let mut revenue = 0.0;
        for (i, (outcome, sale)) in arena
            .outcomes
            .iter()
            .zip(arena.sales.iter_mut())
            .enumerate()
        {
            let Ok(&ncp) = outcome.as_ref() else { continue };
            let trace = mbp_obs::trace_root(
                "mbp.core.buy",
                kind_label(kind),
                self.mechanism.name(),
                batch_seed,
            );
            let price = arena.prices.get(i).copied().unwrap_or(0.0);
            if sale.model.kind() != kind || sale.model.dim() != entry.model.dim() {
                sale.model = entry.model.clone();
            }
            let noise = trace.phase(mbp_obs::Phase::Noise);
            self.mechanism
                .perturb_into(entry.model.weights(), ncp, rng, sale.model.weights_mut());
            drop(noise);
            sale.price = price;
            sale.ncp = ncp;
            sale.expected_error = listing.transform.expected_error(ncp);
            served += 1;
            revenue += price;
        }
        mbp_obs::counter_add("mbp.core.buy.count", served);
        mbp_obs::counter_add("mbp.core.buy.rejected", requests.len() as u64 - served);
        mbp_obs::gauge_add("mbp.core.revenue.total", revenue);
        Ok(())
    }

    /// Prices a batch of requests without purchasing: the network quote
    /// path. Resolution and binned pricing run exactly as in
    /// [`Broker::quote_batch`] (passes 1–2 of the kernel), but no model is
    /// released, no RNG is consumed, and the ledger is untouched — so a
    /// quote storm cannot perturb the noise stream of interleaved buys.
    pub fn price_batch(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
    ) -> Result<Vec<Result<PriceQuote, MarketError>>, MarketError> {
        check_batch(requests)?;
        let _span = mbp_obs::span("mbp.core.price_batch");
        let listing = self
            .listings
            .get(&kind)
            .ok_or(MarketError::UnsupportedModel(kind))?;
        mbp_obs::counter_add("mbp.core.pricing.table_hit", requests.len() as u64);
        let pricing = PricePath::Table(&listing.table);
        let mut resolved: Vec<Result<f64, MarketError>> = Vec::with_capacity(requests.len());
        let mut xs: Vec<f64> = Vec::with_capacity(requests.len());
        for &request in requests {
            let r = resolve_ncp(
                &pricing,
                Some(&listing.phi),
                listing.transform.as_ref(),
                request,
            );
            xs.push(r.as_ref().map_or(f64::NAN, |&d| 1.0 / d));
            resolved.push(r);
        }
        let mut scratch = BatchScratch::default();
        let mut prices: Vec<f64> = Vec::new();
        listing.table.price_at_batch(&xs, &mut scratch, &mut prices);
        Ok(resolved
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map(|ncp| PriceQuote {
                    ncp,
                    price: prices.get(i).copied().unwrap_or(0.0),
                    expected_error: listing.transform.expected_error(ncp),
                })
            })
            .collect())
    }

    /// Pre-allocates ledger capacity for `additional` upcoming
    /// transactions, so steady-state [`Broker::buy_listed_into`] pushes
    /// never reallocate.
    pub fn reserve_ledger(&mut self, additional: usize) {
        self.ledger.reserve(additional);
    }

    /// The published pricing for `kind`, if any.
    pub fn listed_pricing(&self, kind: ModelKind) -> Option<&PricingFunction> {
        self.listings.get(&kind).map(|l| &l.pricing)
    }

    /// The compiled pricing table for `kind`'s listing, if any.
    pub fn listed_table(&self, kind: ModelKind) -> Option<&PricingTable> {
        self.listings.get(&kind).map(|l| &l.table)
    }

    /// The dataset backing the market.
    pub fn data(&self) -> &TrainTest {
        &self.data
    }

    /// Adds `kind` to the menu, training the optimal instance `h*_λ(D)` on
    /// the train split (the broker's one-time cost).
    ///
    /// Iteratively-trained kinds (logistic, SVM) are idempotent per kind:
    /// repeat calls return the cached instance regardless of `ridge`.
    /// Linear regression instead caches at the factorization level: the
    /// Gram matrix `XᵀX/n` is formed once per broker, Cholesky factors are
    /// cached per ridge value, and re-supporting at a *different* ridge
    /// re-solves from the cached Gram (counted by
    /// `mbp.core.broker.factor_cache_hit`/`miss`) instead of being
    /// silently ignored.
    pub fn support(&mut self, kind: ModelKind, ridge: f64) -> Result<&LinearModel, MarketError> {
        let _span = mbp_obs::span("mbp.core.support");
        mbp_obs::inc("mbp.core.support.count");
        let cached_ridge = self.menu.get(&kind).map(|e| e.ridge);
        let needs_training = match (kind, cached_ridge) {
            (_, None) => true,
            (ModelKind::LinearRegression, Some(prev)) => prev.to_bits() != ridge.to_bits(),
            (_, Some(_)) => false,
        };
        if needs_training {
            mbp_obs::inc("mbp.core.support.trained");
            mbp_obs::event(
                mbp_obs::Verbosity::Info,
                "mbp.core.broker",
                "training optimal instance",
                &[("kind", format!("{kind:?}")), ("ridge", format!("{ridge}"))],
            );
            let weights = match kind {
                ModelKind::LinearRegression => {
                    // take/insert instead of is_none/as_mut so the solver is
                    // reachable without an `expect` between the two steps.
                    let solver = match self.ridge_solver.take() {
                        Some(s) => self.ridge_solver.insert(s),
                        None => self
                            .ridge_solver
                            .insert(RidgeSolver::new(&self.data.train)?),
                    };
                    if solver.has_factor(ridge) {
                        mbp_obs::inc("mbp.core.broker.factor_cache_hit");
                    } else {
                        mbp_obs::inc("mbp.core.broker.factor_cache_miss");
                    }
                    solver.solve(ridge)?
                }
                ModelKind::LogisticRegression => {
                    newton_logistic(
                        &LogisticLoss::ridge(ridge),
                        &self.data.train,
                        TrainConfig::default(),
                    )
                    .weights
                }
                ModelKind::LinearSvm => {
                    let mu = if ridge > 0.0 { ridge } else { 1e-3 };
                    gradient_descent(
                        &SmoothedHingeLoss::new(mu, 0.5),
                        &self.data.train,
                        TrainConfig::default(),
                    )
                    .weights
                }
            };
            self.menu.insert(
                kind,
                MenuEntry {
                    model: LinearModel::new(kind, weights),
                    ridge,
                },
            );
            // Only actual (re)training is durable: replaying the same
            // support sequence re-derives identical weights, and repeat
            // same-ridge calls add nothing to recovery.
            if let Some(sink) = &self.durability {
                sink.record_support(kind, ridge);
            }
        } else if kind == ModelKind::LinearRegression {
            // Same (kind, ridge) already on the menu: a pure cache hit.
            mbp_obs::inc("mbp.core.broker.factor_cache_hit");
        }
        self.menu
            .get(&kind)
            .map(|entry| &entry.model)
            .ok_or(MarketError::UnsupportedModel(kind))
    }

    /// Number of distinct ridge factorizations cached for linear
    /// regression (0 before the first [`Broker::support`] call).
    pub fn factor_cache_size(&self) -> usize {
        self.ridge_solver
            .as_ref()
            .map_or(0, RidgeSolver::factor_count)
    }

    /// The cached optimal instance for `kind`, if supported.
    pub fn optimal_model(&self, kind: ModelKind) -> Option<&LinearModel> {
        self.menu.get(&kind).map(|e| &e.model)
    }

    /// Derives the revenue-maximizing arbitrage-free pricing from a
    /// seller's market research (Figure 2(b)→(c): the Theorem 10 DP on the
    /// buyer population).
    pub fn price_from_research(&self, seller: &Seller) -> RevenueSolution {
        solve_bv_dp(&seller.buyer_population())
    }

    /// Builds the buyer-facing price–error curve for `kind` over `ncps`
    /// (step 2 of the broker–buyer interaction).
    pub fn price_error_curve(
        &self,
        kind: ModelKind,
        transform: &dyn ErrorTransform,
        pricing: &PricingFunction,
        ncps: &[f64],
    ) -> Result<PriceErrorCurve, MarketError> {
        if !self.menu.contains_key(&kind) {
            return Err(MarketError::UnsupportedModel(kind));
        }
        // Reject malformed grids up front: `price_for_ncp` requires a
        // positive finite NCP, and a NaN would previously panic the serve
        // path inside the pricing assert.
        if let Some(&bad) = ncps.iter().find(|d| !d.is_finite() || **d <= 0.0) {
            return Err(MarketError::BadRequest(format!(
                "NCP grid entries must be positive and finite, got {bad}"
            )));
        }
        let mut points: Vec<PriceErrorPoint> = ncps
            .iter()
            .map(|&ncp| PriceErrorPoint {
                ncp,
                expected_error: transform.expected_error(ncp),
                price: pricing.price_for_ncp(ncp),
            })
            .collect();
        points.sort_by(|a, b| a.ncp.total_cmp(&b.ncp));
        Ok(PriceErrorCurve { points })
    }

    /// Fulfills a purchase (steps 3–4): resolves the request to an NCP,
    /// charges `p̄(1/δ)`, and returns a freshly-noised instance.
    pub fn buy(
        &mut self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let (sale, tx) = self.quote(kind, request, pricing, transform, rng)?;
        if let Some(sink) = &self.durability {
            sink.record_sale(&tx);
        }
        self.ledger.push(tx);
        Ok(sale)
    }

    /// Read-only purchase execution: resolves, prices, and noises exactly
    /// like [`Broker::buy`] but leaves the ledger untouched, returning the
    /// [`Transaction`] for the caller to [`Broker::settle`]. This is the
    /// building block for sharded simulation and the striped concurrent
    /// broker, where many quotes run against `&Broker` in parallel and the
    /// ledger is merged in one deterministic step.
    pub fn quote(
        &self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<(Sale, Transaction), MarketError> {
        let _span = mbp_obs::span("mbp.core.buy");
        let trace =
            mbp_obs::trace_root_hinted("mbp.core.buy", kind_label(kind), self.mechanism.name());
        let result = (|| {
            let lookup = trace.phase(mbp_obs::Phase::Lookup);
            let entry = self
                .menu
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            drop(lookup);
            mbp_obs::inc("mbp.core.pricing.table_miss");
            execute_purchase(
                entry,
                self.mechanism.as_ref(),
                &PricePath::Scan(pricing),
                None,
                transform,
                kind,
                request,
                rng,
                &trace,
            )
        })();
        record_purchase_outcome(result.as_ref().map(|(sale, _)| sale));
        result
    }

    /// Appends already-executed transactions to the ledger — the merge step
    /// for quotes produced by [`Broker::quote`]. Callers control the order,
    /// which is what makes sharded ledger merges deterministic.
    pub fn settle<I: IntoIterator<Item = Transaction>>(&mut self, txs: I) {
        self.ledger.extend(txs);
    }

    /// All completed transactions.
    pub fn ledger(&self) -> &[Transaction] {
        &self.ledger
    }

    /// Total revenue collected so far.
    pub fn total_revenue(&self) -> f64 {
        self.ledger.iter().map(|t| t.price).sum()
    }
}

/// Records the metrics for one purchase attempt: `mbp.core.buy.count` and
/// the running `mbp.core.revenue.total` gauge on success,
/// `mbp.core.buy.rejected` (plus an error event) on failure.
fn record_purchase_outcome(result: Result<&Sale, &MarketError>) {
    match result {
        Ok(sale) => {
            mbp_obs::inc("mbp.core.buy.count");
            mbp_obs::gauge_add("mbp.core.revenue.total", sale.price);
        }
        Err(e) => record_purchase_failure(e),
    }
}

fn record_purchase_failure(e: &MarketError) {
    mbp_obs::inc("mbp.core.buy.rejected");
    mbp_obs::event(
        mbp_obs::Verbosity::Error,
        "mbp.core.broker",
        "purchase rejected",
        &[("reason", e.to_string())],
    );
}

/// Which pricing backend a purchase is served from: the original
/// piecewise-linear scan, or the compiled table built at publish time.
/// Both answer the same queries with identical values (the table is
/// cross-checked against its source in debug builds).
enum PricePath<'a> {
    Scan(&'a PricingFunction),
    Table(&'a PricingTable),
}

impl PricePath<'_> {
    fn price_for_ncp(&self, ncp: f64) -> f64 {
        match self {
            PricePath::Scan(p) => p.price_for_ncp(ncp),
            PricePath::Table(t) => t.price_for_ncp(ncp),
        }
    }

    fn max_precision_for_budget(&self, b: f64) -> Option<f64> {
        match self {
            PricePath::Scan(p) => p.max_precision_for_budget(b),
            PricePath::Table(t) => t.max_precision_for_budget(b),
        }
    }

    fn grid_max(&self) -> f64 {
        let grid = match self {
            PricePath::Scan(p) => p.grid(),
            PricePath::Table(t) => t.knots(),
        };
        // Both sources validate non-empty grids at construction; an empty
        // grid degrades to 0.0, which resolves to InsufficientBudget.
        grid.last().copied().unwrap_or(0.0)
    }
}

/// Resolves a purchase request to the NCP of the instance to release.
/// The memoized error-inverse is used when the caller has one (listing
/// purchases); it answers identically to the transform's own inversion.
fn resolve_ncp(
    pricing: &PricePath<'_>,
    phi: Option<&PhiMemo>,
    transform: &dyn ErrorTransform,
    request: PurchaseRequest,
) -> Result<f64, MarketError> {
    match request {
        PurchaseRequest::AtNcp(d) => {
            if !(d > 0.0 && d.is_finite()) {
                return Err(MarketError::BadRequest(format!(
                    "NCP must be positive and finite, got {d}"
                )));
            }
            Ok(d)
        }
        PurchaseRequest::ErrorBudget(eps) => {
            let ncp = match phi {
                Some(memo) => memo.ncp_for_error(transform, eps),
                None => transform.ncp_for_error(eps),
            };
            ncp.filter(|&d| d > 0.0)
                .ok_or(MarketError::UnachievableError(eps))
        }
        PurchaseRequest::PriceBudget(budget) => {
            if !(budget >= 0.0 && budget.is_finite()) {
                return Err(MarketError::BadRequest(format!(
                    "budget must be non-negative, got {budget}"
                )));
            }
            let x = pricing
                .max_precision_for_budget(budget)
                .ok_or(MarketError::InsufficientBudget(budget))?;
            // Budgets at/above the saturation price buy the most precise
            // version on the menu grid (never the noiseless model: the
            // grid caps precision).
            let x = x.min(pricing.grid_max());
            if x <= 0.0 {
                return Err(MarketError::InsufficientBudget(budget));
            }
            Ok(1.0 / x)
        }
    }
}

/// Shared purchase path: resolves the request to an NCP, prices it, and
/// releases a freshly noised instance.
#[allow(clippy::too_many_arguments)]
fn execute_purchase(
    entry: &MenuEntry,
    mechanism: &dyn NoiseMechanism,
    pricing: &PricePath<'_>,
    phi: Option<&PhiMemo>,
    transform: &dyn ErrorTransform,
    kind: ModelKind,
    request: PurchaseRequest,
    rng: &mut MbpRng,
    trace: &mbp_obs::TraceRoot,
) -> Result<(Sale, Transaction), MarketError> {
    let ncp = {
        let _p = trace.phase(mbp_obs::Phase::PhiInversion);
        resolve_ncp(pricing, phi, transform, request)?
    };
    let price = pricing.price_for_ncp(ncp);
    let noise = trace.phase(mbp_obs::Phase::Noise);
    let weights = mechanism.perturb(entry.model.weights(), ncp, rng);
    let model = entry.model.with_weights(weights);
    drop(noise);
    Ok((
        Sale {
            model,
            price,
            ncp,
            expected_error: transform.expected_error(ncp),
        },
        Transaction { kind, ncp, price },
    ))
}

/// Allocation-free purchase path: identical resolution, pricing, and RNG
/// consumption to [`execute_purchase`], but the release is written into
/// `sale`'s existing model buffer.
#[allow(clippy::too_many_arguments)]
fn execute_purchase_into(
    entry: &MenuEntry,
    mechanism: &dyn NoiseMechanism,
    table: &PricingTable,
    phi: &PhiMemo,
    transform: &dyn ErrorTransform,
    kind: ModelKind,
    request: PurchaseRequest,
    rng: &mut MbpRng,
    sale: &mut Sale,
    trace: &mbp_obs::TraceRoot,
) -> Result<Transaction, MarketError> {
    let pricing = PricePath::Table(table);
    let ncp = {
        let _p = trace.phase(mbp_obs::Phase::PhiInversion);
        resolve_ncp(&pricing, Some(phi), transform, request)?
    };
    let price = pricing.price_for_ncp(ncp);
    if sale.model.kind() != kind || sale.model.dim() != entry.model.dim() {
        sale.model = entry.model.clone();
    }
    let noise = trace.phase(mbp_obs::Phase::Noise);
    mechanism.perturb_into(entry.model.weights(), ncp, rng, sale.model.weights_mut());
    drop(noise);
    sale.price = price;
    sale.ncp = ncp;
    sale.expected_error = transform.expected_error(ncp);
    Ok(Transaction { kind, ncp, price })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{LinRegSquareTransform, SquareLossTransform};
    use crate::market::curves::{grid, DemandShape, ValueShape};
    use mbp_data::synth;
    use mbp_randx::seeded_rng;

    fn market_data(seed: u64) -> TrainTest {
        let mut rng = seeded_rng(seed);
        let ds = synth::simulated1(600, 5, 0.5, &mut rng);
        ds.split(0.75, &mut rng)
    }

    fn simple_pricing() -> PricingFunction {
        let g: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p: Vec<f64> = g.iter().map(|x| 10.0 * x.sqrt()).collect();
        PricingFunction::from_points(g, p).unwrap()
    }

    #[test]
    fn support_is_idempotent_one_time_cost() {
        let mut broker = Broker::new(market_data(1));
        let w1 = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let w2 = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        assert_eq!(w1, w2);
        assert!(broker.optimal_model(ModelKind::LinearRegression).is_some());
        assert!(broker.optimal_model(ModelKind::LinearSvm).is_none());
    }

    #[test]
    fn buy_at_ncp_charges_curve_price() {
        let mut broker = Broker::new(market_data(2));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(7);
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.price - pricing.price_for_ncp(0.5)).abs() < 1e-12);
        assert_eq!(sale.ncp, 0.5);
        assert_eq!(broker.ledger().len(), 1);
        assert!((broker.total_revenue() - sale.price).abs() < 1e-12);
    }

    #[test]
    fn error_budget_buys_cheapest_adequate_model() {
        let mut broker = Broker::new(market_data(3));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(8);
        // With the identity transform, error budget 2.0 ⇒ δ = 2.0.
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::ErrorBudget(2.0),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.ncp - 2.0).abs() < 1e-12);
        assert!(sale.expected_error <= 2.0 + 1e-12);
    }

    #[test]
    fn price_budget_buys_most_accurate_affordable() {
        let mut broker = Broker::new(market_data(4));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(9);
        let budget = 20.0; // p̄(x) = 10√x = 20 ⇒ x = 4 ⇒ δ = 0.25
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::PriceBudget(budget),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!(sale.price <= budget + 1e-9);
        assert!((sale.ncp - 0.25).abs() < 1e-9, "ncp {}", sale.ncp);
        // A huge budget buys the top-of-grid precision (x = 10).
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::PriceBudget(1e6),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.ncp - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unsupported_model_is_rejected() {
        let mut broker = Broker::new(market_data(5));
        let mut rng = seeded_rng(10);
        let err = broker
            .buy(
                ModelKind::LinearSvm,
                PurchaseRequest::AtNcp(1.0),
                &simple_pricing(),
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MarketError::UnsupportedModel(_)));
    }

    #[test]
    fn unachievable_error_budget_is_rejected() {
        let data = market_data(6);
        let mut broker = Broker::new(data);
        let h = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let transform = LinRegSquareTransform::new(&broker.data().test.clone(), &h);
        let mut rng = seeded_rng(11);
        // Ask for error below the noiseless floor.
        let err = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::ErrorBudget(transform.base() * 0.5),
                &simple_pricing(),
                &transform,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MarketError::UnachievableError(_)));
    }

    #[test]
    fn price_error_curve_is_well_formed() {
        let mut broker = Broker::new(market_data(12));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let ncps: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let curve = broker
            .price_error_curve(
                ModelKind::LinearRegression,
                &SquareLossTransform,
                &simple_pricing(),
                &ncps,
            )
            .unwrap();
        assert_eq!(curve.points.len(), 20);
        assert!(curve.is_well_formed());
    }

    #[test]
    fn seller_research_to_pricing_pipeline() {
        let data = market_data(13);
        let seller = Seller::new(
            data,
            grid(20.0, 100.0, 9),
            ValueCurve::new(ValueShape::Concave { power: 2.0 }, 0.0, 100.0),
            DemandCurve::new(DemandShape::Uniform),
        );
        let broker = Broker::new(market_data(14));
        let sol = broker.price_from_research(&seller);
        // Resulting prices live on the seller's grid and are feasible.
        assert_eq!(sol.pricing.grid().len(), 9);
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn published_listing_sells_without_resupplying_pricing() {
        let mut broker = Broker::new(market_data(21));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        broker
            .publish(
                ModelKind::LinearRegression,
                pricing.clone(),
                Box::new(SquareLossTransform),
            )
            .unwrap();
        assert_eq!(
            broker.listed_pricing(ModelKind::LinearRegression).unwrap(),
            &pricing
        );
        let mut rng = seeded_rng(22);
        let sale = broker
            .buy_listed(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &mut rng,
            )
            .unwrap();
        assert!((sale.price - pricing.price_for_ncp(0.5)).abs() < 1e-12);
        assert_eq!(broker.ledger().len(), 1);
        // Unlisted model types are rejected.
        assert!(matches!(
            broker.buy_listed(ModelKind::LinearSvm, PurchaseRequest::AtNcp(1.0), &mut rng),
            Err(MarketError::UnsupportedModel(_))
        ));
        // Publishing an unsupported model is rejected.
        assert!(matches!(
            broker.publish(ModelKind::LinearSvm, pricing, Box::new(SquareLossTransform)),
            Err(MarketError::UnsupportedModel(_))
        ));
    }

    /// The compiled-table listing path answers every request kind with the
    /// same price, NCP, and released weights as the scan path fed the same
    /// RNG stream — the end-to-end guarantee behind the serving fast path.
    #[test]
    fn listed_table_path_is_bit_identical_to_scan_path() {
        let requests = [
            PurchaseRequest::AtNcp(0.5),
            PurchaseRequest::ErrorBudget(2.0),
            PurchaseRequest::PriceBudget(20.0),
            PurchaseRequest::PriceBudget(1e6),
        ];
        let pricing = simple_pricing();
        let mut scan = Broker::new(market_data(30));
        scan.support(ModelKind::LinearRegression, 0.0).unwrap();
        let mut listed = Broker::new(market_data(30));
        listed.support(ModelKind::LinearRegression, 0.0).unwrap();
        listed
            .publish(
                ModelKind::LinearRegression,
                pricing.clone(),
                Box::new(SquareLossTransform),
            )
            .unwrap();
        let mut rng_a = seeded_rng(31);
        let mut rng_b = seeded_rng(31);
        for &request in &requests {
            let a = scan
                .buy(
                    ModelKind::LinearRegression,
                    request,
                    &pricing,
                    &SquareLossTransform,
                    &mut rng_a,
                )
                .unwrap();
            let b = listed
                .buy_listed(ModelKind::LinearRegression, request, &mut rng_b)
                .unwrap();
            assert_eq!(a.price, b.price, "{request:?}");
            assert_eq!(a.ncp, b.ncp, "{request:?}");
            assert_eq!(a.expected_error, b.expected_error, "{request:?}");
            assert_eq!(a.model.weights(), b.model.weights(), "{request:?}");
        }
    }

    /// `buy_listed_into` reuses the caller's buffers and matches
    /// `buy_listed` bit-for-bit on the same stream; the affine φ memo is
    /// exercised through a real regression transform.
    #[test]
    fn buy_listed_into_matches_buy_listed() {
        let mut a = Broker::new(market_data(32));
        let mut b = Broker::new(market_data(32));
        for broker in [&mut a, &mut b] {
            let h = broker
                .support(ModelKind::LinearRegression, 0.0)
                .unwrap()
                .weights()
                .clone();
            let transform = LinRegSquareTransform::new(&broker.data().test.clone(), &h);
            broker
                .publish(
                    ModelKind::LinearRegression,
                    simple_pricing(),
                    Box::new(transform),
                )
                .unwrap();
        }
        let base = a
            .optimal_model(ModelKind::LinearRegression)
            .unwrap()
            .clone();
        let floor = LinRegSquareTransform::new(&a.data().test.clone(), base.weights()).base();
        let requests = [
            PurchaseRequest::AtNcp(1.0),
            PurchaseRequest::ErrorBudget(floor + 0.7),
            PurchaseRequest::PriceBudget(25.0),
        ];
        let mut rng_a = seeded_rng(33);
        let mut rng_b = seeded_rng(33);
        let mut sale = Sale {
            model: base,
            price: 0.0,
            ncp: 0.0,
            expected_error: 0.0,
        };
        b.reserve_ledger(requests.len());
        for &request in &requests {
            let fresh = a
                .buy_listed(ModelKind::LinearRegression, request, &mut rng_a)
                .unwrap();
            b.buy_listed_into(ModelKind::LinearRegression, request, &mut rng_b, &mut sale)
                .unwrap();
            assert_eq!(fresh.price, sale.price, "{request:?}");
            assert_eq!(fresh.ncp, sale.ncp, "{request:?}");
            assert_eq!(fresh.expected_error, sale.expected_error, "{request:?}");
            assert_eq!(fresh.model.weights(), sale.model.weights(), "{request:?}");
        }
        assert_eq!(a.ledger().len(), b.ledger().len());
        assert_eq!(a.total_revenue(), b.total_revenue());
    }

    /// Batch quoting consumes the RNG exactly like a sequential loop, keeps
    /// per-request errors inline, and settles in request order.
    #[test]
    fn buy_batch_matches_sequential_buy_listed() {
        let mut seq = Broker::new(market_data(34));
        let mut bat = Broker::new(market_data(34));
        for broker in [&mut seq, &mut bat] {
            broker.support(ModelKind::LinearRegression, 0.0).unwrap();
            broker
                .publish(
                    ModelKind::LinearRegression,
                    simple_pricing(),
                    Box::new(SquareLossTransform),
                )
                .unwrap();
        }
        let requests = [
            PurchaseRequest::AtNcp(0.5),
            PurchaseRequest::PriceBudget(5.0), // below p̄(x₁)·small ⇒ still ray-affordable
            PurchaseRequest::AtNcp(-1.0),      // rejected inline
            PurchaseRequest::ErrorBudget(1.5),
            PurchaseRequest::PriceBudget(0.0), // rejected: buys zero precision
        ];
        let mut rng_seq = seeded_rng(35);
        let mut rng_bat = seeded_rng(35);
        let sequential: Vec<Result<Sale, MarketError>> = requests
            .iter()
            .map(|&r| seq.buy_listed(ModelKind::LinearRegression, r, &mut rng_seq))
            .collect();
        let batched = bat
            .buy_batch(ModelKind::LinearRegression, &requests, &mut rng_bat)
            .unwrap();
        assert_eq!(sequential.len(), batched.len());
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            match (s, b) {
                (Ok(s), Ok(b)) => {
                    assert_eq!(s.price, b.price, "request {i}");
                    assert_eq!(s.ncp, b.ncp, "request {i}");
                    assert_eq!(s.model.weights(), b.model.weights(), "request {i}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("request {i}: outcome mismatch"),
            }
        }
        assert_eq!(seq.ledger().len(), bat.ledger().len());
        assert_eq!(seq.total_revenue(), bat.total_revenue());
        // Unknown kinds fail at the batch level, not per request.
        assert!(matches!(
            bat.buy_batch(ModelKind::LinearSvm, &requests, &mut rng_bat),
            Err(MarketError::UnsupportedModel(_))
        ));
    }

    /// The arena path replays `buy_batch` bit-for-bit: same prices, NCPs,
    /// and noise draws, same ledger — including on a second, smaller batch
    /// that reuses warmed slots.
    #[test]
    fn buy_batch_into_matches_buy_batch() {
        let mut plain = Broker::new(market_data(34));
        let mut arena_b = Broker::new(market_data(34));
        for broker in [&mut plain, &mut arena_b] {
            broker.support(ModelKind::LinearRegression, 0.0).unwrap();
            broker
                .publish(
                    ModelKind::LinearRegression,
                    simple_pricing(),
                    Box::new(SquareLossTransform),
                )
                .unwrap();
        }
        let batches: [&[PurchaseRequest]; 2] = [
            &[
                PurchaseRequest::AtNcp(0.5),
                PurchaseRequest::PriceBudget(5.0),
                PurchaseRequest::AtNcp(-1.0), // rejected inline
                PurchaseRequest::ErrorBudget(1.5),
                PurchaseRequest::PriceBudget(0.0), // rejected
            ],
            // Smaller follow-up batch: exercises warmed Sale slots.
            &[PurchaseRequest::AtNcp(0.25), PurchaseRequest::AtNcp(2.0)],
        ];
        let mut rng_plain = seeded_rng(35);
        let mut rng_arena = seeded_rng(35);
        let mut arena = SaleArena::new();
        for requests in batches {
            let expected = plain
                .buy_batch(ModelKind::LinearRegression, requests, &mut rng_plain)
                .unwrap();
            arena_b
                .buy_batch_into(
                    ModelKind::LinearRegression,
                    requests,
                    &mut rng_arena,
                    &mut arena,
                )
                .unwrap();
            assert_eq!(arena.len(), requests.len());
            let got: Vec<_> = arena.results().collect();
            assert_eq!(expected.len(), got.len());
            for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
                match (e, g) {
                    (Ok(e), Ok(g)) => {
                        assert_eq!(e.price.to_bits(), g.price.to_bits(), "request {i}");
                        assert_eq!(e.ncp.to_bits(), g.ncp.to_bits(), "request {i}");
                        assert_eq!(e.model.weights(), g.model.weights(), "request {i}");
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("request {i}: outcome mismatch"),
                }
            }
        }
        assert_eq!(plain.ledger().len(), arena_b.ledger().len());
        assert_eq!(plain.total_revenue(), arena_b.total_revenue());
        assert!(matches!(
            arena_b.buy_batch_into(ModelKind::LinearSvm, batches[0], &mut rng_arena, &mut arena),
            Err(MarketError::UnsupportedModel(_))
        ));
    }

    /// The sorted-bin kernel must scatter results back into request order:
    /// a batch deliberately shuffled across every evaluation class (ray,
    /// interior segments, saturation, rejections) returns exactly what a
    /// sequential loop returns, position by position, bit for bit.
    #[test]
    fn batch_kernel_preserves_request_order_across_segments() {
        let mut seq = Broker::new(market_data(40));
        let mut bat = Broker::new(market_data(40));
        for broker in [&mut seq, &mut bat] {
            broker.support(ModelKind::LinearRegression, 0.0).unwrap();
            broker
                .publish(
                    ModelKind::LinearRegression,
                    simple_pricing(),
                    Box::new(SquareLossTransform),
                )
                .unwrap();
        }
        // simple_pricing has knots 1..=10: NCP 1/x walks every segment.
        // Shuffled so neighbouring requests land in different bins.
        let requests: Vec<PurchaseRequest> = [
            0.05,
            9.5,
            2.3,
            0.11,
            7.7,
            -3.0,
            1.0,
            4.2,
            0.5,
            12.0,
            3.9,
            0.09,
            6.1,
            5.5,
            8.8,
            2.0,
            1.4,
            0.25,
            f64::NAN,
            10.0,
        ]
        .into_iter()
        .map(PurchaseRequest::AtNcp)
        .collect();
        let mut rng_seq = seeded_rng(41);
        let mut rng_bat = seeded_rng(41);
        let sequential: Vec<Result<Sale, MarketError>> = requests
            .iter()
            .map(|&r| seq.buy_listed(ModelKind::LinearRegression, r, &mut rng_seq))
            .collect();
        let batched = bat
            .buy_batch(ModelKind::LinearRegression, &requests, &mut rng_bat)
            .unwrap();
        // Digest both sides in request order: any scatter misordering or
        // arithmetic drift changes the fold.
        let digest = |sales: &[Result<Sale, MarketError>]| -> u64 {
            sales.iter().enumerate().fold(0u64, |h, (i, r)| {
                let word = match r {
                    Ok(s) => s
                        .model
                        .weights()
                        .as_slice()
                        .iter()
                        .fold(s.price.to_bits() ^ s.ncp.to_bits(), |a, w| {
                            a.rotate_left(7) ^ w.to_bits()
                        }),
                    Err(_) => 0xDEAD,
                };
                h.rotate_left(11) ^ word ^ i as u64
            })
        };
        let seq_results: Vec<Result<Sale, MarketError>> = sequential;
        assert_eq!(seq_results.len(), batched.len());
        for (i, (s, b)) in seq_results.iter().zip(&batched).enumerate() {
            match (s, b) {
                (Ok(s), Ok(b)) => {
                    assert_eq!(s.price.to_bits(), b.price.to_bits(), "request {i}");
                    assert_eq!(s.ncp.to_bits(), b.ncp.to_bits(), "request {i}");
                    assert_eq!(s.model.weights(), b.model.weights(), "request {i}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("request {i}: outcome mismatch"),
            }
        }
        assert_eq!(digest(&seq_results), digest(&batched));
    }

    /// Linear regression re-supports at new ridges from the cached Gram
    /// factorization; returning to an earlier ridge reuses its factor and
    /// reproduces the exact same weights.
    #[test]
    fn support_caches_factorizations_across_ridges() {
        let mut broker = Broker::new(market_data(36));
        assert_eq!(broker.factor_cache_size(), 0);
        let w0 = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        assert_eq!(broker.factor_cache_size(), 1);
        let w1 = broker
            .support(ModelKind::LinearRegression, 0.5)
            .unwrap()
            .weights()
            .clone();
        assert_eq!(broker.factor_cache_size(), 2);
        assert_ne!(w0, w1, "different ridges must give different instances");
        // Round-trip back to the first ridge: solved from the cached
        // factor, bit-identical to the first training.
        let w0_again = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        assert_eq!(w0, w0_again);
        assert_eq!(broker.factor_cache_size(), 2);
    }

    /// Re-publishing swaps in a freshly compiled table: quotes served after
    /// the swap follow the new pricing, never a stale table.
    #[test]
    fn republish_invalidates_compiled_table() {
        let mut broker = Broker::new(market_data(37));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let cheap = simple_pricing();
        broker
            .publish(
                ModelKind::LinearRegression,
                cheap.clone(),
                Box::new(SquareLossTransform),
            )
            .unwrap();
        let mut rng = seeded_rng(38);
        let before = broker
            .buy_listed(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &mut rng,
            )
            .unwrap();
        assert_eq!(before.price, cheap.price_for_ncp(0.5));
        let pricey = PricingFunction::from_points(
            cheap.grid().to_vec(),
            cheap.prices().iter().map(|p| p * 3.0).collect(),
        )
        .unwrap();
        broker
            .publish(
                ModelKind::LinearRegression,
                pricey.clone(),
                Box::new(SquareLossTransform),
            )
            .unwrap();
        let after = broker
            .buy_listed(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &mut rng,
            )
            .unwrap();
        assert_eq!(after.price, pricey.price_for_ncp(0.5));
        assert_eq!(
            broker
                .listed_table(ModelKind::LinearRegression)
                .unwrap()
                .max_price(),
            pricey.max_price()
        );
    }

    #[test]
    fn price_error_curve_inversion_interpolates() {
        let mut broker = Broker::new(market_data(39));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let ncps: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let curve = broker
            .price_error_curve(
                ModelKind::LinearRegression,
                &SquareLossTransform,
                &simple_pricing(),
                &ncps,
            )
            .unwrap();
        // Identity transform: error == ncp. At a sampled point the price
        // matches exactly; between points it interpolates; below the most
        // accurate point it is unachievable.
        let p = &curve.points;
        assert_eq!(curve.price_for_error(p[3].expected_error), Some(p[3].price));
        let mid = curve
            .price_for_error(0.5 * (p[0].expected_error + p[1].expected_error))
            .unwrap();
        assert!(mid <= p[0].price && mid >= p[1].price);
        assert_eq!(curve.price_for_error(p[0].expected_error * 0.5), None);
        assert_eq!(
            curve.price_for_error(p.last().unwrap().expected_error + 10.0),
            Some(p.last().unwrap().price)
        );
    }

    #[test]
    fn sales_are_noisy_but_unbiased_around_h_star() {
        let mut broker = Broker::new(market_data(15));
        let h_star = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(16);
        let mut mean = mbp_linalg::Vector::zeros(h_star.len());
        let reps = 3000;
        for _ in 0..reps {
            let sale = broker
                .buy(
                    ModelKind::LinearRegression,
                    PurchaseRequest::AtNcp(1.0),
                    &pricing,
                    &SquareLossTransform,
                    &mut rng,
                )
                .unwrap();
            mean.axpy(1.0 / reps as f64, sale.model.weights()).unwrap();
        }
        let bias = mean.sub(&h_star).unwrap().norm2();
        assert!(bias < 0.05, "bias {bias}");
        assert_eq!(broker.ledger().len(), reps);
    }
}
