//! The seller, broker, and buyer agents and the purchase protocol.

use crate::error::ErrorTransform;
use crate::market::curves::{buyer_points, DemandCurve, ValueCurve};
use crate::mechanism::{GaussianMechanism, NoiseMechanism};
use crate::pricing::PricingFunction;
use crate::revenue::{solve_bv_dp, BuyerPoint, RevenueSolution};
use mbp_data::TrainTest;
use mbp_ml::train::{gradient_descent, newton_logistic, ridge_closed_form, TrainConfig};
use mbp_ml::{LinearModel, LogisticLoss, ModelKind, SmoothedHingeLoss};
use mbp_randx::MbpRng;
use std::collections::HashMap;
use std::fmt;

/// Errors raised by market interactions.
#[derive(Debug)]
pub enum MarketError {
    /// The requested model type is not on the broker's menu.
    UnsupportedModel(ModelKind),
    /// Training the optimal instance failed (e.g. singular Gram matrix).
    TrainingFailed(mbp_linalg::LinalgError),
    /// The requested expected error is unachievable (below the noiseless
    /// floor or outside the transform's range).
    UnachievableError(f64),
    /// The buyer's budget does not afford any positive-precision instance.
    InsufficientBudget(f64),
    /// Malformed request (e.g. non-positive NCP).
    BadRequest(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnsupportedModel(kind) => {
                write!(f, "model {:?} is not on the broker's menu", kind)
            }
            MarketError::TrainingFailed(e) => write!(f, "training the optimal model failed: {e}"),
            MarketError::UnachievableError(e) => {
                write!(
                    f,
                    "expected error {e} is unachievable for this model/dataset"
                )
            }
            MarketError::InsufficientBudget(b) => {
                write!(f, "budget {b} cannot afford any model instance")
            }
            MarketError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for MarketError {}

impl From<mbp_linalg::LinalgError> for MarketError {
    fn from(e: mbp_linalg::LinalgError) -> Self {
        MarketError::TrainingFailed(e)
    }
}

/// The seller: owns the dataset for sale and the market-research curves
/// (Figure 1(A), Figure 2(a)).
#[derive(Debug)]
pub struct Seller {
    /// The dataset `D = (D_train, D_test)` offered for sale.
    pub data: TrainTest,
    /// Inverse-NCP grid over which the market operates.
    pub grid: Vec<f64>,
    /// Market-research value curve.
    pub value_curve: ValueCurve,
    /// Market-research demand curve.
    pub demand_curve: DemandCurve,
}

impl Seller {
    /// Creates a seller listing.
    pub fn new(
        data: TrainTest,
        grid: Vec<f64>,
        value_curve: ValueCurve,
        demand_curve: DemandCurve,
    ) -> Self {
        Seller {
            data,
            grid,
            value_curve,
            demand_curve,
        }
    }

    /// The buyer population implied by the research curves.
    pub fn buyer_population(&self) -> Vec<BuyerPoint> {
        buyer_points(&self.grid, &self.value_curve, &self.demand_curve)
    }
}

/// A buyer with a budget (used by the examples; the protocol itself is
/// stateless and lives in [`Broker::buy`]).
#[derive(Debug, Clone)]
pub struct Buyer {
    /// Display name.
    pub name: String,
    /// Price budget.
    pub budget: f64,
}

impl Buyer {
    /// Creates a buyer.
    pub fn new(name: impl Into<String>, budget: f64) -> Self {
        assert!(budget >= 0.0 && budget.is_finite(), "budget must be >= 0");
        Buyer {
            name: name.into(),
            budget,
        }
    }
}

/// The buyer's three purchase options (Section 3.2, broker–buyer step 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PurchaseRequest {
    /// Pick a specific point on the price–error curve by its NCP.
    AtNcp(f64),
    /// "Cheapest instance with expected error ≤ ε̂."
    ErrorBudget(f64),
    /// "Most accurate instance with price ≤ p̂."
    PriceBudget(f64),
}

/// One fulfilled purchase.
#[derive(Debug, Clone)]
pub struct Sale {
    /// The released noisy model instance.
    pub model: LinearModel,
    /// Price charged.
    pub price: f64,
    /// NCP of the released instance.
    pub ncp: f64,
    /// Expected buyer-facing error at that NCP.
    pub expected_error: f64,
}

/// Ledger entry kept by the broker for revenue accounting.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Model type sold.
    pub kind: ModelKind,
    /// NCP of the sold instance.
    pub ncp: f64,
    /// Price paid.
    pub price: f64,
}

/// A `(δ, expected error, price)` sample of the buyer-facing curve the
/// broker displays (Figure 1(C), step 2).
#[derive(Debug, Clone, Copy)]
pub struct PriceErrorPoint {
    /// Noise control parameter.
    pub ncp: f64,
    /// Expected error at this NCP.
    pub expected_error: f64,
    /// Price at this NCP.
    pub price: f64,
}

/// The buyer-facing price–error curve.
#[derive(Debug, Clone)]
pub struct PriceErrorCurve {
    /// Samples in ascending-NCP order.
    pub points: Vec<PriceErrorPoint>,
}

impl PriceErrorCurve {
    /// `true` when price is non-increasing and error non-decreasing along
    /// the curve — the shape the buyer should always see in a well-behaved
    /// market.
    pub fn is_well_formed(&self) -> bool {
        self.points.windows(2).all(|w| {
            w[0].ncp <= w[1].ncp
                && w[0].price >= w[1].price - 1e-9
                && w[0].expected_error <= w[1].expected_error + 1e-9
        })
    }
}

struct MenuEntry {
    model: LinearModel,
}

/// A published offer: the pricing function and error transform under which
/// a model type is currently for sale.
struct Listing {
    pricing: PricingFunction,
    transform: Box<dyn ErrorTransform + Send + Sync>,
}

/// The broker: trains optimal instances (one-time cost), derives pricing,
/// and fulfills purchases by injecting fresh noise per sale.
pub struct Broker {
    data: TrainTest,
    mechanism: Box<dyn NoiseMechanism>,
    menu: HashMap<ModelKind, MenuEntry>,
    listings: HashMap<ModelKind, Listing>,
    ledger: Vec<Transaction>,
}

impl fmt::Debug for Broker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Broker")
            .field("mechanism", &self.mechanism.name())
            .field("menu_size", &self.menu.len())
            .field("ledger_len", &self.ledger.len())
            .finish()
    }
}

impl Broker {
    /// Creates a broker for `data` using the paper's Gaussian mechanism.
    pub fn new(data: TrainTest) -> Self {
        Broker::with_mechanism(data, Box::new(GaussianMechanism))
    }

    /// Creates a broker with a custom (unbiased, calibrated) mechanism.
    pub fn with_mechanism(data: TrainTest, mechanism: Box<dyn NoiseMechanism>) -> Self {
        Broker {
            data,
            mechanism,
            menu: HashMap::new(),
            listings: HashMap::new(),
            ledger: Vec::new(),
        }
    }

    /// Publishes a standing offer for `kind`: later purchases can go
    /// through [`Broker::buy_listed`] without re-supplying the pricing and
    /// transform on every call. The model must already be on the menu.
    pub fn publish(
        &mut self,
        kind: ModelKind,
        pricing: PricingFunction,
        transform: Box<dyn ErrorTransform + Send + Sync>,
    ) -> Result<(), MarketError> {
        if !self.menu.contains_key(&kind) {
            mbp_obs::inc("mbp.core.publish.rejected");
            return Err(MarketError::UnsupportedModel(kind));
        }
        self.listings.insert(kind, Listing { pricing, transform });
        mbp_obs::inc("mbp.core.publish.count");
        mbp_obs::event(
            mbp_obs::Verbosity::Info,
            "mbp.core.broker",
            "listing published",
            &[("kind", format!("{kind:?}"))],
        );
        Ok(())
    }

    /// Fulfills a purchase against the *published* listing for `kind`.
    pub fn buy_listed(
        &mut self,
        kind: ModelKind,
        request: PurchaseRequest,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let _span = mbp_obs::span("mbp.core.buy");
        let result = (|| {
            let listing = self
                .listings
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            let entry = self
                .menu
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            let (sale, tx) = execute_purchase(
                entry,
                self.mechanism.as_ref(),
                &listing.pricing,
                listing.transform.as_ref(),
                kind,
                request,
                rng,
            )?;
            self.ledger.push(tx);
            Ok(sale)
        })();
        record_purchase_outcome(result.as_ref());
        result
    }

    /// The published pricing for `kind`, if any.
    pub fn listed_pricing(&self, kind: ModelKind) -> Option<&PricingFunction> {
        self.listings.get(&kind).map(|l| &l.pricing)
    }

    /// The dataset backing the market.
    pub fn data(&self) -> &TrainTest {
        &self.data
    }

    /// Adds `kind` to the menu, training the optimal instance `h*_λ(D)` on
    /// the train split (the broker's one-time cost). Idempotent.
    pub fn support(&mut self, kind: ModelKind, ridge: f64) -> Result<&LinearModel, MarketError> {
        let _span = mbp_obs::span("mbp.core.support");
        mbp_obs::inc("mbp.core.support.count");
        if !self.menu.contains_key(&kind) {
            mbp_obs::inc("mbp.core.support.trained");
            mbp_obs::event(
                mbp_obs::Verbosity::Info,
                "mbp.core.broker",
                "training optimal instance",
                &[("kind", format!("{kind:?}")), ("ridge", format!("{ridge}"))],
            );
            let weights = match kind {
                ModelKind::LinearRegression => ridge_closed_form(&self.data.train, ridge)?,
                ModelKind::LogisticRegression => {
                    newton_logistic(
                        &LogisticLoss::ridge(ridge),
                        &self.data.train,
                        TrainConfig::default(),
                    )
                    .weights
                }
                ModelKind::LinearSvm => {
                    let mu = if ridge > 0.0 { ridge } else { 1e-3 };
                    gradient_descent(
                        &SmoothedHingeLoss::new(mu, 0.5),
                        &self.data.train,
                        TrainConfig::default(),
                    )
                    .weights
                }
            };
            self.menu.insert(
                kind,
                MenuEntry {
                    model: LinearModel::new(kind, weights),
                },
            );
        }
        Ok(&self.menu[&kind].model)
    }

    /// The cached optimal instance for `kind`, if supported.
    pub fn optimal_model(&self, kind: ModelKind) -> Option<&LinearModel> {
        self.menu.get(&kind).map(|e| &e.model)
    }

    /// Derives the revenue-maximizing arbitrage-free pricing from a
    /// seller's market research (Figure 2(b)→(c): the Theorem 10 DP on the
    /// buyer population).
    pub fn price_from_research(&self, seller: &Seller) -> RevenueSolution {
        solve_bv_dp(&seller.buyer_population())
    }

    /// Builds the buyer-facing price–error curve for `kind` over `ncps`
    /// (step 2 of the broker–buyer interaction).
    pub fn price_error_curve(
        &self,
        kind: ModelKind,
        transform: &dyn ErrorTransform,
        pricing: &PricingFunction,
        ncps: &[f64],
    ) -> Result<PriceErrorCurve, MarketError> {
        if !self.menu.contains_key(&kind) {
            return Err(MarketError::UnsupportedModel(kind));
        }
        let mut points: Vec<PriceErrorPoint> = ncps
            .iter()
            .map(|&ncp| PriceErrorPoint {
                ncp,
                expected_error: transform.expected_error(ncp),
                price: pricing.price_for_ncp(ncp),
            })
            .collect();
        points.sort_by(|a, b| a.ncp.partial_cmp(&b.ncp).expect("finite NCPs"));
        Ok(PriceErrorCurve { points })
    }

    /// Fulfills a purchase (steps 3–4): resolves the request to an NCP,
    /// charges `p̄(1/δ)`, and returns a freshly-noised instance.
    pub fn buy(
        &mut self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let (sale, tx) = self.quote(kind, request, pricing, transform, rng)?;
        self.ledger.push(tx);
        Ok(sale)
    }

    /// Read-only purchase execution: resolves, prices, and noises exactly
    /// like [`Broker::buy`] but leaves the ledger untouched, returning the
    /// [`Transaction`] for the caller to [`Broker::settle`]. This is the
    /// building block for sharded simulation and the striped concurrent
    /// broker, where many quotes run against `&Broker` in parallel and the
    /// ledger is merged in one deterministic step.
    pub fn quote(
        &self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<(Sale, Transaction), MarketError> {
        let _span = mbp_obs::span("mbp.core.buy");
        let result = (|| {
            let entry = self
                .menu
                .get(&kind)
                .ok_or(MarketError::UnsupportedModel(kind))?;
            execute_purchase(
                entry,
                self.mechanism.as_ref(),
                pricing,
                transform,
                kind,
                request,
                rng,
            )
        })();
        record_purchase_outcome(result.as_ref().map(|(sale, _)| sale));
        result
    }

    /// Appends already-executed transactions to the ledger — the merge step
    /// for quotes produced by [`Broker::quote`]. Callers control the order,
    /// which is what makes sharded ledger merges deterministic.
    pub fn settle<I: IntoIterator<Item = Transaction>>(&mut self, txs: I) {
        self.ledger.extend(txs);
    }

    /// All completed transactions.
    pub fn ledger(&self) -> &[Transaction] {
        &self.ledger
    }

    /// Total revenue collected so far.
    pub fn total_revenue(&self) -> f64 {
        self.ledger.iter().map(|t| t.price).sum()
    }
}

/// Records the metrics for one purchase attempt: `mbp.core.buy.count` and
/// the running `mbp.core.revenue.total` gauge on success,
/// `mbp.core.buy.rejected` (plus an error event) on failure.
fn record_purchase_outcome(result: Result<&Sale, &MarketError>) {
    match result {
        Ok(sale) => {
            mbp_obs::inc("mbp.core.buy.count");
            mbp_obs::gauge_add("mbp.core.revenue.total", sale.price);
        }
        Err(e) => {
            mbp_obs::inc("mbp.core.buy.rejected");
            mbp_obs::event(
                mbp_obs::Verbosity::Error,
                "mbp.core.broker",
                "purchase rejected",
                &[("reason", e.to_string())],
            );
        }
    }
}

/// Shared purchase path: resolves the request to an NCP, prices it, and
/// releases a freshly noised instance.
fn execute_purchase(
    entry: &MenuEntry,
    mechanism: &dyn NoiseMechanism,
    pricing: &PricingFunction,
    transform: &dyn ErrorTransform,
    kind: ModelKind,
    request: PurchaseRequest,
    rng: &mut MbpRng,
) -> Result<(Sale, Transaction), MarketError> {
    let ncp = match request {
        PurchaseRequest::AtNcp(d) => {
            if !(d > 0.0 && d.is_finite()) {
                return Err(MarketError::BadRequest(format!(
                    "NCP must be positive and finite, got {d}"
                )));
            }
            d
        }
        PurchaseRequest::ErrorBudget(eps) => transform
            .ncp_for_error(eps)
            .filter(|&d| d > 0.0)
            .ok_or(MarketError::UnachievableError(eps))?,
        PurchaseRequest::PriceBudget(budget) => {
            if !(budget >= 0.0 && budget.is_finite()) {
                return Err(MarketError::BadRequest(format!(
                    "budget must be non-negative, got {budget}"
                )));
            }
            let x = pricing
                .max_precision_for_budget(budget)
                .ok_or(MarketError::InsufficientBudget(budget))?;
            // Budgets at/above the saturation price buy the most precise
            // version on the menu grid (never the noiseless model: the
            // grid caps precision).
            let x_max = *pricing.grid().last().expect("pricing grid is non-empty");
            let x = x.min(x_max);
            if x <= 0.0 {
                return Err(MarketError::InsufficientBudget(budget));
            }
            1.0 / x
        }
    };
    let price = pricing.price_for_ncp(ncp);
    let weights = mechanism.perturb(entry.model.weights(), ncp, rng);
    let model = entry.model.with_weights(weights);
    Ok((
        Sale {
            model,
            price,
            ncp,
            expected_error: transform.expected_error(ncp),
        },
        Transaction { kind, ncp, price },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{LinRegSquareTransform, SquareLossTransform};
    use crate::market::curves::{grid, DemandShape, ValueShape};
    use mbp_data::synth;
    use mbp_randx::seeded_rng;

    fn market_data(seed: u64) -> TrainTest {
        let mut rng = seeded_rng(seed);
        let ds = synth::simulated1(600, 5, 0.5, &mut rng);
        ds.split(0.75, &mut rng)
    }

    fn simple_pricing() -> PricingFunction {
        let g: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p: Vec<f64> = g.iter().map(|x| 10.0 * x.sqrt()).collect();
        PricingFunction::from_points(g, p).unwrap()
    }

    #[test]
    fn support_is_idempotent_one_time_cost() {
        let mut broker = Broker::new(market_data(1));
        let w1 = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let w2 = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        assert_eq!(w1, w2);
        assert!(broker.optimal_model(ModelKind::LinearRegression).is_some());
        assert!(broker.optimal_model(ModelKind::LinearSvm).is_none());
    }

    #[test]
    fn buy_at_ncp_charges_curve_price() {
        let mut broker = Broker::new(market_data(2));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(7);
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.price - pricing.price_for_ncp(0.5)).abs() < 1e-12);
        assert_eq!(sale.ncp, 0.5);
        assert_eq!(broker.ledger().len(), 1);
        assert!((broker.total_revenue() - sale.price).abs() < 1e-12);
    }

    #[test]
    fn error_budget_buys_cheapest_adequate_model() {
        let mut broker = Broker::new(market_data(3));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(8);
        // With the identity transform, error budget 2.0 ⇒ δ = 2.0.
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::ErrorBudget(2.0),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.ncp - 2.0).abs() < 1e-12);
        assert!(sale.expected_error <= 2.0 + 1e-12);
    }

    #[test]
    fn price_budget_buys_most_accurate_affordable() {
        let mut broker = Broker::new(market_data(4));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(9);
        let budget = 20.0; // p̄(x) = 10√x = 20 ⇒ x = 4 ⇒ δ = 0.25
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::PriceBudget(budget),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!(sale.price <= budget + 1e-9);
        assert!((sale.ncp - 0.25).abs() < 1e-9, "ncp {}", sale.ncp);
        // A huge budget buys the top-of-grid precision (x = 10).
        let sale = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::PriceBudget(1e6),
                &pricing,
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap();
        assert!((sale.ncp - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unsupported_model_is_rejected() {
        let mut broker = Broker::new(market_data(5));
        let mut rng = seeded_rng(10);
        let err = broker
            .buy(
                ModelKind::LinearSvm,
                PurchaseRequest::AtNcp(1.0),
                &simple_pricing(),
                &SquareLossTransform,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MarketError::UnsupportedModel(_)));
    }

    #[test]
    fn unachievable_error_budget_is_rejected() {
        let data = market_data(6);
        let mut broker = Broker::new(data);
        let h = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let transform = LinRegSquareTransform::new(&broker.data().test.clone(), &h);
        let mut rng = seeded_rng(11);
        // Ask for error below the noiseless floor.
        let err = broker
            .buy(
                ModelKind::LinearRegression,
                PurchaseRequest::ErrorBudget(transform.base() * 0.5),
                &simple_pricing(),
                &transform,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MarketError::UnachievableError(_)));
    }

    #[test]
    fn price_error_curve_is_well_formed() {
        let mut broker = Broker::new(market_data(12));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let ncps: Vec<f64> = (1..=20).map(|i| i as f64 * 0.25).collect();
        let curve = broker
            .price_error_curve(
                ModelKind::LinearRegression,
                &SquareLossTransform,
                &simple_pricing(),
                &ncps,
            )
            .unwrap();
        assert_eq!(curve.points.len(), 20);
        assert!(curve.is_well_formed());
    }

    #[test]
    fn seller_research_to_pricing_pipeline() {
        let data = market_data(13);
        let seller = Seller::new(
            data,
            grid(20.0, 100.0, 9),
            ValueCurve::new(ValueShape::Concave { power: 2.0 }, 0.0, 100.0),
            DemandCurve::new(DemandShape::Uniform),
        );
        let broker = Broker::new(market_data(14));
        let sol = broker.price_from_research(&seller);
        // Resulting prices live on the seller's grid and are feasible.
        assert_eq!(sol.pricing.grid().len(), 9);
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn published_listing_sells_without_resupplying_pricing() {
        let mut broker = Broker::new(market_data(21));
        broker.support(ModelKind::LinearRegression, 0.0).unwrap();
        let pricing = simple_pricing();
        broker
            .publish(
                ModelKind::LinearRegression,
                pricing.clone(),
                Box::new(SquareLossTransform),
            )
            .unwrap();
        assert_eq!(
            broker.listed_pricing(ModelKind::LinearRegression).unwrap(),
            &pricing
        );
        let mut rng = seeded_rng(22);
        let sale = broker
            .buy_listed(
                ModelKind::LinearRegression,
                PurchaseRequest::AtNcp(0.5),
                &mut rng,
            )
            .unwrap();
        assert!((sale.price - pricing.price_for_ncp(0.5)).abs() < 1e-12);
        assert_eq!(broker.ledger().len(), 1);
        // Unlisted model types are rejected.
        assert!(matches!(
            broker.buy_listed(ModelKind::LinearSvm, PurchaseRequest::AtNcp(1.0), &mut rng),
            Err(MarketError::UnsupportedModel(_))
        ));
        // Publishing an unsupported model is rejected.
        assert!(matches!(
            broker.publish(ModelKind::LinearSvm, pricing, Box::new(SquareLossTransform)),
            Err(MarketError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn sales_are_noisy_but_unbiased_around_h_star() {
        let mut broker = Broker::new(market_data(15));
        let h_star = broker
            .support(ModelKind::LinearRegression, 0.0)
            .unwrap()
            .weights()
            .clone();
        let pricing = simple_pricing();
        let mut rng = seeded_rng(16);
        let mut mean = mbp_linalg::Vector::zeros(h_star.len());
        let reps = 3000;
        for _ in 0..reps {
            let sale = broker
                .buy(
                    ModelKind::LinearRegression,
                    PurchaseRequest::AtNcp(1.0),
                    &pricing,
                    &SquareLossTransform,
                    &mut rng,
                )
                .unwrap();
            mean.axpy(1.0 / reps as f64, sale.model.weights()).unwrap();
        }
        let bias = mean.sub(&h_star).unwrap().norm2();
        assert!(bias < 0.05, "bias {bias}");
        assert_eq!(broker.ledger().len(), reps);
    }
}
