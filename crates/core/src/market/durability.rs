//! The durability seam between the in-memory market and a write-ahead log.
//!
//! The broker itself stays storage-agnostic: `mbp-core` defines only the
//! [`DurabilitySink`] observer trait, and the `mbp-wal` crate implements it
//! on top of an append-only segment log. The seam is deliberately narrow —
//! the sink sees exactly the events a recovery needs to rebuild broker
//! state bit-identically:
//!
//! * **supports** — `(kind, ridge)` pairs; training is deterministic, so
//!   replaying a support re-derives the same optimal weights to the bit;
//! * **publishes** — the pricing knots `(grid, prices)`; re-compiling the
//!   listing from the same points rebuilds the same table;
//! * **sales** — the ledger [`Transaction`]s, whose multiset is the
//!   revenue record;
//! * **epoch rollovers** and the **RNG cursor** — session markers that let
//!   a restarted process continue its seed stream instead of reusing it.
//!
//! Hook placement is the part that keeps the accounting exact: sinks fire
//! where a transaction *originates* (the `buy*` family, under the caller's
//! stripe lock in the shared broker), never in [`Broker::settle`] — settle
//! is the reconciliation path that moves already-recorded transactions
//! from stripes into the core ledger, and recording there would double
//! count every striped sale. Recovery replays through `settle` for exactly
//! that reason.
//!
//! [`Broker::settle`]: crate::market::Broker::settle

use crate::market::agents::Transaction;
use mbp_ml::ModelKind;

/// Observer for market events that must survive a crash.
///
/// Implementations must be cheap and non-blocking in the common case
/// (buffered appends): sale hooks run while the caller holds a ledger
/// stripe lock. A sink must never call back into the broker — the lock
/// hierarchy is `core write` / `stripe` → `sink`, acquired strictly in
/// that order and never reversed.
pub trait DurabilitySink: Send + Sync {
    /// One completed sale. Fired once per transaction at its origination
    /// site, before or immediately after the ledger/stripe push.
    fn record_sale(&self, tx: &Transaction);

    /// A batch of completed sales, in settlement order. Default loops over
    /// [`DurabilitySink::record_sale`]; implementations may override to
    /// amortize their own locking.
    fn record_sales(&self, txs: &[Transaction]) {
        for tx in txs {
            self.record_sale(tx);
        }
    }

    /// A model kind was (re)trained onto the menu at `ridge`.
    fn record_support(&self, kind: ModelKind, ridge: f64);

    /// A listing was published: the pricing knots `(grid[i], prices[i])`.
    /// The durable form keeps the points, not the compiled table — the
    /// table is a pure function of the points.
    fn record_publish(&self, kind: ModelKind, grid: &[f64], prices: &[f64]);

    /// An epoch rollover (adaptive-pricing sessions).
    fn record_epoch(&self, epoch: u64);

    /// The RNG session cursor: `seed` is the session's base seed, `draws`
    /// an implementation-defined position marker (e.g. the number of
    /// seeds handed out by a `SeedStream`).
    fn record_rng_cursor(&self, seed: u64, draws: u64);
}
