//! The marketplace: agents and their interaction protocol (Figures 1–2).
//!
//! Three agents participate (Section 3.1):
//!
//! * the **seller** ([`Seller`]) owns the dataset and, via market research,
//!   the buyer value and demand curves;
//! * the **broker** ([`Broker`]) trains the optimal model once per
//!   supported model type, derives an arbitrage-free pricing function from
//!   the seller's curves, presents price–error curves, and fulfills
//!   purchases by releasing freshly-noised model instances;
//! * the **buyer** ([`Buyer`]) picks a point on the curve, or specifies an
//!   error budget or a price budget (the three options of Section 3.2).
//!
//! [`simulation`] closes the loop: it streams synthetic buyers drawn from
//! the research curves through the broker and checks that predicted and
//! realized revenue coincide.

mod agents;
pub mod concurrent;
pub mod curves;
pub mod durability;
pub mod epochs;
pub mod simulation;

pub use durability::DurabilitySink;

pub use agents::{
    Broker, Buyer, MarketError, PriceErrorCurve, PriceErrorPoint, PriceQuote, PurchaseRequest,
    QuoteBatch, Sale, SaleArena, Seller, Transaction, MAX_BATCH,
};
