//! Monte-Carlo market simulation: a stream of buyers drawn from the
//! seller's research curves purchases (or declines) against a pricing
//! function, validating that the revenue the optimizer *predicts* is the
//! revenue the market *realizes*.
//!
//! Each simulated buyer samples an accuracy preference from the demand
//! curve, a valuation from the value curve (optionally jittered to model
//! research error), and buys the model at their preferred precision iff
//! the listed price is within their valuation — exactly the buyer model of
//! Section 5's `T_bv` objective.

use crate::error::ErrorTransform;
use crate::market::agents::{Broker, MarketError, PurchaseRequest, Seller, Transaction};
use crate::pricing::PricingFunction;
use crate::revenue;
use mbp_ml::ModelKind;
use mbp_randx::{seeded_rng, Categorical, Distribution, MbpRng, Normal, SeedStream};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Number of buyer arrivals to simulate.
    pub n_buyers: usize,
    /// Relative valuation jitter: each buyer's valuation is
    /// `v·(1 + jitter·N(0,1))`, clamped at 0. Zero reproduces the research
    /// curves exactly.
    pub valuation_jitter: f64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            n_buyers: 1000,
            valuation_jitter: 0.0,
        }
    }
}

/// Result of a simulated selling season.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Expected revenue per buyer predicted from the research curves
    /// (`Σ b_j·p(a_j)·1[p ≤ v_j]` with demand normalized to mass 1).
    pub predicted_revenue_per_buyer: f64,
    /// Average realized revenue per simulated buyer.
    pub realized_revenue_per_buyer: f64,
    /// Buyers who purchased.
    pub served: usize,
    /// Buyers who declined (price above their valuation).
    pub declined: usize,
    /// Affordability predicted from the curves.
    pub predicted_affordability: f64,
}

impl SimulationOutcome {
    /// Realized affordability ratio.
    pub fn realized_affordability(&self) -> f64 {
        let total = self.served + self.declined;
        if total == 0 {
            0.0
        } else {
            self.served as f64 / total as f64
        }
    }
}

/// Runs a selling season for `kind` against `pricing`.
///
/// The broker must already support `kind`. Buyers who can afford their
/// preferred precision purchase through the normal [`Broker::buy`] path
/// (so the ledger and the released noisy instances are real); the rest
/// walk away.
///
/// # Panics
/// Panics when `cfg.n_buyers == 0` or the jitter is negative.
pub fn simulate_market(
    broker: &mut Broker,
    seller: &Seller,
    kind: ModelKind,
    pricing: &PricingFunction,
    transform: &dyn ErrorTransform,
    cfg: SimulationConfig,
    rng: &mut MbpRng,
) -> Result<SimulationOutcome, MarketError> {
    assert!(cfg.n_buyers > 0, "need at least one buyer");
    assert!(
        cfg.valuation_jitter >= 0.0 && cfg.valuation_jitter.is_finite(),
        "jitter must be >= 0"
    );
    let population = seller.buyer_population();
    let predicted_revenue_per_buyer = revenue::revenue(pricing, &population);
    let predicted_affordability = revenue::affordability(pricing, &population);
    let demands: Vec<f64> = population.iter().map(|p| p.demand).collect();
    let arrivals = Categorical::new(&demands);
    let jitter = Normal::new(0.0, 1.0);

    let _span = mbp_obs::span("mbp.core.simulate");
    let ledger_before = broker.total_revenue();
    let mut served = 0usize;
    let mut declined = 0usize;
    for _ in 0..cfg.n_buyers {
        let idx = arrivals.sample(rng);
        let point = &population[idx];
        let valuation = if cfg.valuation_jitter > 0.0 {
            (point.valuation * (1.0 + cfg.valuation_jitter * jitter.sample(rng))).max(0.0)
        } else {
            point.valuation
        };
        let price = pricing.price_at(point.a);
        if price <= valuation + 1e-12 {
            broker.buy(
                kind,
                PurchaseRequest::AtNcp(1.0 / point.a),
                pricing,
                transform,
                rng,
            )?;
            served += 1;
        } else {
            declined += 1;
        }
    }
    let realized = broker.total_revenue() - ledger_before;
    mbp_obs::counter_add("mbp.core.simulate.served", served as u64);
    mbp_obs::counter_add("mbp.core.simulate.declined", declined as u64);
    mbp_obs::event(
        mbp_obs::Verbosity::Info,
        "mbp.core.simulate",
        "season complete",
        &[
            ("buyers", cfg.n_buyers.to_string()),
            ("served", served.to_string()),
            ("declined", declined.to_string()),
            (
                "realized_per_buyer",
                format!("{:.6}", realized / cfg.n_buyers as f64),
            ),
        ],
    );
    Ok(SimulationOutcome {
        predicted_revenue_per_buyer,
        realized_revenue_per_buyer: realized / cfg.n_buyers as f64,
        served,
        declined,
        predicted_affordability,
    })
}

/// Runs a selling season against the *published* listing for `kind`,
/// submitting buyers in batches of `batch_size` through
/// [`Broker::buy_batch`] — the serving fast path: one listing lookup and
/// one compiled-table resolution per batch instead of per buyer.
///
/// The broker must already [`Broker::publish`] a listing for `kind`; its
/// pricing is used both to quote buyers and to compute the predicted
/// revenue. Randomness is rooted at `master_seed`, split into one stream
/// for buyer arrivals/valuations and one for release noise, so the full
/// outcome — counts, ledger sequence, revenue, and the released noise —
/// is identical for every `batch_size`.
///
/// # Panics
/// Panics when `cfg.n_buyers == 0`, `batch_size == 0`, or the jitter is
/// negative.
pub fn simulate_market_batched(
    broker: &mut Broker,
    seller: &Seller,
    kind: ModelKind,
    cfg: SimulationConfig,
    batch_size: usize,
    master_seed: u64,
) -> Result<SimulationOutcome, MarketError> {
    assert!(cfg.n_buyers > 0, "need at least one buyer");
    assert!(batch_size > 0, "batch size must be positive");
    assert!(
        cfg.valuation_jitter >= 0.0 && cfg.valuation_jitter.is_finite(),
        "jitter must be >= 0"
    );
    let pricing = broker
        .listed_pricing(kind)
        .ok_or(MarketError::UnsupportedModel(kind))?
        .clone();
    let population = seller.buyer_population();
    let predicted_revenue_per_buyer = revenue::revenue(&pricing, &population);
    let predicted_affordability = revenue::affordability(&pricing, &population);
    let demands: Vec<f64> = population.iter().map(|p| p.demand).collect();
    let arrivals = Categorical::new(&demands);
    let jitter = Normal::new(0.0, 1.0);

    let _span = mbp_obs::span("mbp.core.simulate");
    let mut seeds = SeedStream::new(master_seed);
    let mut buyer_rng = seeded_rng(seeds.next_seed());
    let mut noise_rng = seeded_rng(seeds.next_seed());
    let ledger_before = broker.total_revenue();
    broker.reserve_ledger(cfg.n_buyers);
    let mut requests: Vec<PurchaseRequest> = Vec::with_capacity(batch_size);
    let mut served = 0usize;
    let mut declined = 0usize;
    let mut remaining = cfg.n_buyers;
    while remaining > 0 {
        let take = remaining.min(batch_size);
        requests.clear();
        for _ in 0..take {
            let idx = arrivals.sample(&mut buyer_rng);
            let point = &population[idx];
            let valuation = if cfg.valuation_jitter > 0.0 {
                (point.valuation * (1.0 + cfg.valuation_jitter * jitter.sample(&mut buyer_rng)))
                    .max(0.0)
            } else {
                point.valuation
            };
            let price = pricing.price_at(point.a);
            if price <= valuation + 1e-12 {
                requests.push(PurchaseRequest::AtNcp(1.0 / point.a));
            } else {
                declined += 1;
            }
        }
        // The whole batched season is a pure function of `master_seed`, so
        // every batch's traces carry it as the replay seed: re-running the
        // season from a slow exemplar's seed reproduces the quote.
        mbp_obs::set_request_seed(master_seed);
        // A chunk where every buyer declined yields no requests; batch
        // entry points reject empty batches as a caller error, so skip.
        if !requests.is_empty() {
            for result in broker.buy_batch(kind, &requests, &mut noise_rng)? {
                result?;
                served += 1;
            }
        }
        remaining -= take;
    }
    let realized = broker.total_revenue() - ledger_before;
    mbp_obs::counter_add("mbp.core.simulate.served", served as u64);
    mbp_obs::counter_add("mbp.core.simulate.declined", declined as u64);
    mbp_obs::event(
        mbp_obs::Verbosity::Info,
        "mbp.core.simulate",
        "batched season complete",
        &[
            ("buyers", cfg.n_buyers.to_string()),
            ("batch_size", batch_size.to_string()),
            ("served", served.to_string()),
            ("declined", declined.to_string()),
            (
                "realized_per_buyer",
                format!("{:.6}", realized / cfg.n_buyers as f64),
            ),
        ],
    );
    Ok(SimulationOutcome {
        predicted_revenue_per_buyer,
        realized_revenue_per_buyer: realized / cfg.n_buyers as f64,
        served,
        declined,
        predicted_affordability,
    })
}

/// Buyers per shard in [`simulate_market_sharded`]. The shard layout is a
/// pure function of `n_buyers`, so outcomes are independent of the thread
/// count executing the shards.
pub const SHARD_BUYERS: usize = 512;

/// Per-shard partial outcome, merged in shard-index order.
struct ShardOutcome {
    served: usize,
    declined: usize,
    paid: f64,
    txs: Vec<Transaction>,
}

/// Runs a selling season with buyers sharded across the `mbp-par` pool.
///
/// Semantics match [`simulate_market`] except that randomness is rooted at
/// `master_seed` instead of a caller-held RNG: each fixed-size shard of
/// buyers draws from its own RNG derived through an [`mbp_randx::SeedStream`]
/// (seed `i` for shard `i`), quotes purchases against the shared `&Broker`
/// state, and the per-shard ledgers are settled into the broker in
/// shard-index order. Both the shard layout and the seed assignment depend
/// only on `(n_buyers, master_seed)`, so the outcome — counts, realized
/// revenue, and the exact ledger sequence — is identical at every thread
/// count, including fully sequential execution.
///
/// # Panics
/// Panics when `cfg.n_buyers == 0` or the jitter is negative.
pub fn simulate_market_sharded(
    broker: &mut Broker,
    seller: &Seller,
    kind: ModelKind,
    pricing: &PricingFunction,
    transform: &(dyn ErrorTransform + Sync),
    cfg: SimulationConfig,
    master_seed: u64,
) -> Result<SimulationOutcome, MarketError> {
    assert!(cfg.n_buyers > 0, "need at least one buyer");
    assert!(
        cfg.valuation_jitter >= 0.0 && cfg.valuation_jitter.is_finite(),
        "jitter must be >= 0"
    );
    let population = seller.buyer_population();
    let predicted_revenue_per_buyer = revenue::revenue(pricing, &population);
    let predicted_affordability = revenue::affordability(pricing, &population);
    let demands: Vec<f64> = population.iter().map(|p| p.demand).collect();
    let arrivals = Categorical::new(&demands);
    let jitter = Normal::new(0.0, 1.0);

    let _span = mbp_obs::span("mbp.core.simulate");
    let n_shards = mbp_par::chunk_count(cfg.n_buyers, SHARD_BUYERS);
    mbp_obs::counter_add("mbp.core.simulate.shards", n_shards as u64);
    let mut seeds = SeedStream::new(master_seed);
    let shard_seeds: Vec<u64> = (0..n_shards).map(|_| seeds.next_seed()).collect();

    let shards: Vec<Result<ShardOutcome, MarketError>> = {
        let broker = &*broker;
        mbp_par::par_map_chunks(cfg.n_buyers, SHARD_BUYERS, |range| {
            let shard_index = range.start / SHARD_BUYERS;
            let mut rng = seeded_rng(shard_seeds[shard_index]);
            let mut out = ShardOutcome {
                served: 0,
                declined: 0,
                paid: 0.0,
                txs: Vec::new(),
            };
            for _ in range {
                let idx = arrivals.sample(&mut rng);
                let point = &population[idx];
                let valuation = if cfg.valuation_jitter > 0.0 {
                    (point.valuation * (1.0 + cfg.valuation_jitter * jitter.sample(&mut rng)))
                        .max(0.0)
                } else {
                    point.valuation
                };
                let price = pricing.price_at(point.a);
                if price <= valuation + 1e-12 {
                    // A slow quote replays by re-running its whole shard
                    // (the shard RNG is shared by every buyer in it).
                    mbp_obs::set_request_seed(shard_seeds[shard_index]);
                    let (sale, tx) = broker.quote(
                        kind,
                        PurchaseRequest::AtNcp(1.0 / point.a),
                        pricing,
                        transform,
                        &mut rng,
                    )?;
                    out.paid += sale.price;
                    out.txs.push(tx);
                    out.served += 1;
                } else {
                    out.declined += 1;
                }
            }
            Ok(out)
        })
    };

    // Deterministic merge: shards settle in shard-index order, so the
    // ledger sequence and the floating-point revenue sum never depend on
    // which thread ran which shard.
    let mut served = 0usize;
    let mut declined = 0usize;
    let mut realized = 0.0f64;
    for shard in shards {
        let shard = shard?;
        served += shard.served;
        declined += shard.declined;
        realized += shard.paid;
        broker.settle(shard.txs);
    }
    mbp_obs::counter_add("mbp.core.simulate.served", served as u64);
    mbp_obs::counter_add("mbp.core.simulate.declined", declined as u64);
    mbp_obs::event(
        mbp_obs::Verbosity::Info,
        "mbp.core.simulate",
        "sharded season complete",
        &[
            ("buyers", cfg.n_buyers.to_string()),
            ("shards", n_shards.to_string()),
            ("served", served.to_string()),
            ("declined", declined.to_string()),
            (
                "realized_per_buyer",
                format!("{:.6}", realized / cfg.n_buyers as f64),
            ),
        ],
    );
    Ok(SimulationOutcome {
        predicted_revenue_per_buyer,
        realized_revenue_per_buyer: realized / cfg.n_buyers as f64,
        served,
        declined,
        predicted_affordability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SquareLossTransform;
    use crate::market::curves::{grid, DemandCurve, DemandShape, ValueCurve, ValueShape};
    use mbp_data::synth;
    use mbp_randx::seeded_rng;

    fn setup(seed: u64) -> (Seller, Broker) {
        let mut rng = seeded_rng(seed);
        let data = synth::simulated1(800, 4, 0.5, &mut rng).split(0.75, &mut rng);
        let seller = Seller::new(
            data.clone(),
            grid(10.0, 100.0, 10),
            ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0),
            DemandCurve::new(DemandShape::Uniform),
        );
        let mut broker = Broker::new(data);
        broker
            .support(ModelKind::LinearRegression, 1e-6)
            .expect("train");
        (seller, broker)
    }

    #[test]
    fn realized_revenue_matches_prediction_without_jitter() {
        let (seller, mut broker) = setup(71);
        let pricing = broker.price_from_research(&seller).pricing;
        let mut rng = seeded_rng(72);
        let out = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &pricing,
            &SquareLossTransform,
            SimulationConfig {
                n_buyers: 4000,
                valuation_jitter: 0.0,
            },
            &mut rng,
        )
        .unwrap();
        let rel = (out.realized_revenue_per_buyer - out.predicted_revenue_per_buyer).abs()
            / out.predicted_revenue_per_buyer;
        assert!(
            rel < 0.05,
            "realized {} vs predicted {}",
            out.realized_revenue_per_buyer,
            out.predicted_revenue_per_buyer
        );
        let aff_gap = (out.realized_affordability() - out.predicted_affordability).abs();
        assert!(aff_gap < 0.03, "affordability gap {aff_gap}");
        assert_eq!(out.served + out.declined, 4000);
        assert_eq!(broker.ledger().len(), out.served);
    }

    #[test]
    fn jitter_serves_some_marginal_buyers_both_ways() {
        let (seller, mut broker) = setup(73);
        let pricing = broker.price_from_research(&seller).pricing;
        let mut rng = seeded_rng(74);
        let out = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &pricing,
            &SquareLossTransform,
            SimulationConfig {
                n_buyers: 2000,
                valuation_jitter: 0.3,
            },
            &mut rng,
        )
        .unwrap();
        // With jitter the outcome still lands in a sane band around the
        // prediction (prices sit at valuations, so jitter pushes marginal
        // buyers out roughly half the time).
        assert!(out.served > 0 && out.declined > 0);
        assert!(out.realized_revenue_per_buyer > 0.2 * out.predicted_revenue_per_buyer);
        assert!(out.realized_revenue_per_buyer < 1.5 * out.predicted_revenue_per_buyer);
    }

    #[test]
    fn higher_prices_reduce_realized_affordability() {
        let (seller, mut broker) = setup(75);
        let dp = broker.price_from_research(&seller).pricing;
        let expensive = PricingFunction::from_points(
            dp.grid().to_vec(),
            dp.prices().iter().map(|p| p * 3.0).collect(),
        )
        .unwrap();
        let mut rng = seeded_rng(76);
        let cheap_out = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &dp,
            &SquareLossTransform,
            SimulationConfig::default(),
            &mut rng,
        )
        .unwrap();
        let costly_out = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &expensive,
            &SquareLossTransform,
            SimulationConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(costly_out.realized_affordability() < cheap_out.realized_affordability());
    }

    #[test]
    fn sharded_simulation_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let (seller, mut broker) = setup(81);
            let pricing = broker.price_from_research(&seller).pricing;
            mbp_par::with_threads(threads, || {
                let out = simulate_market_sharded(
                    &mut broker,
                    &seller,
                    ModelKind::LinearRegression,
                    &pricing,
                    &SquareLossTransform,
                    SimulationConfig {
                        n_buyers: 3000,
                        valuation_jitter: 0.1,
                    },
                    4242,
                )
                .unwrap();
                let prices: Vec<f64> = broker.ledger().iter().map(|t| t.price).collect();
                (
                    out.served,
                    out.declined,
                    out.realized_revenue_per_buyer,
                    prices,
                )
            })
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert_eq!(one, two);
        assert_eq!(two, four);
        assert!(one.0 > 0, "some buyers must be served");
        assert_eq!(one.0 + one.1, 3000);
        assert_eq!(one.3.len(), one.0, "one ledger entry per served buyer");
    }

    #[test]
    fn sharded_simulation_tracks_prediction_like_the_sequential_path() {
        let (seller, mut broker) = setup(83);
        let pricing = broker.price_from_research(&seller).pricing;
        let out = simulate_market_sharded(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &pricing,
            &SquareLossTransform,
            SimulationConfig {
                n_buyers: 4000,
                valuation_jitter: 0.0,
            },
            97,
        )
        .unwrap();
        let rel = (out.realized_revenue_per_buyer - out.predicted_revenue_per_buyer).abs()
            / out.predicted_revenue_per_buyer;
        assert!(
            rel < 0.05,
            "realized {} vs predicted {}",
            out.realized_revenue_per_buyer,
            out.predicted_revenue_per_buyer
        );
        assert_eq!(broker.ledger().len(), out.served);
    }

    /// The batched season is a pure function of the master seed: every
    /// batch size yields the same counts, ledger, and revenue, and it
    /// tracks the research prediction like the sequential path.
    #[test]
    fn batched_simulation_is_invariant_to_batch_size() {
        let run = |batch_size: usize| {
            let (seller, mut broker) = setup(85);
            let pricing = broker.price_from_research(&seller).pricing;
            broker
                .publish(
                    ModelKind::LinearRegression,
                    pricing,
                    Box::new(SquareLossTransform),
                )
                .unwrap();
            let out = simulate_market_batched(
                &mut broker,
                &seller,
                ModelKind::LinearRegression,
                SimulationConfig {
                    n_buyers: 2000,
                    valuation_jitter: 0.1,
                },
                batch_size,
                5151,
            )
            .unwrap();
            let prices: Vec<f64> = broker.ledger().iter().map(|t| t.price).collect();
            (
                out.served,
                out.declined,
                out.realized_revenue_per_buyer,
                out.predicted_revenue_per_buyer,
                prices,
            )
        };
        let small = run(64);
        let medium = run(256);
        let whole = run(2000);
        assert_eq!(small, medium);
        assert_eq!(medium, whole);
        assert!(small.0 > 0, "some buyers must be served");
        assert_eq!(small.0 + small.1, 2000);
        assert_eq!(small.4.len(), small.0);
        // DP prices sit at valuations, so jitter pushes marginal buyers out
        // roughly half the time; the realized revenue lands in the same
        // sane band the sequential jittered season is held to.
        assert!(
            small.2 > 0.2 * small.3 && small.2 < 1.5 * small.3,
            "realized {} vs predicted {}",
            small.2,
            small.3
        );
    }

    #[test]
    fn batched_simulation_requires_a_listing() {
        let (seller, mut broker) = setup(86);
        let err = simulate_market_batched(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            SimulationConfig::default(),
            128,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, MarketError::UnsupportedModel(_)));
    }

    #[test]
    #[should_panic(expected = "at least one buyer")]
    fn zero_buyers_panics() {
        let (seller, mut broker) = setup(77);
        let pricing = broker.price_from_research(&seller).pricing;
        let mut rng = seeded_rng(78);
        let _ = simulate_market(
            &mut broker,
            &seller,
            ModelKind::LinearRegression,
            &pricing,
            &SquareLossTransform,
            SimulationConfig {
                n_buyers: 0,
                valuation_jitter: 0.0,
            },
            &mut rng,
        );
    }
}
