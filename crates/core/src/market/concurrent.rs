//! A thread-safe broker front-end with striped ledger state.
//!
//! A real marketplace serves many buyers concurrently. The expensive part of
//! a purchase — training the noisy instance and pricing it — only *reads*
//! broker state (menu, curve, data), so concurrent buys quote under a shared
//! `RwLock` read guard and never exclude each other. The only mutation a buy
//! performs is appending one [`Transaction`], which lands in one of
//! [`LEDGER_STRIPES`] independently locked stripes chosen round-robin, so
//! even the ledger push rarely collides. Maintenance operations
//! ([`SharedBroker::with_broker`]) take the write lock, drain the stripes
//! into the core ledger in stripe order, and get the fully reconciled broker.
//!
//! Contention (a buy arriving while maintenance holds the core lock, or two
//! buys landing on the same stripe mid-push) is counted both in the
//! process-global `mbp.core.sharedbroker.contention` counter and in a
//! handle-local counter ([`SharedBroker::contention_count`]) that tests can
//! read race-free. Under the pre-PR design every buy serialized behind one
//! global mutex; the stress test below shows the striped path records
//! strictly less contention on the same workload.

use crate::error::ErrorTransform;
use crate::market::agents::{
    kind_label, Broker, MarketError, PriceQuote, PurchaseRequest, Sale, SaleArena, Transaction,
};
use crate::market::durability::DurabilitySink;
use crate::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::MbpRng;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independently locked ledger stripes.
///
/// Eight is comfortably above the thread counts the simulation and CLI use;
/// the round-robin assignment means two buys only share a stripe when they
/// are `LEDGER_STRIPES` purchases apart and racing on the push itself.
pub const LEDGER_STRIPES: usize = 8;

struct SharedState {
    /// Menu, pricing curve, training data, and the *reconciled* ledger.
    core: RwLock<Broker>,
    /// Unreconciled transactions, drained into `core` in stripe order by
    /// [`SharedBroker::with_broker`].
    stripes: [Mutex<Vec<Transaction>>; LEDGER_STRIPES],
    /// Round-robin cursor for stripe assignment.
    next_stripe: AtomicUsize,
    /// Handle-local mirror of `mbp.core.sharedbroker.contention`.
    contention: AtomicU64,
    /// Optional write-ahead observer for the striped buy paths. Sale
    /// records are emitted *while the stripe lock is held*, so the durable
    /// order within a stripe matches the stripe's settlement order and the
    /// lock hierarchy stays `stripe → sink` (the sink never takes broker
    /// locks; see [`DurabilitySink`]).
    durability: Option<Arc<dyn DurabilitySink>>,
}

/// A cloneable, thread-safe handle to a broker.
#[derive(Clone)]
pub struct SharedBroker {
    inner: Arc<SharedState>,
}

impl SharedBroker {
    /// Wraps a broker (train the menu with [`Broker::support`] first, or
    /// through [`SharedBroker::support`]).
    pub fn new(broker: Broker) -> Self {
        SharedBroker {
            inner: Arc::new(SharedState {
                core: RwLock::new(broker),
                stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
                next_stripe: AtomicUsize::new(0),
                contention: AtomicU64::new(0),
                durability: None,
            }),
        }
    }

    /// Wraps a broker with a durability sink attached: the striped buy
    /// paths forward every settled transaction to `sink` under the stripe
    /// lock, and maintenance mutations (support/publish through the core
    /// write lock) are forwarded by the inner [`Broker`] itself.
    ///
    /// Call this *after* recovery has replayed an existing log into
    /// `broker`, so the replay is not re-recorded.
    pub fn with_durability(mut broker: Broker, sink: Arc<dyn DurabilitySink>) -> Self {
        broker.set_durability(Arc::clone(&sink));
        SharedBroker {
            inner: Arc::new(SharedState {
                core: RwLock::new(broker),
                stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
                next_stripe: AtomicUsize::new(0),
                contention: AtomicU64::new(0),
                durability: Some(sink),
            }),
        }
    }

    fn note_contention(&self) {
        self.inner.contention.fetch_add(1, Ordering::Relaxed);
        mbp_obs::inc("mbp.core.sharedbroker.contention");
    }

    /// Picks the next ledger stripe round-robin and locks it, counting a
    /// contended acquisition when the uncontended `try_lock` fails. The
    /// blocking wait on a contended stripe is attributed to the `lock_wait`
    /// trace phase under `label` (the listing being purchased).
    fn lock_next_stripe(
        &self,
        label: &'static str,
    ) -> parking_lot::MutexGuard<'_, Vec<Transaction>> {
        let idx = self.inner.next_stripe.fetch_add(1, Ordering::Relaxed) % LEDGER_STRIPES;
        // LINT-ALLOW(panic): idx < LEDGER_STRIPES by the modulo above.
        let stripe = &self.inner.stripes[idx];
        match stripe.try_lock() {
            Some(g) => g,
            None => {
                self.note_contention();
                let _wait = mbp_obs::phase_for(mbp_obs::Phase::LockWait, label, "-");
                stripe.lock()
            }
        }
    }

    /// Adds a model to the menu (delegates to [`Broker::support`]).
    pub fn support(&self, kind: ModelKind, ridge: f64) -> Result<(), MarketError> {
        self.inner.core.write().support(kind, ridge).map(|_| ())
    }

    /// Publishes a standing offer (delegates to [`Broker::publish`], which
    /// compiles the serving-side pricing table under the write lock).
    pub fn publish(
        &self,
        kind: ModelKind,
        pricing: PricingFunction,
        transform: Box<dyn ErrorTransform + Send + Sync>,
    ) -> Result<(), MarketError> {
        self.inner.core.write().publish(kind, pricing, transform)
    }

    /// Thread-safe batch purchase against the published listing for `kind`.
    ///
    /// The whole batch quotes under one shared read guard (one listing
    /// lookup, compiled-table pricing) and settles under a *single* stripe
    /// lock acquisition, so lock traffic is amortized across the batch
    /// instead of paid per purchase. Per-request failures are returned
    /// inline; the outer error fires only when `kind` has no listing.
    pub fn buy_batch(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
    ) -> Result<Vec<Result<Sale, MarketError>>, MarketError> {
        let results = {
            let core = match self.inner.core.try_read() {
                Some(g) => g,
                None => {
                    self.note_contention();
                    let _wait = mbp_obs::phase_for(mbp_obs::Phase::LockWait, kind_label(kind), "-");
                    self.inner.core.read()
                }
            };
            core.quote_batch(kind, requests, rng)?
        };
        let _settle = mbp_obs::phase_for(mbp_obs::Phase::Ledger, kind_label(kind), "-");
        let mut guard = self.lock_next_stripe(kind_label(kind));
        Ok(results
            .into_iter()
            .map(|r| {
                r.map(|(sale, tx)| {
                    if let Some(sink) = &self.inner.durability {
                        sink.record_sale(&tx);
                    }
                    guard.push(tx);
                    sale
                })
            })
            .collect())
    }

    /// Zero-allocation thread-safe batch purchase: the network serving
    /// path. The three-pass kernel runs into `arena` under a shared read
    /// guard via [`Broker::quote_batch_into`] (no ledger mutation), then
    /// the successful sales settle under a *single* stripe-lock
    /// acquisition. Prices, noise draws, and RNG consumption are
    /// bit-identical to [`Broker::buy_batch_into`] on an unshared broker;
    /// only where the transactions park differs (a stripe instead of the
    /// core ledger), and [`SharedBroker::with_broker`] reconciles that.
    pub fn buy_batch_into(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
        rng: &mut MbpRng,
        arena: &mut SaleArena,
    ) -> Result<(), MarketError> {
        {
            let core = match self.inner.core.try_read() {
                Some(g) => g,
                None => {
                    self.note_contention();
                    let _wait = mbp_obs::phase_for(mbp_obs::Phase::LockWait, kind_label(kind), "-");
                    self.inner.core.read()
                }
            };
            core.quote_batch_into(kind, requests, rng, arena)?;
        }
        let _settle = mbp_obs::phase_for(mbp_obs::Phase::Ledger, kind_label(kind), "-");
        let mut guard = self.lock_next_stripe(kind_label(kind));
        for sale in arena.results().flatten() {
            let tx = Transaction {
                kind,
                ncp: sale.ncp,
                price: sale.price,
            };
            if let Some(sink) = &self.inner.durability {
                sink.record_sale(&tx);
            }
            guard.push(tx);
        }
        Ok(())
    }

    /// Thread-safe batched quote-only path (no purchase, no RNG, no
    /// ledger): resolves and prices every request under a shared read
    /// guard via [`Broker::price_batch`].
    pub fn price_batch(
        &self,
        kind: ModelKind,
        requests: &[PurchaseRequest],
    ) -> Result<Vec<Result<PriceQuote, MarketError>>, MarketError> {
        let core = match self.inner.core.try_read() {
            Some(g) => g,
            None => {
                self.note_contention();
                let _wait = mbp_obs::phase_for(mbp_obs::Phase::LockWait, kind_label(kind), "-");
                self.inner.core.read()
            }
        };
        core.price_batch(kind, requests)
    }

    /// Thread-safe purchase; each calling thread supplies its own RNG.
    ///
    /// The quote (training + pricing) runs under a shared read guard, so
    /// concurrent buys proceed in parallel; only the final ledger push takes
    /// a stripe lock. Contention (maintenance holding the core write lock
    /// when this purchase arrives, or a racing push on the same stripe) is
    /// counted in `mbp.core.sharedbroker.contention`.
    pub fn buy(
        &self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let (sale, tx) = {
            let core = match self.inner.core.try_read() {
                Some(g) => g,
                None => {
                    self.note_contention();
                    let _wait = mbp_obs::phase_for(mbp_obs::Phase::LockWait, kind_label(kind), "-");
                    self.inner.core.read()
                }
            };
            core.quote(kind, request, pricing, transform, rng)?
        };
        {
            let _settle = mbp_obs::phase_for(mbp_obs::Phase::Ledger, kind_label(kind), "-");
            let mut guard = self.lock_next_stripe(kind_label(kind));
            if let Some(sink) = &self.inner.durability {
                sink.record_sale(&tx);
            }
            guard.push(tx);
        }
        Ok(sale)
    }

    /// Total revenue collected so far (reconciled ledger plus the
    /// still-striped transactions).
    pub fn total_revenue(&self) -> f64 {
        let core = self.inner.core.read();
        let striped: f64 = self
            .inner
            .stripes
            .iter()
            .map(|s| s.lock().iter().map(|t| t.price).sum::<f64>())
            .sum();
        core.total_revenue() + striped
    }

    /// Number of completed transactions (reconciled plus striped).
    pub fn sales_count(&self) -> usize {
        let core = self.inner.core.read();
        let striped: usize = self.inner.stripes.iter().map(|s| s.lock().len()).sum();
        core.ledger().len() + striped
    }

    /// Number of contended lock acquisitions observed by this broker handle
    /// (mirrors the `mbp.core.sharedbroker.contention` obs counter but is
    /// scoped to this broker, so tests can compare workloads race-free).
    pub fn contention_count(&self) -> u64 {
        self.inner.contention.load(Ordering::Relaxed)
    }

    /// Runs `f` with exclusive access to the underlying broker (for
    /// maintenance operations that need more than one call atomically).
    ///
    /// Striped transactions are drained into the core ledger in stripe
    /// order before `f` runs, so `f` sees a fully reconciled broker.
    ///
    /// The drain completes *before* the write guard is taken: no code path
    /// in this module ever holds a stripe mutex and the core lock at the
    /// same time, so the lock hierarchy is trivially acyclic. A buy whose
    /// quote finishes between the drain and the write acquisition parks its
    /// transaction in a stripe until the next drain — the same visibility a
    /// buy landing right after `f` returns always had.
    pub fn with_broker<T>(&self, f: impl FnOnce(&mut Broker) -> T) -> T {
        let mut drained: Vec<Transaction> = Vec::new();
        for stripe in &self.inner.stripes {
            drained.append(&mut stripe.lock());
        }
        let mut core = self.inner.core.write();
        core.settle(drained.drain(..));
        f(&mut core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SquareLossTransform;
    use mbp_data::synth;
    use mbp_randx::{seeded_rng, SeedStream};
    use std::sync::Barrier;
    use std::thread;

    fn shared_broker(seed: u64) -> SharedBroker {
        let mut rng = seeded_rng(seed);
        let data = synth::simulated1(600, 4, 0.5, &mut rng).split(0.75, &mut rng);
        let sb = SharedBroker::new(Broker::new(data));
        sb.support(ModelKind::LinearRegression, 1e-6).unwrap();
        sb
    }

    fn plain_broker(seed: u64) -> Broker {
        let mut rng = seeded_rng(seed);
        let data = synth::simulated1(600, 4, 0.5, &mut rng).split(0.75, &mut rng);
        let mut b = Broker::new(data);
        b.support(ModelKind::LinearRegression, 1e-6).unwrap();
        b
    }

    fn pricing() -> PricingFunction {
        let g: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p: Vec<f64> = g.iter().map(|x| 4.0 * x.sqrt()).collect();
        PricingFunction::from_points(g, p).unwrap()
    }

    #[test]
    fn concurrent_purchases_are_all_ledgered() {
        let sb = shared_broker(81);
        let pf = pricing();
        let mut seeds = SeedStream::new(82);
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    let mut paid = 0.0;
                    for _ in 0..per_thread {
                        let sale = sb
                            .buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        paid += sale.price;
                    }
                    paid
                })
            })
            .collect();
        let total_paid: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sb.sales_count(), threads * per_thread);
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);
    }

    #[test]
    fn concurrent_sales_have_distinct_noise() {
        let sb = shared_broker(83);
        let pf = pricing();
        let mut seeds = SeedStream::new(84);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    sb.buy(
                        ModelKind::LinearRegression,
                        PurchaseRequest::AtNcp(1.0),
                        &pf,
                        &SquareLossTransform,
                        &mut rng,
                    )
                    .unwrap()
                    .model
                    .weights()
                    .clone()
                })
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for i in 0..models.len() {
            for j in (i + 1)..models.len() {
                assert_ne!(models[i], models[j], "two sales shared a noise draw");
            }
        }
    }

    /// Satellite coverage: ≥4 threads buying concurrently; every served
    /// purchase lands in the ledger and revenue equals the sum of the
    /// per-thread receipts. With observability enabled, the buy counter
    /// and contention counter reflect the traffic (asserted with `>=`
    /// because the obs registry is process-global and other tests in this
    /// binary may record concurrently).
    #[test]
    fn four_thread_buys_reconcile_ledger_and_metrics() {
        mbp_obs::enable();
        let sb = shared_broker(91);
        let pf = pricing();
        let mut seeds = SeedStream::new(92);
        let threads = 4;
        let per_thread = 100;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    let mut receipts = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        let sale = sb
                            .buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        receipts.push(sale.price);
                    }
                    receipts
                })
            })
            .collect();
        let receipts: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(sb.sales_count(), threads * per_thread);
        assert_eq!(receipts.len(), threads * per_thread);
        let total_paid: f64 = receipts.iter().sum();
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);

        let snap = mbp_obs::snapshot();
        let bought = snap.counter("mbp.core.buy.count").unwrap_or(0);
        assert!(
            bought >= (threads * per_thread) as u64,
            "buy counter {bought} < {}",
            threads * per_thread
        );
        let buy_hist = snap.histogram("mbp.core.buy.seconds").expect("buy span");
        assert!(buy_hist.count >= (threads * per_thread) as u64);
        // Contention is scheduling-dependent; the counter only needs to
        // exist and be readable (zero is legitimate on an unloaded box).
        // obs stays enabled: a sibling test may be recording concurrently.
        let _ = snap.counter("mbp.core.sharedbroker.contention");
    }

    #[test]
    fn contended_mutex_increments_contention_counter() {
        mbp_obs::enable();
        let sb = shared_broker(93);
        let pf = pricing();
        let before = mbp_obs::snapshot()
            .counter("mbp.core.sharedbroker.contention")
            .unwrap_or(0);
        // Hold the core write lock on this thread (maintenance), then issue
        // a buy from another: the try_read fast path must miss and count it.
        let buyer = {
            let sb2 = sb.clone();
            let pf2 = pf.clone();
            sb.with_broker(|_broker| {
                let t = thread::spawn(move || {
                    let mut rng = seeded_rng(94);
                    sb2.buy(
                        ModelKind::LinearRegression,
                        PurchaseRequest::AtNcp(1.0),
                        &pf2,
                        &SquareLossTransform,
                        &mut rng,
                    )
                    .unwrap();
                });
                // Give the buyer thread time to hit the held lock.
                thread::sleep(std::time::Duration::from_millis(50));
                t
            })
        };
        buyer.join().unwrap();
        let after = mbp_obs::snapshot()
            .counter("mbp.core.sharedbroker.contention")
            .unwrap_or(0);
        assert!(after > before, "contention counter did not move");
        assert!(
            sb.contention_count() > 0,
            "handle-local counter did not move"
        );
        assert_eq!(sb.sales_count(), 1);
    }

    /// Concurrent batches land every transaction, match per-call revenue
    /// accounting, and take at most one stripe lock per batch (contention
    /// stays bounded by batch count, not purchase count).
    #[test]
    fn concurrent_buy_batches_are_all_ledgered() {
        let sb = shared_broker(97);
        sb.publish(
            ModelKind::LinearRegression,
            pricing(),
            Box::new(SquareLossTransform),
        )
        .unwrap();
        let mut seeds = SeedStream::new(98);
        let threads = 4;
        let batches_per_thread = 10;
        let batch: Vec<PurchaseRequest> = (1..=20)
            .map(|i| PurchaseRequest::AtNcp(i as f64 * 0.1))
            .collect();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let batch = batch.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    let mut paid = 0.0;
                    for _ in 0..batches_per_thread {
                        for sale in sb
                            .buy_batch(ModelKind::LinearRegression, &batch, &mut rng)
                            .expect("listing exists")
                        {
                            paid += sale.expect("all requests valid").price;
                        }
                    }
                    paid
                })
            })
            .collect();
        let total_paid: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sb.sales_count(), threads * batches_per_thread * batch.len());
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);
        // Unpublished kinds fail at the batch level.
        let mut rng = seeded_rng(99);
        assert!(matches!(
            sb.buy_batch(ModelKind::LinearSvm, &batch, &mut rng),
            Err(MarketError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn with_broker_gives_atomic_access() {
        let sb = shared_broker(85);
        let (count, revenue) = sb.with_broker(|b| (b.ledger().len(), b.total_revenue()));
        assert_eq!(count, 0);
        assert_eq!(revenue, 0.0);
    }

    #[test]
    fn with_broker_reconciles_striped_transactions() {
        let sb = shared_broker(87);
        let pf = pricing();
        let mut rng = seeded_rng(88);
        let mut paid = Vec::new();
        for _ in 0..(2 * LEDGER_STRIPES + 3) {
            let sale = sb
                .buy(
                    ModelKind::LinearRegression,
                    PurchaseRequest::AtNcp(0.5),
                    &pf,
                    &SquareLossTransform,
                    &mut rng,
                )
                .unwrap();
            paid.push(sale.price);
        }
        // Before reconciliation the counts already include striped state.
        assert_eq!(sb.sales_count(), paid.len());
        let ledger_prices =
            sb.with_broker(|b| b.ledger().iter().map(|t| t.price).collect::<Vec<_>>());
        assert_eq!(ledger_prices.len(), paid.len());
        let mut a = ledger_prices.clone();
        let mut b = paid.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "reconciled ledger lost or altered a transaction");
        // After draining, counts and revenue are unchanged (now all in core).
        assert_eq!(sb.sales_count(), paid.len());
        assert!((sb.total_revenue() - paid.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// Satellite: N threads × M buys reconcile to an exact ledger total,
    /// and the striped design records strictly less contention than the
    /// pre-PR single-global-mutex design on the same workload.
    ///
    /// Both runs overlap the buys with a "maintenance" phase that holds the
    /// broker before the buyers start: under one global mutex every buyer's
    /// first attempt is a guaranteed miss (the reference run counts at least
    /// one miss per thread by construction), while under the striped design
    /// the equivalent snapshot reads share the read lock with the quoting
    /// buyers and exclude nobody.
    #[test]
    fn striped_broker_contends_less_than_single_mutex() {
        let threads = 8usize;
        let per_thread = 24usize;
        let pf = pricing();

        // --- Reference: the pre-PR design, one global Mutex<Broker>. ---
        let mutex_contention = {
            let broker = Arc::new(Mutex::new(plain_broker(95)));
            let misses = Arc::new(AtomicU64::new(0));
            let start = Arc::new(Barrier::new(threads + 1));
            // Maintenance holds the only lock until every buyer thread has
            // recorded a miss, so the reference contention is >= threads.
            let guard = broker.lock();
            let mut seeds = SeedStream::new(96);
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let broker = Arc::clone(&broker);
                    let misses = Arc::clone(&misses);
                    let start = Arc::clone(&start);
                    let pf = pf.clone();
                    let seed = seeds.next_seed();
                    thread::spawn(move || {
                        let mut rng = seeded_rng(seed);
                        start.wait();
                        for _ in 0..per_thread {
                            let mut g = match broker.try_lock() {
                                Some(g) => g,
                                None => {
                                    misses.fetch_add(1, Ordering::Relaxed);
                                    broker.lock()
                                }
                            };
                            g.buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        }
                    })
                })
                .collect();
            start.wait();
            while misses.load(Ordering::Relaxed) < threads as u64 {
                thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(guard);
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(broker.lock().ledger().len(), threads * per_thread);
            misses.load(Ordering::Relaxed)
        };

        // --- Striped: same workload, maintenance is snapshot reads. ---
        let sb = shared_broker(95);
        let start = Arc::new(Barrier::new(threads + 1));
        let mut seeds = SeedStream::new(96);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let start = Arc::clone(&start);
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    start.wait();
                    let mut paid = 0.0;
                    for _ in 0..per_thread {
                        let sale = sb
                            .buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        paid += sale.price;
                    }
                    paid
                })
            })
            .collect();
        start.wait();
        // Equivalent maintenance: revenue snapshots while the buys run.
        // These take the shared read lock, so they cannot stall a quote.
        for _ in 0..threads {
            let _ = sb.total_revenue();
            thread::sleep(std::time::Duration::from_millis(1));
        }
        let total_paid: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sb.sales_count(), threads * per_thread);
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);
        let striped_contention = sb.contention_count();

        assert!(
            mutex_contention >= threads as u64,
            "reference run should contend at least once per thread, got {mutex_contention}"
        );
        assert!(
            striped_contention < mutex_contention,
            "striped contention {striped_contention} >= single-mutex contention {mutex_contention}"
        );
    }
}
