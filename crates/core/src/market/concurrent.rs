//! A thread-safe broker front-end.
//!
//! A real marketplace serves many buyers concurrently. Purchases mutate the
//! broker (ledger, revenue), so the shared handle serializes sales behind a
//! `parking_lot::Mutex`; reads that only need a snapshot (revenue, ledger
//! length) take the same lock briefly. The noise mechanism itself is
//! stateless, so the per-sale critical section is just the perturbation and
//! a ledger push — microseconds (see the `mechanism/perturb` benches).

use crate::error::ErrorTransform;
use crate::market::agents::{Broker, MarketError, PurchaseRequest, Sale};
use crate::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::MbpRng;
use parking_lot::Mutex;
use std::sync::Arc;

/// A cloneable, thread-safe handle to a broker.
#[derive(Clone)]
pub struct SharedBroker {
    inner: Arc<Mutex<Broker>>,
}

impl SharedBroker {
    /// Wraps a broker (train the menu with [`Broker::support`] first, or
    /// through [`SharedBroker::support`]).
    pub fn new(broker: Broker) -> Self {
        SharedBroker {
            inner: Arc::new(Mutex::new(broker)),
        }
    }

    /// Adds a model to the menu (delegates to [`Broker::support`]).
    pub fn support(&self, kind: ModelKind, ridge: f64) -> Result<(), MarketError> {
        self.inner.lock().support(kind, ridge).map(|_| ())
    }

    /// Thread-safe purchase; each calling thread supplies its own RNG.
    ///
    /// Lock contention (another seller thread holding the broker when this
    /// purchase arrives) is counted in `mbp.core.sharedbroker.contention`.
    pub fn buy(
        &self,
        kind: ModelKind,
        request: PurchaseRequest,
        pricing: &PricingFunction,
        transform: &dyn ErrorTransform,
        rng: &mut MbpRng,
    ) -> Result<Sale, MarketError> {
        let mut guard = match self.inner.try_lock() {
            Some(g) => g,
            None => {
                mbp_obs::inc("mbp.core.sharedbroker.contention");
                self.inner.lock()
            }
        };
        guard.buy(kind, request, pricing, transform, rng)
    }

    /// Total revenue collected so far.
    pub fn total_revenue(&self) -> f64 {
        self.inner.lock().total_revenue()
    }

    /// Number of completed transactions.
    pub fn sales_count(&self) -> usize {
        self.inner.lock().ledger().len()
    }

    /// Runs `f` with exclusive access to the underlying broker (for
    /// maintenance operations that need more than one call atomically).
    pub fn with_broker<T>(&self, f: impl FnOnce(&mut Broker) -> T) -> T {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SquareLossTransform;
    use mbp_data::synth;
    use mbp_randx::{seeded_rng, SeedStream};
    use std::thread;

    fn shared_broker(seed: u64) -> SharedBroker {
        let mut rng = seeded_rng(seed);
        let data = synth::simulated1(600, 4, 0.5, &mut rng).split(0.75, &mut rng);
        let sb = SharedBroker::new(Broker::new(data));
        sb.support(ModelKind::LinearRegression, 1e-6).unwrap();
        sb
    }

    fn pricing() -> PricingFunction {
        let g: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p: Vec<f64> = g.iter().map(|x| 4.0 * x.sqrt()).collect();
        PricingFunction::from_points(g, p).unwrap()
    }

    #[test]
    fn concurrent_purchases_are_all_ledgered() {
        let sb = shared_broker(81);
        let pf = pricing();
        let mut seeds = SeedStream::new(82);
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    let mut paid = 0.0;
                    for _ in 0..per_thread {
                        let sale = sb
                            .buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        paid += sale.price;
                    }
                    paid
                })
            })
            .collect();
        let total_paid: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sb.sales_count(), threads * per_thread);
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);
    }

    #[test]
    fn concurrent_sales_have_distinct_noise() {
        let sb = shared_broker(83);
        let pf = pricing();
        let mut seeds = SeedStream::new(84);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    sb.buy(
                        ModelKind::LinearRegression,
                        PurchaseRequest::AtNcp(1.0),
                        &pf,
                        &SquareLossTransform,
                        &mut rng,
                    )
                    .unwrap()
                    .model
                    .weights()
                    .clone()
                })
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for i in 0..models.len() {
            for j in (i + 1)..models.len() {
                assert_ne!(models[i], models[j], "two sales shared a noise draw");
            }
        }
    }

    /// Satellite coverage: ≥4 threads buying concurrently; every served
    /// purchase lands in the ledger and revenue equals the sum of the
    /// per-thread receipts. With observability enabled, the buy counter
    /// and contention counter reflect the traffic (asserted with `>=`
    /// because the obs registry is process-global and other tests in this
    /// binary may record concurrently).
    #[test]
    fn four_thread_buys_reconcile_ledger_and_metrics() {
        mbp_obs::enable();
        let sb = shared_broker(91);
        let pf = pricing();
        let mut seeds = SeedStream::new(92);
        let threads = 4;
        let per_thread = 100;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sb = sb.clone();
                let pf = pf.clone();
                let seed = seeds.next_seed();
                thread::spawn(move || {
                    let mut rng = seeded_rng(seed);
                    let mut receipts = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        let sale = sb
                            .buy(
                                ModelKind::LinearRegression,
                                PurchaseRequest::AtNcp(0.5),
                                &pf,
                                &SquareLossTransform,
                                &mut rng,
                            )
                            .expect("purchase failed");
                        receipts.push(sale.price);
                    }
                    receipts
                })
            })
            .collect();
        let receipts: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(sb.sales_count(), threads * per_thread);
        assert_eq!(receipts.len(), threads * per_thread);
        let total_paid: f64 = receipts.iter().sum();
        assert!((sb.total_revenue() - total_paid).abs() < 1e-6);

        let snap = mbp_obs::snapshot();
        let bought = snap.counter("mbp.core.buy.count").unwrap_or(0);
        assert!(
            bought >= (threads * per_thread) as u64,
            "buy counter {bought} < {}",
            threads * per_thread
        );
        let buy_hist = snap.histogram("mbp.core.buy.seconds").expect("buy span");
        assert!(buy_hist.count >= (threads * per_thread) as u64);
        // Contention is scheduling-dependent; the counter only needs to
        // exist and be readable (zero is legitimate on an unloaded box).
        // obs stays enabled: a sibling test may be recording concurrently.
        let _ = snap.counter("mbp.core.sharedbroker.contention");
    }

    #[test]
    fn contended_mutex_increments_contention_counter() {
        mbp_obs::enable();
        let sb = shared_broker(93);
        let pf = pricing();
        let before = mbp_obs::snapshot()
            .counter("mbp.core.sharedbroker.contention")
            .unwrap_or(0);
        // Hold the broker lock on this thread, then issue a buy from
        // another: the try_lock fast path must miss and count it.
        let buyer = {
            let sb2 = sb.clone();
            let pf2 = pf.clone();
            sb.with_broker(|_broker| {
                let t = thread::spawn(move || {
                    let mut rng = seeded_rng(94);
                    sb2.buy(
                        ModelKind::LinearRegression,
                        PurchaseRequest::AtNcp(1.0),
                        &pf2,
                        &SquareLossTransform,
                        &mut rng,
                    )
                    .unwrap();
                });
                // Give the buyer thread time to hit the held lock.
                thread::sleep(std::time::Duration::from_millis(50));
                t
            })
        };
        buyer.join().unwrap();
        let after = mbp_obs::snapshot()
            .counter("mbp.core.sharedbroker.contention")
            .unwrap_or(0);
        assert!(after > before, "contention counter did not move");
        assert_eq!(sb.sales_count(), 1);
    }

    #[test]
    fn with_broker_gives_atomic_access() {
        let sb = shared_broker(85);
        let (count, revenue) = sb.with_broker(|b| (b.ledger().len(), b.total_revenue()));
        assert_eq!(count, 0);
        assert_eq!(revenue, 0.0);
    }
}
