//! Buyer value and demand curve families.
//!
//! Figure 2 of the paper: the seller's market research produces a *value
//! curve* (monetary worth buyers attach to each accuracy level) and a
//! *demand curve* (how much buyer mass sits at each level), both indexed —
//! after the error transformation — by the inverse NCP. Figures 7–10 sweep
//! specific shapes of these curves; this module provides parametric
//! families covering all of them.

use crate::revenue::BuyerPoint;
use std::fmt;

/// Typed error for curve sampling over an invalid grid.
///
/// Historically `sample` accepted an empty knot vector and panicked deep
/// inside the normalization arithmetic; callers now get a recoverable
/// error instead, with the panicking path reserved for APIs that validate
/// their grid at construction time (e.g. `Seller::new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveError {
    /// The knot vector is empty — there is nothing to sample.
    EmptyGrid,
    /// The knot vector is not strictly ascending, so normalized positions
    /// would be ill-defined.
    NonAscendingGrid,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::EmptyGrid => write!(f, "curve grid is empty"),
            CurveError::NonAscendingGrid => write!(f, "curve grid must be strictly ascending"),
        }
    }
}

impl std::error::Error for CurveError {}

/// Shape of a buyer value curve over the inverse-NCP axis.
///
/// All shapes are non-decreasing (buyers never value a *less* accurate
/// model more) and map the grid onto `[v_min, v_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueShape {
    /// Straight line from `v_min` to `v_max`.
    Linear,
    /// Convex power curve `t^p` (`p > 1`): value concentrates at high
    /// accuracy (Figure 7(a)).
    Convex {
        /// Power `p > 1`.
        power: f64,
    },
    /// Concave power curve `t^(1/p)` (`p > 1`): value saturates early
    /// (Figure 7(b)).
    Concave {
        /// Power `p > 1`.
        power: f64,
    },
    /// Logistic S-curve: value jumps around the midpoint.
    Sigmoid {
        /// Steepness of the jump (larger = sharper).
        steepness: f64,
    },
}

/// A value curve `v(x)` on the inverse-NCP axis.
#[derive(Debug, Clone, Copy)]
pub struct ValueCurve {
    shape: ValueShape,
    v_min: f64,
    v_max: f64,
}

impl ValueCurve {
    /// Creates a value curve ranging from `v_min` to `v_max` over the grid.
    ///
    /// # Panics
    /// Panics unless `0 ≤ v_min ≤ v_max` and parameters are valid.
    pub fn new(shape: ValueShape, v_min: f64, v_max: f64) -> Self {
        assert!(
            v_min >= 0.0 && v_min <= v_max && v_max.is_finite(),
            "need 0 <= v_min <= v_max"
        );
        match shape {
            ValueShape::Convex { power } | ValueShape::Concave { power } => {
                assert!(power > 1.0, "power must exceed 1");
            }
            ValueShape::Sigmoid { steepness } => {
                assert!(steepness > 0.0, "steepness must be positive");
            }
            ValueShape::Linear => {}
        }
        ValueCurve {
            shape,
            v_min,
            v_max,
        }
    }

    /// Value at normalized position `t ∈ [0, 1]` along the grid.
    pub fn value_at_unit(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        let u = match self.shape {
            ValueShape::Linear => t,
            ValueShape::Convex { power } => t.powf(power),
            ValueShape::Concave { power } => t.powf(1.0 / power),
            ValueShape::Sigmoid { steepness } => {
                let raw = 1.0 / (1.0 + (-(t - 0.5) * steepness).exp());
                let lo = 1.0 / (1.0 + (0.5 * steepness).exp());
                let hi = 1.0 / (1.0 + (-0.5 * steepness).exp());
                (raw - lo) / (hi - lo)
            }
        };
        self.v_min + (self.v_max - self.v_min) * u
    }

    /// Samples the curve on a grid of inverse-NCP points.
    ///
    /// Returns [`CurveError`] when the grid is empty or not strictly
    /// ascending.
    pub fn sample(&self, grid: &[f64]) -> Result<Vec<f64>, CurveError> {
        sample_unit(grid, |t| self.value_at_unit(t))
    }
}

/// Shape of a buyer demand curve over the inverse-NCP axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandShape {
    /// Equal mass everywhere.
    Uniform,
    /// A peak at `center ∈ [0, 1]` with the given width (Figure 8(a):
    /// most buyers want medium accuracy).
    Peak {
        /// Normalized peak position.
        center: f64,
        /// Peak width (standard deviation in normalized units).
        width: f64,
    },
    /// Two peaks at the extremes (Figure 8(b): buyers want either very low
    /// or very high accuracy).
    Bimodal {
        /// Width of each extreme peak.
        width: f64,
    },
    /// Mass increases linearly toward high accuracy.
    Increasing,
    /// Mass decreases linearly away from low accuracy.
    Decreasing,
}

/// A demand curve producing normalized buyer masses on a grid.
#[derive(Debug, Clone, Copy)]
pub struct DemandCurve {
    shape: DemandShape,
}

impl DemandCurve {
    /// Creates a demand curve.
    ///
    /// # Panics
    /// Panics on non-positive widths or out-of-range centers.
    pub fn new(shape: DemandShape) -> Self {
        match shape {
            DemandShape::Peak { center, width } => {
                assert!((0.0..=1.0).contains(&center), "center must be in [0,1]");
                assert!(width > 0.0, "width must be positive");
            }
            DemandShape::Bimodal { width } => assert!(width > 0.0, "width must be positive"),
            _ => {}
        }
        DemandCurve { shape }
    }

    /// Unnormalized mass at normalized position `t ∈ [0, 1]`.
    fn mass_at_unit(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match self.shape {
            DemandShape::Uniform => 1.0,
            DemandShape::Peak { center, width } => {
                let z = (t - center) / width;
                (-0.5 * z * z).exp()
            }
            DemandShape::Bimodal { width } => {
                let z0 = t / width;
                let z1 = (t - 1.0) / width;
                (-0.5 * z0 * z0).exp() + (-0.5 * z1 * z1).exp()
            }
            DemandShape::Increasing => 0.1 + 0.9 * t,
            DemandShape::Decreasing => 1.0 - 0.9 * t,
        }
    }

    /// Samples the curve on a grid, normalized to total mass 1.
    ///
    /// Returns [`CurveError`] when the grid is empty or not strictly
    /// ascending.
    pub fn sample(&self, grid: &[f64]) -> Result<Vec<f64>, CurveError> {
        let raw = sample_unit(grid, |t| self.mass_at_unit(t))?;
        let total: f64 = raw.iter().sum();
        Ok(raw.into_iter().map(|m| m / total).collect())
    }
}

fn sample_unit(grid: &[f64], f: impl Fn(f64) -> f64) -> Result<Vec<f64>, CurveError> {
    validate_grid(grid)?;
    let (Some(&lo), Some(&hi)) = (grid.first(), grid.last()) else {
        return Err(CurveError::EmptyGrid);
    };
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    Ok(grid.iter().map(|&x| f((x - lo) / span)).collect())
}

/// Checks a sampling grid: non-empty and strictly ascending.
pub(crate) fn validate_grid(grid: &[f64]) -> Result<(), CurveError> {
    if grid.is_empty() {
        return Err(CurveError::EmptyGrid);
    }
    if !grid.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
        return Err(CurveError::NonAscendingGrid);
    }
    Ok(())
}

/// An evenly spaced inverse-NCP grid, e.g. `grid(20.0, 100.0, 9)` gives the
/// paper's `1/NCP ∈ {20, 30, …, 100}` axis.
///
/// # Panics
/// Panics unless `0 < lo < hi` and `n ≥ 2`.
pub fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && lo < hi && n >= 2, "need 0 < lo < hi and n >= 2");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Combines a grid with value and demand curves into the buyer population
/// the revenue optimizers consume.
///
/// Returns [`CurveError`] when the grid is empty or not strictly
/// ascending.
pub fn buyer_points(
    grid: &[f64],
    value: &ValueCurve,
    demand: &DemandCurve,
) -> Result<Vec<BuyerPoint>, CurveError> {
    let v = value.sample(grid)?;
    let b = demand.sample(grid)?;
    Ok(grid
        .iter()
        .zip(v)
        .zip(b)
        .map(|((&a, vj), bj)| BuyerPoint::new(a, vj, bj))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_endpoints() {
        let g = grid(20.0, 100.0, 9);
        assert_eq!(g.len(), 9);
        assert_eq!(g[0], 20.0);
        assert_eq!(g[8], 100.0);
        assert!((g[1] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn value_shapes_are_monotone_and_ranged() {
        let shapes = [
            ValueShape::Linear,
            ValueShape::Convex { power: 2.5 },
            ValueShape::Concave { power: 2.5 },
            ValueShape::Sigmoid { steepness: 8.0 },
        ];
        let g = grid(20.0, 100.0, 17);
        for shape in shapes {
            let curve = ValueCurve::new(shape, 0.0, 100.0);
            let v = curve.sample(&g).unwrap();
            assert!((v[0] - 0.0).abs() < 1e-9, "{shape:?} start {}", v[0]);
            assert!((v[16] - 100.0).abs() < 1e-9, "{shape:?} end {}", v[16]);
            for w in v.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "{shape:?} not monotone: {v:?}");
            }
        }
    }

    #[test]
    fn convex_below_linear_below_concave() {
        let g = grid(1.0, 2.0, 11);
        let lin = ValueCurve::new(ValueShape::Linear, 0.0, 1.0)
            .sample(&g)
            .unwrap();
        let cvx = ValueCurve::new(ValueShape::Convex { power: 3.0 }, 0.0, 1.0)
            .sample(&g)
            .unwrap();
        let ccv = ValueCurve::new(ValueShape::Concave { power: 3.0 }, 0.0, 1.0)
            .sample(&g)
            .unwrap();
        for i in 1..10 {
            assert!(cvx[i] < lin[i]);
            assert!(ccv[i] > lin[i]);
        }
    }

    #[test]
    fn demand_normalizes_to_one() {
        let g = grid(20.0, 100.0, 9);
        for shape in [
            DemandShape::Uniform,
            DemandShape::Peak {
                center: 0.5,
                width: 0.2,
            },
            DemandShape::Bimodal { width: 0.15 },
            DemandShape::Increasing,
            DemandShape::Decreasing,
        ] {
            let b = DemandCurve::new(shape).sample(&g).unwrap();
            let total: f64 = b.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{shape:?}");
            assert!(b.iter().all(|&m| m > 0.0), "{shape:?}");
        }
    }

    #[test]
    fn peak_demand_peaks_in_the_middle() {
        let g = grid(20.0, 100.0, 9);
        let b = DemandCurve::new(DemandShape::Peak {
            center: 0.5,
            width: 0.15,
        })
        .sample(&g)
        .unwrap();
        let mid = b[4];
        assert!(mid > b[0] && mid > b[8]);
    }

    #[test]
    fn bimodal_demand_dips_in_the_middle() {
        let g = grid(20.0, 100.0, 9);
        let b = DemandCurve::new(DemandShape::Bimodal { width: 0.15 })
            .sample(&g)
            .unwrap();
        assert!(b[4] < b[0] && b[4] < b[8]);
    }

    #[test]
    fn buyer_points_compose() {
        let g = grid(20.0, 100.0, 5);
        let pts = buyer_points(
            &g,
            &ValueCurve::new(ValueShape::Linear, 10.0, 100.0),
            &DemandCurve::new(DemandShape::Uniform),
        )
        .unwrap();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].a, 20.0);
        assert!((pts[0].valuation - 10.0).abs() < 1e-9);
        assert!((pts[0].demand - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "v_min <= v_max")]
    fn value_curve_rejects_inverted_range() {
        ValueCurve::new(ValueShape::Linear, 5.0, 1.0);
    }

    /// Regression: an empty knot vector used to panic inside the
    /// normalization arithmetic; it is now a typed, recoverable error on
    /// every sampling entry point.
    #[test]
    fn empty_grid_is_a_typed_error_not_a_panic() {
        let value = ValueCurve::new(ValueShape::Linear, 0.0, 1.0);
        let demand = DemandCurve::new(DemandShape::Uniform);
        assert_eq!(value.sample(&[]), Err(CurveError::EmptyGrid));
        assert_eq!(demand.sample(&[]), Err(CurveError::EmptyGrid));
        assert_eq!(
            buyer_points(&[], &value, &demand),
            Err(CurveError::EmptyGrid)
        );
        assert_eq!(CurveError::EmptyGrid.to_string(), "curve grid is empty");
    }

    #[test]
    fn non_ascending_grid_is_a_typed_error() {
        let value = ValueCurve::new(ValueShape::Linear, 0.0, 1.0);
        let demand = DemandCurve::new(DemandShape::Uniform);
        for bad in [&[2.0, 1.0][..], &[1.0, 1.0][..]] {
            assert_eq!(value.sample(bad), Err(CurveError::NonAscendingGrid));
            assert_eq!(demand.sample(bad), Err(CurveError::NonAscendingGrid));
            assert_eq!(
                buyer_points(bad, &value, &demand),
                Err(CurveError::NonAscendingGrid)
            );
        }
        // A single knot is degenerate but well-defined (normalizes to t=0).
        assert_eq!(value.sample(&[3.0]), Ok(vec![0.0]));
    }
}
