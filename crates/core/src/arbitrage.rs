//! Arbitrage auditing: verifying — or breaking — pricing functions.
//!
//! Definition 3 (k-arbitrage): a buyer purchases `k` cheap noisy instances
//! at NCPs `δ₁..δ_k` and combines them (unbiasedly) into an instance at
//! least as accurate as a target `δ₀`, while paying less. For the Gaussian
//! mechanism, the optimal combination is inverse-variance weighting with
//! combined precision `1/δ = Σ 1/δᵢ` (precisions add), so arbitrage exists
//! iff some *cover* of the target precision is cheaper than the list price
//! (Theorem 5).
//!
//! Two auditors:
//!
//! * [`audit`] — searches a pricing function for monotonicity violations
//!   and cheap precision covers, reusing the unbounded covering-knapsack
//!   oracle on a quantized precision grid. A clean report is a certificate
//!   (up to quantization) of arbitrage-freeness over the grid; a violation
//!   comes with the explicit purchase list that realizes it.
//! * [`combine_inverse_variance`] — executes the attack on actual model
//!   instances, reproducing the estimator `ĥ = Σ (δ₀/δᵢ)·ĥᵢ` from the
//!   proof of Theorem 5. Tests use it to demonstrate that audited-broken
//!   prices lose real money.

use crate::pricing::PricingFunction;
use mbp_linalg::Vector;
use mbp_optim::knapsack::{BoundedCoverOracle, CoverOracle, Item};

/// One concrete arbitrage opportunity found by [`audit`].
#[derive(Debug, Clone)]
pub struct ArbitrageFinding {
    /// Target precision `x₀ = 1/δ₀` the attacker wants.
    pub target_precision: f64,
    /// List price `p̄(x₀)`.
    pub list_price: f64,
    /// Total price of the attacking bundle.
    pub bundle_price: f64,
    /// The bundle: `(precision, multiplicity)` purchases whose combined
    /// precision covers the target.
    pub bundle: Vec<(f64, u64)>,
}

impl ArbitrageFinding {
    /// Attack margin `list_price − bundle_price` (> 0 by construction).
    pub fn margin(&self) -> f64 {
        self.list_price - self.bundle_price
    }
}

/// Report of a full audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Grid pairs where a higher precision is priced *lower* (violates
    /// error-monotonicity, Definition 2 / Figure 3).
    pub monotonicity_violations: Vec<(f64, f64)>,
    /// Cheap-cover opportunities (violate subadditivity, Definition 3).
    pub arbitrage: Vec<ArbitrageFinding>,
}

impl AuditReport {
    /// `true` when the audit found nothing.
    pub fn is_clean(&self) -> bool {
        self.monotonicity_violations.is_empty() && self.arbitrage.is_empty()
    }
}

/// Audits `pf` over `grid` (ascending positive precisions).
///
/// The grid is quantized to integers with `resolution` steps per smallest
/// grid gap, and the covering-knapsack oracle computes, for every grid
/// precision, the cheapest multiset of grid purchases whose precisions sum
/// to at least it. Any cover strictly cheaper than the list price (beyond
/// `tol`) is arbitrage.
///
/// Quantization is *sound*: bundle items round **down** and targets round
/// **up**, so every quantized cover corresponds to a genuine real-valued
/// cover (`Σ kᵢ·⌊xᵢs⌋ ≥ ⌈x₀s⌉ ⟹ Σ kᵢ·xᵢ ≥ x₀`). The price of soundness
/// is a little completeness: attacks that rely on margins thinner than one
/// quantization step can be missed — raise `resolution` to tighten.
///
/// ```
/// use mbp_core::arbitrage::audit;
/// use mbp_core::pricing::PricingFunction;
///
/// let grid: Vec<f64> = (1..=6).map(|i| i as f64).collect();
/// // Convex pricing (x²) is superadditive: two x=1 buys undercut x=2.
/// let broken = PricingFunction::from_points(
///     grid.clone(), grid.iter().map(|x| x * x).collect()).unwrap();
/// let report = audit(&broken, &grid, 10, 1e-9);
/// assert!(!report.is_clean());
/// let attack = &report.arbitrage[0];
/// assert!(attack.bundle_price < attack.list_price);
/// ```
///
/// # Panics
/// Panics when `grid` is empty, non-ascending, or non-positive.
pub fn audit(pf: &PricingFunction, grid: &[f64], resolution: u64, tol: f64) -> AuditReport {
    assert!(!grid.is_empty(), "audit grid is empty");
    assert!(
        grid.windows(2).all(|w| w[0] < w[1]) && grid[0] > 0.0,
        "audit grid must be positive ascending"
    );
    let mut report = AuditReport::default();

    // Monotonicity: prices must be non-decreasing along the grid.
    for w in grid.windows(2) {
        if pf.price_at(w[0]) > pf.price_at(w[1]) + tol {
            report.monotonicity_violations.push((w[0], w[1]));
        }
    }

    // Subadditivity via covering: quantize precisions (floor items so a
    // quantized bundle never over-states its real coverage).
    let min_gap = grid.windows(2).map(|w| w[1] - w[0]).fold(grid[0], f64::min);
    let scale = resolution as f64 / min_gap;
    let items: Vec<Item> = grid
        .iter()
        .map(|&x| Item::new(((x * scale).floor() as u64).max(1), pf.price_at(x)))
        .collect();
    let targets: Vec<u64> = grid.iter().map(|&x| (x * scale).ceil() as u64).collect();
    let horizon = targets.iter().copied().max().unwrap_or(1);
    let oracle = CoverOracle::build(&items, horizon);
    for (j, &x0) in grid.iter().enumerate() {
        let list = pf.price_at(x0);
        let mu = oracle.mu(targets[j]);
        if mu < list - tol {
            let bundle = oracle
                .witness(targets[j])
                .map(|w| {
                    w.into_iter()
                        .map(|(idx, k)| (grid[idx], k))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            report.arbitrage.push(ArbitrageFinding {
                target_precision: x0,
                list_price: list,
                bundle_price: mu,
                bundle,
            });
        }
    }
    report
}

/// Audits `pf` for *k-bounded* arbitrage (Definition 3 with an explicit
/// bundle-size limit): finds the cheapest attacking bundle of at most
/// `max_items` purchases per target. A small-`k` audit models buyers with
/// limited budgets for combination; as `max_items → ∞` the findings
/// converge to [`audit`]'s.
///
/// Same sound quantization as [`audit`] (items floor, targets ceil).
///
/// # Panics
/// Panics on an invalid grid or `max_items == 0`.
pub fn audit_k_bounded(
    pf: &PricingFunction,
    grid: &[f64],
    resolution: u64,
    tol: f64,
    max_items: usize,
) -> AuditReport {
    assert!(!grid.is_empty(), "audit grid is empty");
    assert!(
        grid.windows(2).all(|w| w[0] < w[1]) && grid[0] > 0.0,
        "audit grid must be positive ascending"
    );
    let mut report = AuditReport::default();
    for w in grid.windows(2) {
        if pf.price_at(w[0]) > pf.price_at(w[1]) + tol {
            report.monotonicity_violations.push((w[0], w[1]));
        }
    }
    let min_gap = grid.windows(2).map(|w| w[1] - w[0]).fold(grid[0], f64::min);
    let scale = resolution as f64 / min_gap;
    let items: Vec<Item> = grid
        .iter()
        .map(|&x| Item::new(((x * scale).floor() as u64).max(1), pf.price_at(x)))
        .collect();
    let targets: Vec<u64> = grid.iter().map(|&x| (x * scale).ceil() as u64).collect();
    let horizon = targets.iter().copied().max().unwrap_or(1);
    let oracle = BoundedCoverOracle::build(&items, horizon, max_items);
    for (j, &x0) in grid.iter().enumerate() {
        let list = pf.price_at(x0);
        let mu = oracle.mu(targets[j]);
        if mu < list - tol {
            let bundle = oracle
                .witness(targets[j])
                .map(|w| {
                    w.into_iter()
                        .map(|(idx, k)| (grid[idx], k))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            report.arbitrage.push(ArbitrageFinding {
                target_precision: x0,
                list_price: list,
                bundle_price: mu,
                bundle,
            });
        }
    }
    report
}

/// Executes the Theorem 5 attack: combines independently released model
/// instances `models[i]` bought at NCPs `ncps[i]` into the inverse-variance
/// weighted estimate with NCP `δ = 1/(Σ 1/δᵢ)`.
///
/// Returns `(combined model, combined ncp)`. The combination is unbiased
/// (the weights `(1/δᵢ)/Σ(1/δⱼ)` sum to 1) and, for the Gaussian mechanism,
/// attains the Cramér–Rao bound — no unbiased combination does better.
///
/// # Panics
/// Panics on empty input, length mismatch, or non-positive NCPs.
pub fn combine_inverse_variance(models: &[Vector], ncps: &[f64]) -> (Vector, f64) {
    assert!(!models.is_empty(), "no instances to combine");
    assert_eq!(models.len(), ncps.len(), "models and NCPs must align");
    assert!(
        ncps.iter().all(|&d| d > 0.0 && d.is_finite()),
        "NCPs must be positive"
    );
    let total_precision: f64 = ncps.iter().map(|d| 1.0 / d).sum();
    let mut out = Vector::zeros(models[0].len());
    for (m, &d) in models.iter().zip(ncps) {
        let weight = (1.0 / d) / total_precision;
        out.axpy(weight, m).expect("instances share a dimension");
    }
    (out, 1.0 / total_precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{GaussianMechanism, NoiseMechanism};
    use mbp_randx::seeded_rng;

    fn grid() -> Vec<f64> {
        (1..=10).map(|i| i as f64).collect()
    }

    #[test]
    fn clean_linear_pricing_passes() {
        // p̄(x) = 3x is monotone and additive (hence subadditive).
        let g = grid();
        let prices: Vec<f64> = g.iter().map(|x| 3.0 * x).collect();
        let pf = PricingFunction::from_points(g.clone(), prices).unwrap();
        let report = audit(&pf, &g, 10, 1e-9);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn clean_concave_pricing_passes() {
        // √x is monotone and subadditive.
        let g = grid();
        let prices: Vec<f64> = g.iter().map(|x| x.sqrt() * 10.0).collect();
        let pf = PricingFunction::from_points(g.clone(), prices).unwrap();
        let report = audit(&pf, &g, 10, 1e-9);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn convex_pricing_is_arbitraged() {
        // p̄(x) = x² is superadditive: two x=1 purchases (price 1 + 1 = 2)
        // cover x = 2 (price 4).
        let g = grid();
        let prices: Vec<f64> = g.iter().map(|x| x * x).collect();
        let pf = PricingFunction::from_points(g.clone(), prices).unwrap();
        let report = audit(&pf, &g, 10, 1e-9);
        assert!(!report.arbitrage.is_empty());
        let f = &report.arbitrage[0];
        assert!(f.margin() > 0.0);
        assert!(!f.bundle.is_empty());
        // Bundle precisions really cover the target.
        let covered: f64 = f.bundle.iter().map(|&(x, k)| x * k as f64).sum();
        assert!(covered >= f.target_precision - 1e-9);
        // Bundle price really is the sum of list prices.
        let paid: f64 = f
            .bundle
            .iter()
            .map(|&(x, k)| pf.price_at(x) * k as f64)
            .sum();
        assert!((paid - f.bundle_price).abs() < 1e-9);
    }

    #[test]
    fn decreasing_pricing_flags_monotonicity() {
        let g = vec![1.0, 2.0, 3.0];
        let pf = PricingFunction::from_points(g.clone(), vec![9.0, 5.0, 6.0]).unwrap();
        let report = audit(&pf, &g, 10, 1e-9);
        assert_eq!(report.monotonicity_violations, vec![(1.0, 2.0)]);
    }

    #[test]
    fn combination_precisions_add() {
        let models = vec![Vector::from_vec(vec![2.0]), Vector::from_vec(vec![4.0])];
        let (combined, ncp) = combine_inverse_variance(&models, &[1.0, 1.0]);
        assert!((ncp - 0.5).abs() < 1e-12); // 1/(1+1)
        assert!((combined[0] - 3.0).abs() < 1e-12); // equal weights
    }

    #[test]
    fn combination_weights_by_precision() {
        let models = vec![Vector::from_vec(vec![0.0]), Vector::from_vec(vec![10.0])];
        // Second model is 9x more precise (δ smaller), so it dominates.
        let (combined, ncp) = combine_inverse_variance(&models, &[9.0, 1.0]);
        assert!((combined[0] - 9.0).abs() < 1e-12);
        assert!((ncp - 0.9).abs() < 1e-12); // 1/(1/9 + 1)
    }

    /// End-to-end Theorem 5 attack: buying two δ=2 Gaussian releases and
    /// averaging yields an instance with measured error ≈ δ=1.
    #[test]
    fn attack_on_gaussian_releases_achieves_combined_ncp() {
        let h = Vector::from_vec(vec![1.0, -2.0, 3.0, 0.5]);
        let mut rng = seeded_rng(55);
        let reps = 20_000;
        let mut err = 0.0;
        for _ in 0..reps {
            let m1 = GaussianMechanism.perturb(&h, 2.0, &mut rng);
            let m2 = GaussianMechanism.perturb(&h, 2.0, &mut rng);
            let (combined, ncp) = combine_inverse_variance(&[m1, m2], &[2.0, 2.0]);
            assert!((ncp - 1.0).abs() < 1e-12);
            err += combined.sub(&h).unwrap().norm2_squared();
        }
        err /= reps as f64;
        assert!((err - 1.0).abs() < 0.05, "measured error {err}, want 1.0");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn combine_checks_lengths() {
        combine_inverse_variance(&[Vector::zeros(1)], &[1.0, 2.0]);
    }

    #[test]
    fn k_bounded_audit_needs_enough_items() {
        // Steep convex pricing: attacking x = 6 with x = 1 purchases needs
        // a 6-item bundle; a 2-item bound can still attack via 3+3.
        let g = grid();
        let prices: Vec<f64> = g.iter().map(|x| x * x).collect();
        let pf = PricingFunction::from_points(g.clone(), prices).unwrap();
        let unbounded = audit(&pf, &g, 10, 1e-9);
        let k2 = audit_k_bounded(&pf, &g, 10, 1e-9, 2);
        let k1 = audit_k_bounded(&pf, &g, 10, 1e-9, 1);
        // Single purchases cannot beat a strictly increasing price list.
        assert!(k1.arbitrage.is_empty(), "{k1:?}");
        // Pairs already find attacks, but no more than the unbounded audit.
        assert!(!k2.arbitrage.is_empty());
        assert!(k2.arbitrage.len() <= unbounded.arbitrage.len());
        // Every bounded bundle respects its size limit and its margin is no
        // better than the unbounded optimum for the same target.
        for f in &k2.arbitrage {
            let total: u64 = f.bundle.iter().map(|&(_, k)| k).sum();
            assert!(total <= 2, "{f:?}");
            let unb = unbounded
                .arbitrage
                .iter()
                .find(|u| u.target_precision == f.target_precision)
                .expect("unbounded audit must also flag this target");
            assert!(f.bundle_price >= unb.bundle_price - 1e-9);
        }
    }

    #[test]
    fn k_bounded_converges_to_unbounded() {
        let g = grid();
        let prices: Vec<f64> = g.iter().map(|x| x * x).collect();
        let pf = PricingFunction::from_points(g.clone(), prices).unwrap();
        let unbounded = audit(&pf, &g, 10, 1e-9);
        let k_large = audit_k_bounded(&pf, &g, 10, 1e-9, 32);
        assert_eq!(k_large.arbitrage.len(), unbounded.arbitrage.len());
        for (a, b) in k_large.arbitrage.iter().zip(&unbounded.arbitrage) {
            assert!((a.bundle_price - b.bundle_price).abs() < 1e-9);
        }
    }
}
