//! Pricing functions over the inverse-NCP axis.
//!
//! The paper prices a released model by `p̄(x)` where `x = 1/δ` is the
//! *precision* (inverse noise). Theorem 5/6: the market is arbitrage-free
//! iff `p̄` is non-negative, monotone non-decreasing, and subadditive.
//!
//! Optimizers produce prices at finitely many grid points; Proposition 1
//! shows how to extend them to all of `R⁺` without losing the (relaxed)
//! arbitrage-free property:
//!
//! * on `[0, a₁]`: the ray `x · z₁/a₁` through the origin;
//! * on `[a_j, a_{j+1}]`: linear interpolation;
//! * on `[a_n, ∞)`: the constant `z_n`.
//!
//! [`PricingFunction`] stores the grid and implements that evaluation. The
//! constructor validates only basic sanity (ascending grid, finite
//! non-negative prices) — deliberately, so that *broken* pricing functions
//! can be represented and handed to the [`arbitrage`](crate::arbitrage)
//! auditors, as in Figure 3's illustration.

use std::fmt;

/// Errors from pricing-function construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// Grid and price vectors have different lengths or are empty.
    BadShape {
        /// Grid length.
        grid: usize,
        /// Price-vector length.
        prices: usize,
    },
    /// Grid is not strictly ascending and positive.
    BadGrid,
    /// A price is negative or non-finite.
    BadPrice {
        /// Index of the offending price.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::BadShape { grid, prices } => {
                write!(f, "grid has {grid} points but prices has {prices} (both must be equal and nonzero)")
            }
            PricingError::BadGrid => write!(f, "grid must be strictly ascending and positive"),
            PricingError::BadPrice { index, value } => {
                write!(f, "price {index} is invalid: {value}")
            }
        }
    }
}

impl std::error::Error for PricingError {}

/// A piecewise-linear pricing function `p̄(x)` over the inverse-NCP axis
/// (Proposition 1 construction).
///
/// ```
/// use mbp_core::pricing::PricingFunction;
///
/// // Prices at precisions 1, 2, 4 — concave, hence arbitrage-free.
/// let p = PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap();
/// assert_eq!(p.price_at(2.0), 14.0);          // knot
/// assert_eq!(p.price_at(3.0), 17.0);          // linear interpolation
/// assert_eq!(p.price_at(100.0), 20.0);        // saturates past the grid
/// assert_eq!(p.price_for_ncp(0.5), p.price_at(2.0)); // price of noise δ = 1/2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PricingFunction {
    grid: Vec<f64>,
    prices: Vec<f64>,
}

impl PricingFunction {
    /// Builds a pricing function through the points `(grid[j], prices[j])`.
    pub fn from_points(grid: Vec<f64>, prices: Vec<f64>) -> Result<Self, PricingError> {
        if grid.is_empty() || grid.len() != prices.len() {
            return Err(PricingError::BadShape {
                grid: grid.len(),
                prices: prices.len(),
            });
        }
        if !(grid.windows(2).all(|w| w[0] < w[1]) && grid.iter().all(|&x| x > 0.0 && x.is_finite()))
        {
            return Err(PricingError::BadGrid);
        }
        for (i, &p) in prices.iter().enumerate() {
            if !(p >= 0.0 && p.is_finite()) {
                return Err(PricingError::BadPrice { index: i, value: p });
            }
        }
        Ok(PricingFunction { grid, prices })
    }

    /// A constant pricing function `p̄ ≡ c` represented on a trivial grid.
    pub fn constant(c: f64) -> Self {
        assert!(c >= 0.0 && c.is_finite(), "constant price must be >= 0");
        PricingFunction {
            grid: vec![1.0],
            prices: vec![c],
        }
    }

    /// The grid points (ascending inverse-NCP values).
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// The prices at the grid points.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Evaluates `p̄(x)` for any precision `x ≥ 0` (Proposition 1 rules).
    ///
    /// # Panics
    /// Panics for negative or non-finite `x`.
    pub fn price_at(&self, x: f64) -> f64 {
        assert!(x >= 0.0 && x.is_finite(), "precision must be >= 0, got {x}");
        let n = self.grid.len();
        // Constant-price special case: grid carries no slope information.
        if n == 1 {
            return if x == 0.0 { 0.0 } else { self.prices[0] };
        }
        if x == 0.0 {
            return 0.0;
        }
        if x <= self.grid[0] {
            return self.prices[0] * x / self.grid[0];
        }
        if x >= self.grid[n - 1] {
            return self.prices[n - 1];
        }
        let idx = self.grid.partition_point(|&g| g <= x);
        let (x0, x1) = (self.grid[idx - 1], self.grid[idx]);
        let (y0, y1) = (self.prices[idx - 1], self.prices[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Price of the model released with noise control parameter `δ > 0`:
    /// `p(δ) = p̄(1/δ)`.
    ///
    /// # Panics
    /// Panics for `δ ≤ 0` (a zero-noise release has unbounded precision;
    /// its price is the curve's saturation value, use [`Self::max_price`]).
    pub fn price_for_ncp(&self, delta: f64) -> f64 {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "NCP must be > 0, got {delta}"
        );
        self.price_at(1.0 / delta)
    }

    /// The saturation price `lim_{x→∞} p̄(x) = z_n`.
    pub fn max_price(&self) -> f64 {
        *self.prices.last().expect("non-empty by construction")
    }

    /// Largest precision purchasable with budget `b`, or `None` when even
    /// the cheapest positive-precision point exceeds the budget.
    ///
    /// Because `p̄` is monotone, this is a scan over segments; within the
    /// saturated tail any precision is affordable, so the function returns
    /// `f64::INFINITY` when `b ≥ max_price()`.
    pub fn max_precision_for_budget(&self, b: f64) -> Option<f64> {
        assert!(b >= 0.0 && b.is_finite(), "budget must be >= 0");
        if b >= self.max_price() {
            return Some(f64::INFINITY);
        }
        let n = self.grid.len();
        // Initial ray.
        if b < self.prices[0] {
            if n == 1 {
                // Constant curve: any precision costs prices[0] > b.
                return None;
            }
            if self.prices[0] <= 0.0 {
                return None;
            }
            let x = self.grid[0] * b / self.prices[0];
            return (x > 0.0).then_some(x);
        }
        // Walk segments; price is monotone so find the last affordable x.
        let mut best = self.grid[0];
        for i in 0..n - 1 {
            let (y0, y1) = (self.prices[i], self.prices[i + 1]);
            if b >= y1 {
                best = self.grid[i + 1];
                continue;
            }
            if b >= y0 && y1 > y0 {
                let t = (b - y0) / (y1 - y0);
                best = self.grid[i] + t * (self.grid[i + 1] - self.grid[i]);
            }
            break;
        }
        Some(best)
    }
}

/// A buyer-facing view of a pricing function in *error units* (Theorem 6):
/// composing `p̄` with the error-inverse `φ` gives the price of "expected
/// error at most ε" directly, which is how buyers think.
pub struct ErrorPricedView<'a> {
    pricing: &'a PricingFunction,
    transform: &'a dyn crate::error::ErrorTransform,
}

impl<'a> ErrorPricedView<'a> {
    /// Wraps a pricing function and an error transform.
    pub fn new(
        pricing: &'a PricingFunction,
        transform: &'a dyn crate::error::ErrorTransform,
    ) -> Self {
        ErrorPricedView { pricing, transform }
    }

    /// Price of a release with expected error `err`, or `None` when that
    /// error is unachievable for this model/dataset.
    pub fn price_for_error(&self, err: f64) -> Option<f64> {
        let ncp = self.transform.ncp_for_error(err)?;
        if ncp <= 0.0 {
            // Zero noise: the curve saturates (the grid caps precision).
            return Some(self.pricing.max_price());
        }
        Some(self.pricing.price_for_ncp(ncp))
    }

    /// Samples `(error, price)` pairs over a δ grid — the curve of
    /// Figure 2(d).
    pub fn curve(&self, ncps: &[f64]) -> Vec<(f64, f64)> {
        ncps.iter()
            .map(|&d| {
                (
                    self.transform.expected_error(d),
                    self.pricing.price_for_ncp(d),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorTransform, LinRegSquareTransform, SquareLossTransform};

    fn pf() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            PricingFunction::from_points(vec![], vec![]),
            Err(PricingError::BadShape { .. })
        ));
        assert!(matches!(
            PricingFunction::from_points(vec![2.0, 1.0], vec![1.0, 1.0]),
            Err(PricingError::BadGrid)
        ));
        assert!(matches!(
            PricingFunction::from_points(vec![1.0], vec![-2.0]),
            Err(PricingError::BadPrice { index: 0, .. })
        ));
    }

    #[test]
    fn evaluation_follows_proposition1() {
        let p = pf();
        assert_eq!(p.price_at(0.0), 0.0);
        assert!((p.price_at(0.5) - 5.0).abs() < 1e-12); // ray to (1, 10)
        assert_eq!(p.price_at(1.0), 10.0);
        assert!((p.price_at(1.5) - 12.0).abs() < 1e-12); // interp
        assert_eq!(p.price_at(4.0), 20.0);
        assert_eq!(p.price_at(100.0), 20.0); // constant tail
    }

    #[test]
    fn ncp_view_is_reciprocal() {
        let p = pf();
        assert_eq!(p.price_for_ncp(1.0), p.price_at(1.0));
        assert_eq!(p.price_for_ncp(0.25), p.price_at(4.0));
        assert!((p.price_for_ncp(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_curve() {
        let p = PricingFunction::constant(7.0);
        assert_eq!(p.price_at(0.5), 7.0);
        assert_eq!(p.price_at(50.0), 7.0);
        assert_eq!(p.price_at(0.0), 0.0);
        assert_eq!(p.max_price(), 7.0);
    }

    #[test]
    fn budget_inversion() {
        let p = pf();
        // Budget 5 buys the ray point x = 0.5.
        assert!((p.max_precision_for_budget(5.0).unwrap() - 0.5).abs() < 1e-12);
        // Budget 12 lands mid-segment between (1,10) and (2,14): x = 1.5.
        assert!((p.max_precision_for_budget(12.0).unwrap() - 1.5).abs() < 1e-12);
        // Budget ≥ max price buys unbounded precision.
        assert_eq!(p.max_precision_for_budget(25.0), Some(f64::INFINITY));
        // Zero budget buys nothing (positive prices).
        assert_eq!(p.max_precision_for_budget(0.0), None);
    }

    #[test]
    fn budget_on_constant_curve() {
        let p = PricingFunction::constant(7.0);
        assert_eq!(p.max_precision_for_budget(3.0), None);
        assert_eq!(p.max_precision_for_budget(7.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "NCP must be > 0")]
    fn zero_ncp_price_panics() {
        pf().price_for_ncp(0.0);
    }

    #[test]
    fn error_priced_view_identity_transform() {
        let p = pf();
        let t = SquareLossTransform;
        let view = ErrorPricedView::new(&p, &t);
        // With ε_s, error IS the NCP: error 2.0 ⇒ δ = 2 ⇒ x = 0.5 ⇒ price 5.
        assert!((view.price_for_error(2.0).unwrap() - 5.0).abs() < 1e-12);
        // Lower error costs more.
        assert!(view.price_for_error(0.5).unwrap() > view.price_for_error(2.0).unwrap());
        // Negative error is unachievable.
        assert_eq!(view.price_for_error(-1.0), None);
        // Zero error: the transform returns δ = 0, which saturates the
        // curve at its maximum price.
        assert_eq!(view.price_for_error(0.0), Some(p.max_price()));
    }

    #[test]
    fn error_priced_view_curve_is_monotone() {
        let p = pf();
        let mut rng = mbp_randx::seeded_rng(3);
        let ds = mbp_data::synth::simulated1(300, 3, 0.3, &mut rng);
        let h = mbp_ml::train::ridge_closed_form(&ds, 0.0).unwrap();
        let t = LinRegSquareTransform::new(&ds, &h);
        let view = ErrorPricedView::new(&p, &t);
        let ncps: Vec<f64> = (1..=20).map(|i| 0.1 * i as f64).collect();
        let curve = view.curve(&ncps);
        for w in curve.windows(2) {
            // Error grows with δ, price falls with δ.
            assert!(w[0].0 <= w[1].0 + 1e-12);
            assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // The view agrees with composing by hand at a probe point.
        let err = t.expected_error(0.7);
        let via_view = view.price_for_error(err).unwrap();
        assert!((via_view - p.price_for_ncp(0.7)).abs() < 1e-9);
    }

    #[test]
    fn flat_segment_budget() {
        let p = PricingFunction::from_points(vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 9.0]).unwrap();
        // Budget 5 should reach the far end of the flat segment (x = 2).
        assert!((p.max_precision_for_budget(5.0).unwrap() - 2.0).abs() < 1e-12);
    }
}
