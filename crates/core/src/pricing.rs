//! Pricing functions over the inverse-NCP axis.
//!
//! The paper prices a released model by `p̄(x)` where `x = 1/δ` is the
//! *precision* (inverse noise). Theorem 5/6: the market is arbitrage-free
//! iff `p̄` is non-negative, monotone non-decreasing, and subadditive.
//!
//! Optimizers produce prices at finitely many grid points; Proposition 1
//! shows how to extend them to all of `R⁺` without losing the (relaxed)
//! arbitrage-free property:
//!
//! * on `[0, a₁]`: the ray `x · z₁/a₁` through the origin;
//! * on `[a_j, a_{j+1}]`: linear interpolation;
//! * on `[a_n, ∞)`: the constant `z_n`.
//!
//! [`PricingFunction`] stores the grid and implements that evaluation. The
//! constructor validates only basic sanity (ascending grid, finite
//! non-negative prices) — deliberately, so that *broken* pricing functions
//! can be represented and handed to the [`arbitrage`](crate::arbitrage)
//! auditors, as in Figure 3's illustration.

use crate::lookup::SegmentIndex;
use std::fmt;

/// Errors from pricing-function construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// Grid and price vectors have different lengths or are empty.
    BadShape {
        /// Grid length.
        grid: usize,
        /// Price-vector length.
        prices: usize,
    },
    /// Grid is not strictly ascending and positive.
    BadGrid,
    /// A price is negative or non-finite.
    BadPrice {
        /// Index of the offending price.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::BadShape { grid, prices } => {
                write!(f, "grid has {grid} points but prices has {prices} (both must be equal and nonzero)")
            }
            PricingError::BadGrid => write!(f, "grid must be strictly ascending and positive"),
            PricingError::BadPrice { index, value } => {
                write!(f, "price {index} is invalid: {value}")
            }
        }
    }
}

impl std::error::Error for PricingError {}

/// A piecewise-linear pricing function `p̄(x)` over the inverse-NCP axis
/// (Proposition 1 construction).
///
/// ```
/// use mbp_core::pricing::PricingFunction;
///
/// // Prices at precisions 1, 2, 4 — concave, hence arbitrage-free.
/// let p = PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap();
/// assert_eq!(p.price_at(2.0), 14.0);          // knot
/// assert_eq!(p.price_at(3.0), 17.0);          // linear interpolation
/// assert_eq!(p.price_at(100.0), 20.0);        // saturates past the grid
/// assert_eq!(p.price_for_ncp(0.5), p.price_at(2.0)); // price of noise δ = 1/2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PricingFunction {
    grid: Vec<f64>,
    prices: Vec<f64>,
}

impl PricingFunction {
    /// Builds a pricing function through the points `(grid[j], prices[j])`.
    pub fn from_points(grid: Vec<f64>, prices: Vec<f64>) -> Result<Self, PricingError> {
        if grid.is_empty() || grid.len() != prices.len() {
            return Err(PricingError::BadShape {
                grid: grid.len(),
                prices: prices.len(),
            });
        }
        let ascending = grid.iter().zip(grid.iter().skip(1)).all(|(a, b)| a < b);
        if !(ascending && grid.iter().all(|&x| x > 0.0 && x.is_finite())) {
            return Err(PricingError::BadGrid);
        }
        for (i, &p) in prices.iter().enumerate() {
            if !(p >= 0.0 && p.is_finite()) {
                return Err(PricingError::BadPrice { index: i, value: p });
            }
        }
        Ok(PricingFunction { grid, prices })
    }

    /// A constant pricing function `p̄ ≡ c` represented on a trivial grid.
    pub fn constant(c: f64) -> Self {
        assert!(c >= 0.0 && c.is_finite(), "constant price must be >= 0");
        PricingFunction {
            grid: vec![1.0],
            prices: vec![c],
        }
    }

    /// The grid points (ascending inverse-NCP values).
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// The prices at the grid points.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Evaluates `p̄(x)` for any precision `x` (Proposition 1 rules).
    ///
    /// Out-of-domain queries clamp deterministically instead of panicking
    /// or falling through the segment scan:
    ///
    /// * `x` at or below the first grid point follows the origin ray;
    /// * `x` at or above the last grid point returns the saturation price;
    /// * negative `x` and `NaN` clamp to precision `0` (price `0`);
    /// * `+∞` returns [`Self::max_price`] (the tail is constant).
    pub fn price_at(&self, x: f64) -> f64 {
        // Non-positive precisions and NaN all clamp to price zero.
        if x.is_nan() || x <= 0.0 {
            return 0.0;
        }
        let (Some(&x_first), Some(&y_first)) = (self.grid.first(), self.prices.first()) else {
            return 0.0;
        };
        let (Some(&x_last), Some(&y_last)) = (self.grid.last(), self.prices.last()) else {
            return 0.0;
        };
        // Constant-price special case: grid carries no slope information.
        if self.grid.len() == 1 {
            return y_first;
        }
        if x <= x_first {
            return y_first * x / x_first;
        }
        if x >= x_last {
            return y_last;
        }
        // Interior: partition_point lands in [1, n-1] because x is strictly
        // between the endpoints; the fallbacks are unreachable for the
        // validated equal-length vectors.
        let idx = self.grid.partition_point(|&g| g <= x);
        let i0 = idx.wrapping_sub(1);
        let (Some(&x0), Some(&x1)) = (self.grid.get(i0), self.grid.get(idx)) else {
            return y_last;
        };
        let (Some(&y0), Some(&y1)) = (self.prices.get(i0), self.prices.get(idx)) else {
            return y_last;
        };
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Price of the model released with noise control parameter `δ > 0`:
    /// `p(δ) = p̄(1/δ)`. `δ = +∞` is accepted and prices at `p̄(0) = 0`
    /// (infinitely noisy releases are free).
    ///
    /// # Panics
    /// Panics for `δ ≤ 0` or `NaN` (a zero-noise release has unbounded
    /// precision; its price is the curve's saturation value, use
    /// [`Self::max_price`]).
    pub fn price_for_ncp(&self, delta: f64) -> f64 {
        assert!(delta > 0.0, "NCP must be > 0, got {delta}");
        self.price_at(1.0 / delta)
    }

    /// The saturation price `lim_{x→∞} p̄(x) = z_n`.
    pub fn max_price(&self) -> f64 {
        // Construction guarantees non-empty; a degenerate empty curve would
        // price everything at 0 rather than panic the serve path.
        self.prices.last().copied().unwrap_or(0.0)
    }

    /// Largest precision purchasable with budget `b`, or `None` when even
    /// the cheapest positive-precision point exceeds the budget.
    ///
    /// Because `p̄` is monotone, this is a scan over segments; within the
    /// saturated tail any precision is affordable, so the function returns
    /// `f64::INFINITY` when `b ≥ max_price()`.
    ///
    /// Edge cases clamp deterministically: a negative or `NaN` budget buys
    /// nothing (`None`), and `b = +∞` affords unbounded precision
    /// (`Some(∞)`, via the `b ≥ max_price()` branch).
    pub fn max_precision_for_budget(&self, b: f64) -> Option<f64> {
        if b.is_nan() || b < 0.0 {
            return None;
        }
        if b >= self.max_price() {
            return Some(f64::INFINITY);
        }
        let (Some(&x_first), Some(&y_first)) = (self.grid.first(), self.prices.first()) else {
            return None;
        };
        // Initial ray.
        if b < y_first {
            if self.grid.len() == 1 {
                // Constant curve: any precision costs prices[0] > b.
                return None;
            }
            if y_first <= 0.0 {
                return None;
            }
            let x = x_first * b / y_first;
            return (x > 0.0).then_some(x);
        }
        // Walk segments; price is monotone so find the last affordable x.
        let mut best = x_first;
        let pairs = self
            .grid
            .iter()
            .zip(self.grid.iter().skip(1))
            .zip(self.prices.iter().zip(self.prices.iter().skip(1)));
        for ((&x0, &x1), (&y0, &y1)) in pairs {
            if b >= y1 {
                best = x1;
                continue;
            }
            if b >= y0 && y1 > y0 {
                let t = (b - y0) / (y1 - y0);
                best = x0 + t * (x1 - x0);
            }
            break;
        }
        Some(best)
    }

    /// Lowers this function into a compiled [`PricingTable`] for the
    /// quote-serving fast path.
    pub fn compile(&self) -> PricingTable {
        PricingTable::from_function(self)
    }

    /// Test-only sabotage hook: returns a copy of this curve with a
    /// deliberately non-subadditive knot appended (price quadruples while
    /// precision only doubles, so `p̄(2x) > 2·p̄(x)` at the old tail).
    /// Exists so the `mbp-testkit` attack engine can prove it detects a
    /// seeded arbitrage defect; never compiled into the library proper.
    #[cfg(test)]
    pub(crate) fn with_sabotaged_knot(&self) -> PricingFunction {
        let mut grid = self.grid.clone();
        let mut prices = self.prices.clone();
        let x_max = *grid.last().expect("validated curves are non-empty");
        let p_max = *prices.last().expect("validated curves are non-empty");
        grid.push(2.0 * x_max);
        prices.push(4.0 * p_max.max(1.0));
        PricingFunction::from_points(grid, prices).expect("sabotaged curve still has valid shape")
    }
}

/// A compiled, flat sorted-segment form of a [`PricingFunction`] for the
/// quote-serving fast path.
///
/// At publish time the piecewise-linear curve is lowered into parallel
/// arrays of knots, knot prices, and *precomputed per-segment slopes*, and
/// the knot array is indexed by a branchless [`SegmentIndex`] (a fixed-
/// stride grid when the knots are near-uniform, an Eytzinger-ordered
/// layout otherwise), so [`PricingTable::price_at`] is one segment lookup
/// plus one fused multiply-add — no allocation, no division, no
/// data-dependent branch. The segment scan in
/// [`PricingFunction::max_precision_for_budget`] is likewise replaced by an
/// indexed lookup over the knot prices whenever they are non-decreasing
/// (always the case for arbitrage-free curves; non-monotone "broken"
/// curves fall back to the exact scan semantics).
///
/// Debug builds cross-check every table answer against the original
/// function to `1e-12` (relative), so any drift between the compiled and
/// scan representations fails loudly in tests.
#[derive(Debug, Clone)]
pub struct PricingTable {
    knots: Vec<f64>,
    prices: Vec<f64>,
    /// `slopes[i] = (prices[i+1] − prices[i]) / (knots[i+1] − knots[i])`;
    /// empty for a single-knot (constant) curve.
    slopes: Vec<f64>,
    /// Slope of the origin ray `prices[0] / knots[0]`.
    ray_slope: f64,
    /// First knot (`knots[0]`), cached so the hot path needs no bounds
    /// checks on the ray branch.
    knot_min: f64,
    /// Last knot (`knots[n-1]`), ditto for the saturation branch.
    knot_max: f64,
    max_price: f64,
    /// Branchless segment lookup over `knots` (grid or Eytzinger layout,
    /// chosen at compile time).
    knot_index: SegmentIndex,
    /// Branchless lookup over `prices`, present exactly when the knot
    /// prices are non-decreasing (monotone curves admit indexed budget
    /// inversion; broken curves fall back to the scan).
    price_index: Option<SegmentIndex>,
    #[cfg(debug_assertions)]
    source: PricingFunction,
}

impl PricingTable {
    /// Compiles `f` into its flat segment representation.
    pub fn from_function(f: &PricingFunction) -> Self {
        let _span = mbp_obs::span("mbp.core.pricing.table_build");
        mbp_obs::inc("mbp.core.pricing.table_build.count");
        let knots = f.grid().to_vec();
        let prices = f.prices().to_vec();
        let slopes: Vec<f64> = knots
            .iter()
            .zip(knots.iter().skip(1))
            .zip(prices.iter().zip(prices.iter().skip(1)))
            .map(|((x0, x1), (y0, y1))| (y1 - y0) / (x1 - x0))
            .collect();
        // The source function is validated non-empty; the degenerate
        // fallbacks keep compilation infallible regardless.
        let knot_min = knots.first().copied().unwrap_or(1.0);
        let knot_max = knots.last().copied().unwrap_or(1.0);
        let first_price = prices.first().copied().unwrap_or(0.0);
        let monotone = prices
            .iter()
            .zip(prices.iter().skip(1))
            .all(|(a, b)| a <= b);
        PricingTable {
            ray_slope: first_price / knot_min,
            knot_min,
            knot_max,
            max_price: prices.last().copied().unwrap_or(0.0),
            knot_index: SegmentIndex::new(&knots),
            price_index: monotone.then(|| SegmentIndex::new(&prices)),
            slopes,
            knots,
            prices,
            #[cfg(debug_assertions)]
            source: f.clone(),
        }
    }

    /// The knot positions (the source grid).
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// The saturation price `z_n`.
    pub fn max_price(&self) -> f64 {
        self.max_price
    }

    /// Index of the last knot `≤ x`, answered by the compiled
    /// [`SegmentIndex`] (grid arithmetic or Eytzinger descent — no
    /// data-dependent branch either way). Interior callers guarantee
    /// `x > knot_min`, so the upper bound is ≥ 1 and the subtraction
    /// cannot wrap.
    #[inline]
    fn segment_index(&self, x: f64) -> usize {
        self.knot_index
            .upper_bound(&self.knots, x)
            .saturating_sub(1)
    }

    /// Table evaluation of `p̄(x)` with the same clamp semantics as
    /// [`PricingFunction::price_at`].
    #[inline]
    pub fn price_at(&self, x: f64) -> f64 {
        let p = self.price_at_inner(x);
        #[cfg(debug_assertions)]
        {
            let direct = self.source.price_at(x);
            debug_assert!(
                (p - direct).abs() <= 1e-12 * direct.abs().max(1.0),
                "compiled table diverged from source at x={x}: {p} vs {direct}"
            );
        }
        p
    }

    #[inline]
    fn price_at_inner(&self, x: f64) -> f64 {
        // NaN and non-positive precisions clamp to price 0.
        if x.is_nan() || x <= 0.0 {
            return 0.0;
        }
        // For a single knot prices[0] == max_price exactly.
        if self.knots.len() == 1 {
            return self.max_price;
        }
        if x >= self.knot_max {
            return self.max_price;
        }
        if x <= self.knot_min {
            return self.ray_slope * x;
        }
        // segment_index returns i < n-1 for interior x; the fallback is
        // unreachable for the equal-length compiled vectors.
        let i = self.segment_index(x);
        let (Some(&y0), Some(&m), Some(&k0)) =
            (self.prices.get(i), self.slopes.get(i), self.knots.get(i))
        else {
            return self.max_price;
        };
        y0 + m * (x - k0)
    }

    /// Table evaluation of `p(δ) = p̄(1/δ)`.
    ///
    /// # Panics
    /// Panics for `δ ≤ 0` or `NaN`, like [`PricingFunction::price_for_ncp`].
    #[inline]
    pub fn price_for_ncp(&self, delta: f64) -> f64 {
        assert!(delta > 0.0, "NCP must be > 0, got {delta}");
        self.price_at(1.0 / delta)
    }

    /// Evaluation class for precision `x`, mirroring the branch ladder of
    /// [`PricingTable::price_at`] exactly: `0` = clamp to price 0 (NaN or
    /// non-positive), `1` = saturation (single knot, or `x ≥ knot_max`),
    /// `2` = origin ray (`x ≤ knot_min`), `3 + i` = interior segment `i`.
    #[inline]
    fn segment_class(&self, x: f64) -> u32 {
        if x.is_nan() || x <= 0.0 {
            return 0;
        }
        if self.knots.len() == 1 || x >= self.knot_max {
            return 1;
        }
        if x <= self.knot_min {
            return 2;
        }
        3 + self.segment_index(x) as u32
    }

    /// Bin-and-scatter batch evaluation of `p̄` over `xs`.
    ///
    /// Queries are binned by evaluation class (counting sort over an index
    /// permutation), each bin is evaluated with its segment constants
    /// `(k0, y0, m)` loaded once, and results are scattered back so
    /// `out[i]` is exactly `self.price_at(xs[i])` — the same branch
    /// ladder, the same operands, the same arithmetic, hence bit-identical
    /// to the sequential loop, in the original request order.
    ///
    /// All buffers live in `scratch`/`out` and are reused across calls, so
    /// a warmed-up caller performs no heap allocation.
    pub fn price_at_batch(&self, xs: &[f64], scratch: &mut BatchScratch, out: &mut Vec<f64>) {
        let n_classes = 3 + self.slopes.len();
        scratch.class.clear();
        scratch.starts.clear();
        scratch.starts.resize(n_classes + 1, 0);
        for &x in xs {
            let c = self.segment_class(x);
            scratch.class.push(c);
            if let Some(tally) = scratch.starts.get_mut(c as usize + 1) {
                *tally += 1;
            }
        }
        // Exclusive prefix sum: starts[c] = first slot of class c's bin.
        let mut acc = 0u32;
        for slot in scratch.starts.iter_mut() {
            acc += *slot;
            *slot = acc;
        }
        // Permutation scatter: order[] lists request indices grouped by
        // class, cursor[] tracks each bin's write position.
        scratch.cursor.clear();
        scratch.cursor.extend_from_slice(&scratch.starts);
        scratch.order.clear();
        scratch.order.resize(xs.len(), 0);
        for (i, &c) in scratch.class.iter().enumerate() {
            if let Some(pos) = scratch.cursor.get_mut(c as usize) {
                let at = *pos as usize;
                *pos += 1;
                if let Some(slot) = scratch.order.get_mut(at) {
                    *slot = i as u32;
                }
            }
        }
        out.clear();
        out.resize(xs.len(), 0.0);
        // Class 0 (NaN / non-positive) is already 0.0. Classes 1 and 2 are
        // register constants; interior bins load their segment once.
        let bin = |c: usize| {
            let (lo, hi) = (scratch.starts.get(c), scratch.starts.get(c + 1));
            match (lo, hi) {
                (Some(&lo), Some(&hi)) => {
                    scratch.order.get(lo as usize..hi as usize).unwrap_or(&[])
                }
                _ => &[],
            }
        };
        for &i in bin(1) {
            if let Some(slot) = out.get_mut(i as usize) {
                *slot = self.max_price;
            }
        }
        for &i in bin(2) {
            if let (Some(&x), Some(slot)) = (xs.get(i as usize), out.get_mut(i as usize)) {
                *slot = self.ray_slope * x;
            }
        }
        for (seg, ((&k0, &y0), &m)) in self
            .knots
            .iter()
            .zip(self.prices.iter())
            .zip(self.slopes.iter())
            .enumerate()
        {
            for &i in bin(3 + seg) {
                if let (Some(&x), Some(slot)) = (xs.get(i as usize), out.get_mut(i as usize)) {
                    *slot = y0 + m * (x - k0);
                }
            }
        }
        #[cfg(debug_assertions)]
        for (&x, &p) in xs.iter().zip(out.iter()) {
            let direct = self.price_at(x);
            debug_assert!(
                p.to_bits() == direct.to_bits(),
                "batch kernel diverged from price_at at x={x}: {p} vs {direct}"
            );
        }
    }

    /// Budget inversion with the same semantics as
    /// [`PricingFunction::max_precision_for_budget`], answered by binary
    /// search on monotone curves.
    pub fn max_precision_for_budget(&self, b: f64) -> Option<f64> {
        let x = self.max_precision_for_budget_inner(b);
        #[cfg(debug_assertions)]
        {
            let direct = self.source.max_precision_for_budget(b);
            debug_assert!(
                match (x, direct) {
                    (None, None) => true,
                    (Some(a), Some(d)) => a == d || (a - d).abs() <= 1e-12 * d.abs().max(1.0),
                    _ => false,
                },
                "compiled budget inversion diverged at b={b}: {x:?} vs {direct:?}"
            );
        }
        x
    }

    fn max_precision_for_budget_inner(&self, b: f64) -> Option<f64> {
        if b.is_nan() || b < 0.0 {
            return None;
        }
        if b >= self.max_price {
            return Some(f64::INFINITY);
        }
        let n = self.knots.len();
        let first_price = self.prices.first().copied().unwrap_or(0.0);
        if b < first_price {
            if n == 1 || first_price <= 0.0 {
                return None;
            }
            let x = self.knot_min * b / first_price;
            return (x > 0.0).then_some(x);
        }
        if let Some(price_index) = &self.price_index {
            // Prices are non-decreasing: the last affordable knot is found
            // by the branchless index, then extended into the next segment.
            // This reproduces the scan bit-for-bit: the index answers the
            // exact `partition_point(|&p| p <= b)` (comparison-only, no
            // float arithmetic in the Eytzinger path and exact ±1 fix-ups
            // in the grid path) and the interpolation arithmetic is
            // unchanged. The bound lands in [1, n) because b sits in
            // [prices[0], max_price); the fallbacks are unreachable.
            let idx = price_index.upper_bound(&self.prices, b);
            debug_assert!(idx >= 1 && idx < n, "b in [prices[0], max_price)");
            let i0 = idx.wrapping_sub(1);
            let (Some(&y0), Some(&y1)) = (self.prices.get(i0), self.prices.get(idx)) else {
                return Some(self.knot_max);
            };
            let (Some(&k0), Some(&k1)) = (self.knots.get(i0), self.knots.get(idx)) else {
                return Some(self.knot_max);
            };
            let mut best = k0;
            if b >= y0 && y1 > y0 {
                let t = (b - y0) / (y1 - y0);
                best = k0 + t * (k1 - k0);
            }
            return Some(best);
        }
        // Broken (non-monotone) curve: keep the exact scan semantics.
        let mut best = self.knot_min;
        let pairs = self
            .knots
            .iter()
            .zip(self.knots.iter().skip(1))
            .zip(self.prices.iter().zip(self.prices.iter().skip(1)));
        for ((&k0, &k1), (&y0, &y1)) in pairs {
            if b >= y1 {
                best = k1;
                continue;
            }
            if b >= y0 && y1 > y0 {
                let t = (b - y0) / (y1 - y0);
                best = k0 + t * (k1 - k0);
            }
            break;
        }
        Some(best)
    }
}

/// Reusable scratch buffers for [`PricingTable::price_at_batch`]: the
/// per-request class tags, the counting-sort bin offsets and write
/// cursors, and the index permutation. One instance per serving loop,
/// reused across batches, so the steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Evaluation class per request.
    class: Vec<u32>,
    /// Exclusive prefix offsets: bin `c` occupies
    /// `order[starts[c]..starts[c + 1]]`.
    starts: Vec<u32>,
    /// Per-bin write cursors (a working copy of `starts`).
    cursor: Vec<u32>,
    /// Request indices grouped by class (the scatter permutation).
    order: Vec<u32>,
}

/// Memoized φ-inversion state for one `(pricing, transform)` pair: the
/// numbers needed to answer [`ErrorPricedView::price_for_error`] without a
/// virtual `ncp_for_error` call or a segment scan.
///
/// For affine transforms (`E[ε] = base + slope·δ`,
/// [`crate::error::ErrorTransform::affine_params`]) the inverse is one
/// subtract-multiply; the saturation band `[ε(h*), E[ε(1/x_max)]]` — where
/// the curve answers its maximum price — is precomputed so the common
/// "buyer wants the most precise instance" query is a pure lookup.
#[derive(Debug, Clone)]
pub struct PhiMemo {
    /// `(base, slope)` for affine transforms with positive slope.
    affine: Option<(f64, f64)>,
    sat_floor: f64,
    sat_ceil: f64,
    max_price: f64,
}

impl PhiMemo {
    /// Precomputes inversion state for `transform` against `table`.
    pub fn new(transform: &dyn crate::error::ErrorTransform, table: &PricingTable) -> Self {
        let affine = transform.affine_params().filter(|&(_, s)| s > 0.0);
        // The saturation shortcut is only sound for strictly increasing
        // affine transforms: there `err ≤ E[ε(δ₀)]` implies `φ(err) ≤ δ₀`.
        // Piecewise transforms (PAVA-pooled flat segments) resolve flat
        // stretches to the buyer-optimal *largest* δ, which can escape the
        // band, so they always go through `ncp_for_error`.
        let (sat_floor, sat_ceil) = match affine {
            Some(_) => {
                let x_max = table.knot_max;
                (
                    transform.expected_error(0.0),
                    transform.expected_error(1.0 / x_max),
                )
            }
            None => (f64::INFINITY, f64::NEG_INFINITY),
        };
        PhiMemo {
            affine,
            sat_floor,
            sat_ceil,
            max_price: table.max_price(),
        }
    }

    /// The error-inverse `φ(err)`, using the cached affine parameters when
    /// available (bit-identical to the transform's own inversion) and the
    /// transform's virtual call otherwise.
    pub fn ncp_for_error(
        &self,
        transform: &dyn crate::error::ErrorTransform,
        err: f64,
    ) -> Option<f64> {
        match self.affine {
            Some((base, slope)) => {
                if !err.is_finite() || err < base - 1e-12 {
                    return None;
                }
                Some(((err - base) / slope).max(0.0))
            }
            None => transform.ncp_for_error(err),
        }
    }

    /// Memoized price for expected error `err` — the lookup form of
    /// [`ErrorPricedView::price_for_error`].
    pub fn price_for_error(
        &self,
        transform: &dyn crate::error::ErrorTransform,
        table: &PricingTable,
        err: f64,
    ) -> Option<f64> {
        // Saturation band: any error at or below the most precise grid
        // point's error (but achievable) prices at the saturation value.
        if err >= self.sat_floor && err <= self.sat_ceil {
            return Some(self.max_price);
        }
        let ncp = self.ncp_for_error(transform, err)?;
        if ncp <= 0.0 {
            return Some(self.max_price);
        }
        Some(table.price_for_ncp(ncp))
    }

    /// `Some((base, slope))` when the affine fast path is active.
    pub fn affine(&self) -> Option<(f64, f64)> {
        self.affine
    }
}

/// The compiled analogue of [`ErrorPricedView`]: owns the φ memo and
/// answers error-unit price queries by table lookup.
pub struct ErrorPricedTable<'a> {
    table: &'a PricingTable,
    transform: &'a dyn crate::error::ErrorTransform,
    memo: PhiMemo,
}

impl<'a> ErrorPricedTable<'a> {
    /// Builds the memoized view over a compiled table.
    pub fn new(table: &'a PricingTable, transform: &'a dyn crate::error::ErrorTransform) -> Self {
        let memo = PhiMemo::new(transform, table);
        ErrorPricedTable {
            table,
            transform,
            memo,
        }
    }

    /// Memoized price of a release with expected error `err`; agrees with
    /// [`ErrorPricedView::price_for_error`] to `1e-12`.
    pub fn price_for_error(&self, err: f64) -> Option<f64> {
        self.memo.price_for_error(self.transform, self.table, err)
    }
}

/// A buyer-facing view of a pricing function in *error units* (Theorem 6):
/// composing `p̄` with the error-inverse `φ` gives the price of "expected
/// error at most ε" directly, which is how buyers think.
pub struct ErrorPricedView<'a> {
    pricing: &'a PricingFunction,
    transform: &'a dyn crate::error::ErrorTransform,
}

impl<'a> ErrorPricedView<'a> {
    /// Wraps a pricing function and an error transform.
    pub fn new(
        pricing: &'a PricingFunction,
        transform: &'a dyn crate::error::ErrorTransform,
    ) -> Self {
        ErrorPricedView { pricing, transform }
    }

    /// Price of a release with expected error `err`, or `None` when that
    /// error is unachievable for this model/dataset.
    pub fn price_for_error(&self, err: f64) -> Option<f64> {
        let ncp = self.transform.ncp_for_error(err)?;
        if ncp <= 0.0 {
            // Zero noise: the curve saturates (the grid caps precision).
            return Some(self.pricing.max_price());
        }
        Some(self.pricing.price_for_ncp(ncp))
    }

    /// Samples `(error, price)` pairs over a δ grid — the curve of
    /// Figure 2(d).
    pub fn curve(&self, ncps: &[f64]) -> Vec<(f64, f64)> {
        ncps.iter()
            .map(|&d| {
                (
                    self.transform.expected_error(d),
                    self.pricing.price_for_ncp(d),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorTransform, LinRegSquareTransform, SquareLossTransform};

    fn pf() -> PricingFunction {
        PricingFunction::from_points(vec![1.0, 2.0, 4.0], vec![10.0, 14.0, 20.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            PricingFunction::from_points(vec![], vec![]),
            Err(PricingError::BadShape { .. })
        ));
        assert!(matches!(
            PricingFunction::from_points(vec![2.0, 1.0], vec![1.0, 1.0]),
            Err(PricingError::BadGrid)
        ));
        assert!(matches!(
            PricingFunction::from_points(vec![1.0], vec![-2.0]),
            Err(PricingError::BadPrice { index: 0, .. })
        ));
    }

    #[test]
    fn evaluation_follows_proposition1() {
        let p = pf();
        assert_eq!(p.price_at(0.0), 0.0);
        assert!((p.price_at(0.5) - 5.0).abs() < 1e-12); // ray to (1, 10)
        assert_eq!(p.price_at(1.0), 10.0);
        assert!((p.price_at(1.5) - 12.0).abs() < 1e-12); // interp
        assert_eq!(p.price_at(4.0), 20.0);
        assert_eq!(p.price_at(100.0), 20.0); // constant tail
    }

    #[test]
    fn ncp_view_is_reciprocal() {
        let p = pf();
        assert_eq!(p.price_for_ncp(1.0), p.price_at(1.0));
        assert_eq!(p.price_for_ncp(0.25), p.price_at(4.0));
        assert!((p.price_for_ncp(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_curve() {
        let p = PricingFunction::constant(7.0);
        assert_eq!(p.price_at(0.5), 7.0);
        assert_eq!(p.price_at(50.0), 7.0);
        assert_eq!(p.price_at(0.0), 0.0);
        assert_eq!(p.max_price(), 7.0);
    }

    #[test]
    fn budget_inversion() {
        let p = pf();
        // Budget 5 buys the ray point x = 0.5.
        assert!((p.max_precision_for_budget(5.0).unwrap() - 0.5).abs() < 1e-12);
        // Budget 12 lands mid-segment between (1,10) and (2,14): x = 1.5.
        assert!((p.max_precision_for_budget(12.0).unwrap() - 1.5).abs() < 1e-12);
        // Budget ≥ max price buys unbounded precision.
        assert_eq!(p.max_precision_for_budget(25.0), Some(f64::INFINITY));
        // Zero budget buys nothing (positive prices).
        assert_eq!(p.max_precision_for_budget(0.0), None);
    }

    #[test]
    fn budget_on_constant_curve() {
        let p = PricingFunction::constant(7.0);
        assert_eq!(p.max_precision_for_budget(3.0), None);
        assert_eq!(p.max_precision_for_budget(7.0), Some(f64::INFINITY));
    }

    #[test]
    #[should_panic(expected = "NCP must be > 0")]
    fn zero_ncp_price_panics() {
        pf().price_for_ncp(0.0);
    }

    #[test]
    fn error_priced_view_identity_transform() {
        let p = pf();
        let t = SquareLossTransform;
        let view = ErrorPricedView::new(&p, &t);
        // With ε_s, error IS the NCP: error 2.0 ⇒ δ = 2 ⇒ x = 0.5 ⇒ price 5.
        assert!((view.price_for_error(2.0).unwrap() - 5.0).abs() < 1e-12);
        // Lower error costs more.
        assert!(view.price_for_error(0.5).unwrap() > view.price_for_error(2.0).unwrap());
        // Negative error is unachievable.
        assert_eq!(view.price_for_error(-1.0), None);
        // Zero error: the transform returns δ = 0, which saturates the
        // curve at its maximum price.
        assert_eq!(view.price_for_error(0.0), Some(p.max_price()));
    }

    #[test]
    fn error_priced_view_curve_is_monotone() {
        let p = pf();
        let mut rng = mbp_randx::seeded_rng(3);
        let ds = mbp_data::synth::simulated1(300, 3, 0.3, &mut rng);
        let h = mbp_ml::train::ridge_closed_form(&ds, 0.0).unwrap();
        let t = LinRegSquareTransform::new(&ds, &h);
        let view = ErrorPricedView::new(&p, &t);
        let ncps: Vec<f64> = (1..=20).map(|i| 0.1 * i as f64).collect();
        let curve = view.curve(&ncps);
        for w in curve.windows(2) {
            // Error grows with δ, price falls with δ.
            assert!(w[0].0 <= w[1].0 + 1e-12);
            assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        // The view agrees with composing by hand at a probe point.
        let err = t.expected_error(0.7);
        let via_view = view.price_for_error(err).unwrap();
        assert!((via_view - p.price_for_ncp(0.7)).abs() < 1e-9);
    }

    #[test]
    fn flat_segment_budget() {
        let p = PricingFunction::from_points(vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 9.0]).unwrap();
        // Budget 5 should reach the far end of the flat segment (x = 2).
        assert!((p.max_precision_for_budget(5.0).unwrap() - 2.0).abs() < 1e-12);
    }

    /// The documented clamp semantics for out-of-domain queries: negative
    /// and NaN precisions price at 0, +∞ saturates; negative/NaN budgets
    /// buy nothing, an infinite budget buys unbounded precision.
    #[test]
    fn out_of_domain_queries_clamp_deterministically() {
        let p = pf();
        assert_eq!(p.price_at(-3.0), 0.0);
        assert_eq!(p.price_at(f64::NAN), 0.0);
        assert_eq!(p.price_at(f64::INFINITY), p.max_price());
        // Infinitely noisy releases are free.
        assert_eq!(p.price_for_ncp(f64::INFINITY), 0.0);
        assert_eq!(p.max_precision_for_budget(-1.0), None);
        assert_eq!(p.max_precision_for_budget(f64::NAN), None);
        assert_eq!(
            p.max_precision_for_budget(f64::INFINITY),
            Some(f64::INFINITY)
        );
        // The compiled table clamps identically.
        let t = p.compile();
        assert_eq!(t.price_at(-3.0), 0.0);
        assert_eq!(t.price_at(f64::NAN), 0.0);
        assert_eq!(t.price_at(f64::INFINITY), p.max_price());
        assert_eq!(t.max_precision_for_budget(f64::NAN), None);
        assert_eq!(
            t.max_precision_for_budget(f64::INFINITY),
            Some(f64::INFINITY)
        );
    }

    #[test]
    #[should_panic(expected = "NCP must be > 0")]
    fn nan_ncp_price_panics() {
        pf().price_for_ncp(f64::NAN);
    }

    #[test]
    fn compiled_table_matches_scan_on_dense_probes() {
        let p = pf();
        let t = p.compile();
        for i in 0..2000 {
            let x = i as f64 * 0.004; // 0 .. 8, covering ray/interior/tail
            let a = t.price_at(x);
            let b = p.price_at(x);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "x={x}: {a} vs {b}"
            );
        }
        assert_eq!(t.max_price(), p.max_price());
        assert_eq!(t.price_for_ncp(0.5), p.price_for_ncp(0.5));
    }

    #[test]
    fn compiled_table_budget_inversion_matches_scan() {
        let curves = vec![
            pf(),
            PricingFunction::from_points(vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 9.0]).unwrap(),
            PricingFunction::constant(7.0),
            // A broken (non-monotone) curve exercises the scan fallback.
            PricingFunction::from_points(vec![1.0, 2.0, 3.0], vec![5.0, 3.0, 9.0]).unwrap(),
        ];
        for p in curves {
            let t = p.compile();
            for i in 0..300 {
                let b = i as f64 * 0.05;
                assert_eq!(
                    t.max_precision_for_budget(b),
                    p.max_precision_for_budget(b),
                    "budget {b} diverged"
                );
            }
        }
    }

    #[test]
    fn constant_curve_table_matches() {
        let p = PricingFunction::constant(7.0);
        let t = p.compile();
        assert_eq!(t.price_at(0.0), 0.0);
        assert_eq!(t.price_at(0.5), 7.0);
        assert_eq!(t.price_at(50.0), 7.0);
        assert_eq!(t.max_precision_for_budget(3.0), None);
        assert_eq!(t.max_precision_for_budget(7.0), Some(f64::INFINITY));
    }

    #[test]
    fn memoized_error_table_agrees_with_view() {
        let p = pf();
        let table = p.compile();
        // Identity transform (non-affine path: no affine_params impl).
        let t = SquareLossTransform;
        let view = ErrorPricedView::new(&p, &t);
        let memo = ErrorPricedTable::new(&table, &t);
        for i in 0..400 {
            let err = i as f64 * 0.02;
            let a = memo.price_for_error(err);
            let b = view.price_for_error(err);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "err={err}")
                }
                _ => panic!("achievability diverged at err={err}: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(memo.price_for_error(-1.0), None);
        assert_eq!(memo.price_for_error(0.0), Some(p.max_price()));
    }

    #[test]
    fn memoized_error_table_uses_affine_fast_path() {
        let p = pf();
        let table = p.compile();
        let mut rng = mbp_randx::seeded_rng(5);
        let ds = mbp_data::synth::simulated1(300, 3, 0.3, &mut rng);
        let h = mbp_ml::train::ridge_closed_form(&ds, 0.0).unwrap();
        let t = LinRegSquareTransform::new(&ds, &h);
        let memo = PhiMemo::new(&t, &table);
        assert!(memo.affine().is_some(), "LinReg transform is affine in δ");
        let view = ErrorPricedView::new(&p, &t);
        let et = ErrorPricedTable::new(&table, &t);
        // Probe across unachievable, saturated, interior, and tail errors.
        for i in 0..500 {
            let err = t.base() * 0.5 + i as f64 * 0.01;
            let a = et.price_for_error(err);
            let b = view.price_for_error(err);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!(
                        (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                        "err={err}: {x} vs {y}"
                    )
                }
                _ => panic!("achievability diverged at err={err}: {a:?} vs {b:?}"),
            }
        }
        // The saturation band answers max_price without inversion.
        let sat = t.expected_error(1.0 / p.grid().last().unwrap() * 0.5);
        assert_eq!(et.price_for_error(sat), Some(p.max_price()));
    }

    /// The verification layer's end-to-end smoke: a deliberately
    /// non-subadditive knot seeded behind the test-only hook must be found
    /// by the attack engine within its time budget, while the pristine
    /// curve survives the same search untouched.
    #[test]
    fn attack_engine_finds_the_sabotaged_knot_within_budget() {
        // The test harness's `PricingFunction` is a distinct compilation
        // from the one mbp-testkit links (dev-dependency cycle), so the
        // sabotaged knots cross the boundary as plain points.
        let rebuild = |f: &PricingFunction| {
            mbp_testkit::mbp_core::pricing::PricingFunction::from_points(
                f.grid().to_vec(),
                f.prices().to_vec(),
            )
            .expect("valid points round-trip")
        };
        let sabotaged = rebuild(&pf().with_sabotaged_knot());
        let start = std::time::Instant::now();
        let cfg = mbp_testkit::AttackConfig::default();
        let report = mbp_testkit::attack_curve(&sabotaged, &cfg);
        assert!(
            !report.is_clean(),
            "seeded non-subadditive knot must be exploitable"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|c| matches!(c.violation, mbp_testkit::Violation::Subadditivity { .. })),
            "the seeded defect is a subadditivity break: {:?}",
            report.violations
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "attack must find the seeded defect in under 5s"
        );
        // The pristine curve survives a quick pass of the same search.
        let clean =
            mbp_testkit::attack_curve(&rebuild(&pf()), &mbp_testkit::AttackConfig::quick(7));
        assert!(clean.is_clean(), "{:?}", clean.violations);
    }
}
