//! Error transforms: the monotone bijection `δ ↔ E[ε(ĥ_δ)]`.
//!
//! Theorem 4 shows that for any strictly convex test error `ε`, the expected
//! error of the Gaussian release is strictly increasing in the NCP δ, so an
//! *error-inverse* `φ` exists with `δ = φ(E[ε])` (Section 4.2). The broker
//! needs `φ` to run the market: buyers think in error units, the
//! arbitrage-free characterization (Theorem 6) lives in inverse-NCP units.
//!
//! Three implementations:
//!
//! * [`SquareLossTransform`] — the model-space square loss, where Lemma 3
//!   gives `E[ε_s] = δ` exactly (the identity transform);
//! * [`LinRegSquareTransform`] — analytic transform for the *data-space*
//!   square loss of linear regression: for `ε(h) = (1/2n)‖Xh − y‖²` and
//!   isotropic noise with per-coordinate variance `δ/d`,
//!   `E[ε(h* + w)] = ε(h*) + δ·tr(XᵀX)/(2nd)` — affine in δ, analytically
//!   invertible;
//! * [`EmpiricalTransform`] — the Monte-Carlo estimator used in Figure 6:
//!   sample many noisy models per grid δ, average the error, smooth with
//!   isotonic regression (the curve must be monotone by Theorem 4; sampling
//!   noise is projected away), invert by piecewise-linear interpolation.

use crate::lookup::SegmentIndex;
use crate::mechanism::NoiseMechanism;
use mbp_data::Dataset;
use mbp_linalg::Vector;
use mbp_ml::metrics::TestError;
use mbp_optim::isotonic::pava_non_decreasing;
use mbp_randx::{seeded_rng, SeedStream};

/// A monotone map between the NCP δ and the expected buyer-facing error.
pub trait ErrorTransform {
    /// `E[ε(ĥ_δ)]` as a function of `δ ≥ 0`.
    fn expected_error(&self, ncp: f64) -> f64;

    /// The error-inverse `φ`: the δ achieving expected error `err`.
    ///
    /// Returns `None` when `err` is unachievable — below the noiseless
    /// error floor `ε(h*)`, or above/outside the transform's modeled range.
    fn ncp_for_error(&self, err: f64) -> Option<f64>;

    /// `Some((base, slope))` for transforms affine in δ
    /// (`E[ε] = base + slope·δ`), letting serving caches
    /// ([`crate::pricing::PhiMemo`]) invert `φ` with one subtract-divide
    /// instead of a virtual call. Implementors must keep
    /// [`ErrorTransform::ncp_for_error`] on the standard affine guard
    /// (reject `err < base − 1e-12`, clamp at 0), so the cached inversion
    /// is bit-identical to the direct one. Defaults to `None` (no fast
    /// path).
    fn affine_params(&self) -> Option<(f64, f64)> {
        None
    }

    /// Name for reports.
    fn name(&self) -> String;
}

/// Lemma 3: for the model-space square loss `ε_s(h) = ‖h − h*‖²`, the
/// expected error of any calibrated mechanism equals δ exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SquareLossTransform;

impl ErrorTransform for SquareLossTransform {
    fn expected_error(&self, ncp: f64) -> f64 {
        ncp
    }

    fn ncp_for_error(&self, err: f64) -> Option<f64> {
        (err >= 0.0 && err.is_finite()).then_some(err)
    }

    fn name(&self) -> String {
        "identity (model-space square loss)".to_string()
    }
}

/// Analytic transform for linear regression's data-space square loss:
/// `E[ε] = ε(h*) + δ · tr(XᵀX)/(2nd)` on the evaluation split.
#[derive(Debug, Clone)]
pub struct LinRegSquareTransform {
    base: f64,
    slope: f64,
}

impl LinRegSquareTransform {
    /// Builds the transform for evaluation dataset `eval` and optimal model
    /// `h_star`.
    ///
    /// # Panics
    /// Panics on an empty evaluation set or dimension mismatch.
    pub fn new(eval: &Dataset, h_star: &Vector) -> Self {
        assert!(eval.n() > 0, "evaluation set is empty");
        assert_eq!(eval.d(), h_star.len(), "dimension mismatch");
        let base = TestError::SquareLoss.evaluate(h_star, eval);
        let gram = eval.x.gram();
        // Setup-time constructor with a documented `# Panics` contract.
        // LINT-ALLOW(panic): gram() always returns a square matrix.
        let trace = gram.trace().expect("gram is square");
        let slope = trace / (2.0 * eval.n() as f64 * eval.d() as f64);
        LinRegSquareTransform { base, slope }
    }

    /// The noiseless error floor `ε(h*)`.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The per-δ error slope `tr(XᵀX)/(2nd)`.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl ErrorTransform for LinRegSquareTransform {
    fn expected_error(&self, ncp: f64) -> f64 {
        self.base + self.slope * ncp
    }

    fn ncp_for_error(&self, err: f64) -> Option<f64> {
        if !err.is_finite() || err < self.base - 1e-12 || self.slope <= 0.0 {
            return None;
        }
        Some(((err - self.base) / self.slope).max(0.0))
    }

    fn affine_params(&self) -> Option<(f64, f64)> {
        Some((self.base, self.slope))
    }

    fn name(&self) -> String {
        "analytic linear-regression square loss".to_string()
    }
}

/// Second-order ("delta method") analytic transform for any twice-
/// differentiable test error: for isotropic noise with per-coordinate
/// variance `δ/d`,
///
/// ```text
/// E[ε(h* + w)] ≈ ε(h*) + (δ / 2d) · tr(∇²ε(h*))
/// ```
///
/// Exact for quadratic errors (it reproduces [`LinRegSquareTransform`]
/// bit-for-bit on linear regression) and a small-δ approximation
/// otherwise; [`DeltaMethodTransform::for_logistic`] reports the curvature
/// of the logistic loss at the optimum. Use [`EmpiricalTransform`] when δ
/// is large relative to the loss's curvature scale.
#[derive(Debug, Clone)]
pub struct DeltaMethodTransform {
    base: f64,
    slope: f64,
}

impl DeltaMethodTransform {
    /// Builds the transform from the noiseless error and the Hessian trace
    /// of the test error at `h*`, for a `d`-dimensional hypothesis space.
    ///
    /// # Panics
    /// Panics for non-finite inputs, negative trace, or `d == 0`.
    pub fn new(base: f64, hessian_trace: f64, d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        assert!(
            base.is_finite() && base >= 0.0,
            "base error must be finite and >= 0"
        );
        assert!(
            hessian_trace.is_finite() && hessian_trace >= 0.0,
            "a convex error has non-negative Hessian trace"
        );
        DeltaMethodTransform {
            base,
            slope: hessian_trace / (2.0 * d as f64),
        }
    }

    /// Delta-method transform for linear regression's data-space square
    /// loss — exact (the loss is quadratic), and identical to
    /// [`LinRegSquareTransform`].
    pub fn for_linear_regression(eval: &Dataset, h_star: &Vector) -> Self {
        let base = TestError::SquareLoss.evaluate(h_star, eval);
        // Hessian of (1/2n)‖Xh − y‖² is XᵀX/n.
        // Setup-time constructor, not the serve path.
        // LINT-ALLOW(panic): gram() always returns a square matrix.
        let trace = eval.x.gram().trace().expect("gram is square") / eval.n().max(1) as f64;
        DeltaMethodTransform::new(base, trace, eval.d())
    }

    /// Delta-method transform for the logistic test loss:
    /// `tr(∇²ε) = (1/n) Σ σ(mᵢ)(1 − σ(mᵢ))·‖xᵢ‖²` at the optimum's margins.
    pub fn for_logistic(eval: &Dataset, h_star: &Vector) -> Self {
        let base = TestError::LogisticLoss.evaluate(h_star, eval);
        let n = eval.n().max(1) as f64;
        let mut trace = 0.0;
        for i in 0..eval.n() {
            let (x, y) = eval.example(i);
            let m: f64 = y * x
                .iter()
                .zip(h_star.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f64>();
            let s = 1.0 / (1.0 + (-m).exp());
            let norm_sq: f64 = x.iter().map(|v| v * v).sum();
            trace += s * (1.0 - s) * norm_sq;
        }
        DeltaMethodTransform::new(base, trace / n, eval.d())
    }

    /// The noiseless error floor.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The per-δ slope `tr(∇²ε)/(2d)`.
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

impl ErrorTransform for DeltaMethodTransform {
    fn expected_error(&self, ncp: f64) -> f64 {
        self.base + self.slope * ncp
    }

    fn ncp_for_error(&self, err: f64) -> Option<f64> {
        if !err.is_finite() || err < self.base - 1e-12 || self.slope <= 0.0 {
            return None;
        }
        Some(((err - self.base) / self.slope).max(0.0))
    }

    fn affine_params(&self) -> Option<(f64, f64)> {
        Some((self.base, self.slope))
    }

    fn name(&self) -> String {
        "delta-method (second-order analytic)".to_string()
    }
}

/// Monte-Carlo estimate of the error curve on a δ grid (Figure 6's
/// methodology: "for each value of the NCP, we generate 2000 random models").
#[derive(Debug, Clone)]
pub struct EmpiricalTransform {
    /// Ascending NCP grid.
    ncps: Vec<f64>,
    /// Isotonic-smoothed expected error per grid point.
    errors: Vec<f64>,
    /// Branchless segment lookup over `ncps` (forward interpolation).
    ncp_index: SegmentIndex,
    /// Branchless segment lookup over `errors` (inverse interpolation;
    /// PAVA pooling can leave duplicate-adjacent errors, which the index
    /// resolves exactly like `partition_point`).
    err_index: SegmentIndex,
    error_kind: TestError,
}

impl EmpiricalTransform {
    /// Estimates the transform by releasing `replicas` noisy models per grid
    /// NCP through `mechanism` and averaging `error_kind` on `eval`.
    ///
    /// The averaged curve is projected to be non-decreasing (PAVA): by
    /// Theorem 4 the true curve is monotone for convex `ε`, and empirically
    /// so for the 0/1 loss (Figure 6, bottom row), so residual wiggle is
    /// Monte-Carlo noise.
    ///
    /// # Panics
    /// Panics when the grid is empty/not ascending or `replicas == 0`.
    pub fn estimate(
        mechanism: &dyn NoiseMechanism,
        h_star: &Vector,
        eval: &Dataset,
        error_kind: TestError,
        ncp_grid: &[f64],
        replicas: usize,
        seed: u64,
    ) -> Self {
        assert!(!ncp_grid.is_empty(), "NCP grid is empty");
        assert!(
            ncp_grid.windows(2).all(|w| w[0] < w[1]),
            "NCP grid must be strictly ascending"
        );
        assert!(ncp_grid.iter().all(|&d| d >= 0.0), "NCPs must be >= 0");
        assert!(replicas > 0, "need at least one replica");
        let mut seeds = SeedStream::new(seed);
        let raw: Vec<f64> = ncp_grid
            .iter()
            .map(|&ncp| {
                let mut rng = seeded_rng(seeds.next_seed());
                let mut acc = 0.0;
                for _ in 0..replicas {
                    let released = mechanism.perturb(h_star, ncp, &mut rng);
                    acc += error_kind.evaluate(&released, eval);
                }
                acc / replicas as f64
            })
            .collect();
        let weights = vec![1.0; raw.len()];
        let errors = pava_non_decreasing(&raw, &weights);
        EmpiricalTransform {
            ncps: ncp_grid.to_vec(),
            ncp_index: SegmentIndex::new(ncp_grid),
            err_index: SegmentIndex::new(&errors),
            errors,
            error_kind,
        }
    }

    /// The estimated `(δ, E[ε])` pairs.
    pub fn curve(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.ncps.iter().copied().zip(self.errors.iter().copied())
    }

    fn interp(&self, ncp: f64) -> f64 {
        let (Some(&e_first), Some(&e_last)) = (self.errors.first(), self.errors.last()) else {
            return 0.0;
        };
        let (Some(&d_first), Some(&d_last)) = (self.ncps.first(), self.ncps.last()) else {
            return e_first;
        };
        if ncp <= d_first {
            return e_first;
        }
        if ncp >= d_last {
            return e_last;
        }
        // Interior: the upper bound lands in [1, n-1] because ncp is
        // strictly between the endpoints; the fallbacks are unreachable
        // (and also absorb NaN, which the index sends to bound 0 exactly
        // like `partition_point`).
        let idx = self.ncp_index.upper_bound(&self.ncps, ncp);
        let i0 = idx.wrapping_sub(1);
        let (Some(&x0), Some(&x1)) = (self.ncps.get(i0), self.ncps.get(idx)) else {
            return e_last;
        };
        let (Some(&y0), Some(&y1)) = (self.errors.get(i0), self.errors.get(idx)) else {
            return e_last;
        };
        y0 + (y1 - y0) * (ncp - x0) / (x1 - x0)
    }
}

impl ErrorTransform for EmpiricalTransform {
    fn expected_error(&self, ncp: f64) -> f64 {
        self.interp(ncp)
    }

    fn ncp_for_error(&self, err: f64) -> Option<f64> {
        let (&e_first, &e_last) = (self.errors.first()?, self.errors.last()?);
        if !err.is_finite() || err < e_first - 1e-12 || err > e_last + 1e-12 {
            return None;
        }
        // Find the first segment whose upper endpoint reaches err (the
        // lower bound: first error ≥ err, exactly as the scan computed).
        let idx = self.err_index.lower_bound(&self.errors, err);
        if idx == 0 {
            return self.ncps.first().copied();
        }
        // idx ≥ 1 here, and the clamped upper index stays in bounds, so the
        // `?`s below are unreachable for the paired-by-construction vectors.
        let hi = idx.min(self.ncps.len().saturating_sub(1));
        let (&x0, &x1) = (self.ncps.get(idx - 1)?, self.ncps.get(hi)?);
        let (&y0, &y1) = (self.errors.get(idx - 1)?, self.errors.get(hi)?);
        if (y1 - y0).abs() < 1e-15 {
            // Flat segment (pooled by PAVA): every δ in it attains err;
            // return the cheapest-noise end (smaller δ ⇒ pricier model, so
            // the *largest* δ is the buyer-optimal choice).
            return Some(x1);
        }
        Some(x0 + (x1 - x0) * (err - y0) / (y1 - y0))
    }

    fn name(&self) -> String {
        format!("empirical ({})", self.error_kind.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::GaussianMechanism;
    use mbp_data::synth;
    use mbp_ml::train::ridge_closed_form;
    use mbp_randx::seeded_rng;

    #[test]
    fn identity_transform_roundtrips() {
        let t = SquareLossTransform;
        assert_eq!(t.expected_error(3.5), 3.5);
        assert_eq!(t.ncp_for_error(3.5), Some(3.5));
        assert_eq!(t.ncp_for_error(-1.0), None);
    }

    #[test]
    fn linreg_transform_matches_monte_carlo() {
        let mut rng = seeded_rng(91);
        let ds = synth::simulated1(2000, 6, 0.5, &mut rng);
        let h = ridge_closed_form(&ds, 0.0).unwrap();
        let t = LinRegSquareTransform::new(&ds, &h);
        // Monte-Carlo estimate at δ = 2.
        let mech = GaussianMechanism;
        let mut acc = 0.0;
        let reps = 4000;
        for _ in 0..reps {
            let released = mech.perturb(&h, 2.0, &mut rng);
            acc += TestError::SquareLoss.evaluate(&released, &ds);
        }
        let mc = acc / reps as f64;
        let analytic = t.expected_error(2.0);
        assert!(
            (mc - analytic).abs() < 0.05 * analytic,
            "MC {mc} vs analytic {analytic}"
        );
        // Inverse really inverts.
        let delta = t.ncp_for_error(analytic).unwrap();
        assert!((delta - 2.0).abs() < 1e-9);
        // Below the floor is unachievable.
        assert_eq!(t.ncp_for_error(t.base() * 0.5), None);
    }

    #[test]
    fn empirical_transform_monotone_and_invertible() {
        let mut rng = seeded_rng(92);
        let ds = synth::simulated2(800, 5, 0.9, &mut rng);
        let h = mbp_ml::train::newton_logistic(
            &mbp_ml::LogisticLoss::ridge(0.05),
            &ds,
            mbp_ml::train::TrainConfig::default(),
        )
        .weights;
        let grid: Vec<f64> = (1..=10).map(|i| i as f64 * 0.4).collect();
        let t = EmpiricalTransform::estimate(
            &GaussianMechanism,
            &h,
            &ds,
            TestError::LogisticLoss,
            &grid,
            300,
            123,
        );
        // Monotone non-decreasing by construction.
        let errs: Vec<f64> = t.curve().map(|(_, e)| e).collect();
        for w in errs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Errors grow substantially over the grid.
        assert!(errs[errs.len() - 1] > errs[0] * 1.2, "{errs:?}");
        // Round-trip through the inverse at an interior error level.
        let target = (errs[0] + errs[errs.len() - 1]) / 2.0;
        let delta = t.ncp_for_error(target).unwrap();
        let back = t.expected_error(delta);
        assert!((back - target).abs() < 1e-9, "{back} vs {target}");
        // Out-of-range errors are rejected.
        assert_eq!(t.ncp_for_error(errs[0] - 0.1), None);
        assert_eq!(t.ncp_for_error(errs[errs.len() - 1] + 10.0), None);
    }

    #[test]
    fn empirical_zero_one_error_is_monotone() {
        let mut rng = seeded_rng(93);
        let ds = synth::simulated2(600, 4, 0.95, &mut rng);
        let h = mbp_ml::train::newton_logistic(
            &mbp_ml::LogisticLoss::ridge(0.05),
            &ds,
            mbp_ml::train::TrainConfig::default(),
        )
        .weights;
        let grid: Vec<f64> = (1..=8).map(|i| i as f64 * 0.5).collect();
        let t = EmpiricalTransform::estimate(
            &GaussianMechanism,
            &h,
            &ds,
            TestError::ZeroOne,
            &grid,
            400,
            321,
        );
        let errs: Vec<f64> = t.curve().map(|(_, e)| e).collect();
        // The paper's empirical finding (Figure 6 bottom row): even the
        // non-convex 0/1 error decreases as noise shrinks.
        assert!(errs[errs.len() - 1] >= errs[0], "{errs:?}");
    }

    #[test]
    fn delta_method_matches_linreg_analytic_exactly() {
        let mut rng = seeded_rng(94);
        let ds = synth::simulated1(800, 5, 0.4, &mut rng);
        let h = ridge_closed_form(&ds, 0.0).unwrap();
        let exact = LinRegSquareTransform::new(&ds, &h);
        let delta = DeltaMethodTransform::for_linear_regression(&ds, &h);
        assert!((exact.base() - delta.base()).abs() < 1e-12);
        let rel = (exact.slope() - delta.slope()).abs() / exact.slope();
        assert!(rel < 1e-12, "slope relative diff {rel}");
        let d1 = exact.ncp_for_error(exact.expected_error(3.0)).unwrap();
        let d2 = delta.ncp_for_error(delta.expected_error(3.0)).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn delta_method_approximates_logistic_monte_carlo_for_small_ncp() {
        let mut rng = seeded_rng(95);
        let ds = synth::simulated2(1500, 5, 0.9, &mut rng);
        let h = mbp_ml::train::newton_logistic(
            &mbp_ml::LogisticLoss::ridge(1e-3),
            &ds,
            mbp_ml::train::TrainConfig::default(),
        )
        .weights;
        let delta = DeltaMethodTransform::for_logistic(&ds, &h);
        // Small δ: the quadratic approximation should track Monte Carlo.
        let ncp = 0.1 * h.norm2_squared();
        let mech = GaussianMechanism;
        let reps = 3000;
        let mut acc = 0.0;
        for _ in 0..reps {
            let released = mech.perturb(&h, ncp, &mut rng);
            acc += TestError::LogisticLoss.evaluate(&released, &ds);
        }
        let mc = acc / reps as f64;
        let analytic = delta.expected_error(ncp);
        let excess_mc = mc - delta.base();
        let excess_an = analytic - delta.base();
        assert!(
            (excess_mc - excess_an).abs() < 0.35 * excess_mc.max(1e-9),
            "MC excess {excess_mc} vs delta-method {excess_an}"
        );
    }

    #[test]
    fn delta_method_rejects_sub_floor_errors() {
        let t = DeltaMethodTransform::new(0.5, 2.0, 4);
        assert_eq!(t.ncp_for_error(0.4), None);
        let d = t.ncp_for_error(1.0).unwrap();
        assert!((t.expected_error(d) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn empirical_rejects_unsorted_grid() {
        let h = Vector::zeros(2);
        let ds = mbp_data::Dataset::new(mbp_linalg::Matrix::zeros(1, 2), Vector::zeros(1));
        EmpiricalTransform::estimate(
            &GaussianMechanism,
            &h,
            &ds,
            TestError::SquareLoss,
            &[2.0, 1.0],
            10,
            0,
        );
    }
}
