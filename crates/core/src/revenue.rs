//! Revenue optimization (Section 5 of the paper).
//!
//! Given `n` grid points `a₁ < … < a_n` on the inverse-NCP axis, the seller
//! picks prices `z_j = p̄(a_j)` maximizing an objective subject to the
//! pricing function being arbitrage-free and non-negative — problem (2).
//! That problem is coNP-hard (Theorem 7), so the paper relaxes
//! subadditivity to "`z_j/a_j` non-increasing" — problem (4) — losing at
//! most a factor 2 of revenue (Proposition 3) while every feasible point
//! stays arbitrage-free (Lemma 8).
//!
//! This module implements the full toolbox:
//!
//! * [`solve_bv_dp`] — the `O(n²)` dynamic program of Theorem 10 for the
//!   buyer-valuation objective `T_bv` on the relaxed problem (4);
//! * [`solve_bv_exact`] — exact optimum of the *original* problem (2) via
//!   the branch-and-bound solver (the paper's MILP baseline);
//! * [`solve_pi_l2`] / [`solve_pi_l1`] — price interpolation under `T²_pi`
//!   (Dykstra projection QP) and `T∞_pi` (simplex LP);
//! * [`Baseline`] — the four naive pricing schemes (`Lin`, `MaxC`, `MedC`,
//!   `OptC`) compared in Figures 7–10;
//! * [`revenue`] / [`affordability`] — evaluation of any pricing curve
//!   against a buyer population.

use crate::pricing::PricingFunction;
use mbp_optim::exact::{maximize_revenue_exact, quantize_grid, BuyerPoint as ExactPoint};
use mbp_optim::isotonic::{is_relaxed_feasible, project_relaxed_cone};
use mbp_optim::simplex::{Cmp, LinearProgram, LpStatus};

/// A buyer-population point: grid coordinate `a` (inverse NCP), valuation
/// `v`, and demand mass `b` (Section 5, "Revenue Maximization from Buyer
/// Valuations").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuyerPoint {
    /// Inverse-NCP grid coordinate `a_j > 0`.
    pub a: f64,
    /// Valuation `v_j ≥ 0`: this buyer purchases iff the price ≤ `v_j`.
    pub valuation: f64,
    /// Demand weight `b_j ≥ 0`.
    pub demand: f64,
}

impl BuyerPoint {
    /// Creates a buyer point, validating ranges.
    ///
    /// # Panics
    /// Panics for non-positive `a` or negative/non-finite `v`, `b`.
    pub fn new(a: f64, valuation: f64, demand: f64) -> Self {
        assert!(a > 0.0 && a.is_finite(), "grid point must be positive");
        assert!(
            valuation >= 0.0 && valuation.is_finite(),
            "valuation must be >= 0"
        );
        assert!(demand >= 0.0 && demand.is_finite(), "demand must be >= 0");
        BuyerPoint {
            a,
            valuation,
            demand,
        }
    }
}

/// A price-interpolation target: the seller wants `p̄(a) ≈ target`
/// (Section 5, "Price Interpolation").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricePoint {
    /// Inverse-NCP grid coordinate `a > 0`.
    pub a: f64,
    /// Desired price `P ≥ 0` at `a`.
    pub target: f64,
}

impl PricePoint {
    /// Creates a price point, validating ranges.
    ///
    /// # Panics
    /// Panics for non-positive `a` or negative/non-finite `target`.
    pub fn new(a: f64, target: f64) -> Self {
        assert!(a > 0.0 && a.is_finite(), "grid point must be positive");
        assert!(
            target >= 0.0 && target.is_finite(),
            "target price must be >= 0"
        );
        PricePoint { a, target }
    }
}

/// Result of a revenue-optimization solve.
#[derive(Debug, Clone)]
pub struct RevenueSolution {
    /// The optimized pricing function (grid = the input points).
    pub pricing: PricingFunction,
    /// Objective value achieved (revenue for `T_bv`; negated loss for the
    /// interpolation objectives).
    pub objective: f64,
}

fn check_grid(a: &[f64]) {
    assert!(!a.is_empty(), "need at least one grid point");
    assert!(
        a.windows(2).all(|w| w[0] < w[1]) && a[0] > 0.0,
        "grid must be positive and strictly ascending"
    );
}

// ---------------------------------------------------------------------------
// Theorem 10: O(n²) dynamic program for T_bv on the relaxed problem (4).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    /// Case of Lemma 12: price pinned to the ratio cap, `z_k = Δ·a_k`.
    RatioCap,
    /// Lemma 13 first option: `z_k = v_k`, tightening Δ to `v_k/a_k`.
    TakeValuation,
    /// Lemma 13 second option: buyer `k` priced out
    /// (`z_k = z_{k+1}·a_k/a_{k+1}`, contributing no revenue).
    SkipBuyer,
}

/// Solves `max Σ b_j z_j·1[z_j ≤ v_j]` over the relaxed constraint set of
/// problem (4) with the exact `O(n²)` dynamic program of Theorem 10.
///
/// Requires valuations non-decreasing in `a` (the paper's standing
/// assumption: buyers value accuracy monotonically). The returned prices
/// are feasible for (4) — hence arbitrage-free by Lemma 8 — and optimal
/// among all such price vectors.
///
/// ```
/// use mbp_core::revenue::{solve_bv_dp, BuyerPoint};
///
/// // The paper's Figure 5 instance.
/// let buyers = vec![
///     BuyerPoint::new(1.0, 100.0, 0.25),
///     BuyerPoint::new(2.0, 150.0, 0.25),
///     BuyerPoint::new(3.0, 280.0, 0.25),
///     BuyerPoint::new(4.0, 350.0, 0.25),
/// ];
/// let sol = solve_bv_dp(&buyers);
/// assert_eq!(sol.pricing.prices(), &[100.0, 150.0, 225.0, 300.0]);
/// assert!((sol.objective - 193.75).abs() < 1e-9);
/// ```
///
/// # Panics
/// Panics when the grid is invalid or valuations are not non-decreasing.
pub fn solve_bv_dp(points: &[BuyerPoint]) -> RevenueSolution {
    let bonus = vec![0.0; points.len()];
    dp_weighted(points, &bonus)
}

/// Revenue–fairness trade-off (flagged as future work in the paper's
/// Section 7): solves `max Σ (b_j z_j + λ b_j)·1[z_j ≤ v_j]` over the
/// relaxed set — every *served* unit of demand earns an extra scalarization
/// bonus `λ`, so larger `λ` trades revenue for affordability.
///
/// The Theorem 10 recurrences remain exact under a per-served-buyer bonus:
/// every exchange argument in Lemmas 11–13 compares solutions that serve
/// the same buyer at different prices (the bonus cancels) or strictly more
/// buyers at no revenue loss (the bonus only reinforces the choice).
///
/// The reported `objective` is the *revenue* of the resulting prices (the
/// bonus is a steering term, not money); use
/// [`affordability`] to read off the fairness side of the trade-off.
///
/// # Panics
/// Panics when the grid is invalid, valuations are not non-decreasing, or
/// `lambda` is negative/non-finite.
pub fn solve_bv_dp_fair(points: &[BuyerPoint], lambda: f64) -> RevenueSolution {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "fairness weight must be finite and >= 0, got {lambda}"
    );
    let bonus: Vec<f64> = points.iter().map(|p| lambda * p.demand).collect();
    dp_weighted(points, &bonus)
}

/// Shared Theorem 10 DP with a per-served-buyer reward of
/// `b_k·z_k + bonus_k` (plain revenue maximization uses `bonus = 0`).
fn dp_weighted(points: &[BuyerPoint], bonus: &[f64]) -> RevenueSolution {
    let _span = mbp_obs::span("mbp.optim.revenue");
    let n = points.len();
    let a: Vec<f64> = points.iter().map(|p| p.a).collect();
    check_grid(&a);
    let v: Vec<f64> = points.iter().map(|p| p.valuation).collect();
    let b: Vec<f64> = points.iter().map(|p| p.demand).collect();
    assert!(
        v.windows(2).all(|w| w[0] <= w[1]),
        "the Theorem 10 DP requires valuations non-decreasing in a"
    );

    // Δ values: index j < n ⇒ v_j/a_j; index n ⇒ +∞.
    let delta = |di: usize| -> f64 {
        if di == n {
            f64::INFINITY
        } else {
            v[di] / a[di]
        }
    };
    // value[k][di], choice[k][di].
    let mut value = vec![vec![0.0_f64; n + 1]; n];
    let mut choice = vec![vec![Choice::SkipBuyer; n + 1]; n];
    for di in 0..=n {
        let d = delta(di);
        let s = if d.is_finite() {
            f64::min(v[n - 1], d * a[n - 1])
        } else {
            v[n - 1]
        };
        value[n - 1][di] = b[n - 1] * s + bonus[n - 1];
        // Choice at the last point is implicit (min of the two caps); mark
        // it RatioCap when the ratio binds, TakeValuation otherwise.
        choice[n - 1][di] = if d.is_finite() && d * a[n - 1] <= v[n - 1] {
            Choice::RatioCap
        } else {
            Choice::TakeValuation
        };
    }
    for k in (0..n.saturating_sub(1)).rev() {
        for di in 0..=n {
            let d = delta(di);
            if d.is_finite() && a[k] * d <= v[k] {
                // Lemma 12: the ratio cap binds below the valuation.
                value[k][di] = b[k] * d * a[k] + bonus[k] + value[k + 1][di];
                choice[k][di] = Choice::RatioCap;
            } else {
                // Lemma 13: sell at v_k (tighten Δ) or price the buyer out.
                let opt1 = b[k] * v[k] + bonus[k] + value[k + 1][k];
                let opt2 = value[k + 1][di];
                if opt1 >= opt2 {
                    value[k][di] = opt1;
                    choice[k][di] = Choice::TakeValuation;
                } else {
                    value[k][di] = opt2;
                    choice[k][di] = Choice::SkipBuyer;
                }
            }
        }
    }

    // Reconstruction: forward pass records the Δ path and choices; skipped
    // buyers inherit `z_k = z_{k+1}·a_k/a_{k+1}` in a backward pass.
    let mut z = vec![f64::NAN; n];
    let mut pending_skip = Vec::new();
    let mut di = n;
    for k in 0..n {
        match choice[k][di] {
            Choice::RatioCap => {
                z[k] = delta(di) * a[k];
            }
            Choice::TakeValuation => {
                z[k] = v[k];
                if k < n - 1 {
                    di = k;
                }
            }
            Choice::SkipBuyer => {
                pending_skip.push(k);
            }
        }
    }
    for &k in pending_skip.iter().rev() {
        debug_assert!(k + 1 < n, "last point is never skipped");
        z[k] = z[k + 1] * a[k] / a[k + 1];
    }
    // n·(n+1) DP cells evaluated, plus the reconstruction pass.
    mbp_obs::counter_add("mbp.optim.revenue.iterations", (n * (n + 1) + n) as u64);
    mbp_obs::counter_add("mbp.optim.revenue.priced_out", pending_skip.len() as u64);
    debug_assert!(
        is_relaxed_feasible(&z, &a, 1e-7),
        "DP produced an infeasible price vector: {z:?}"
    );
    let objective = revenue_of_prices(&z, points);
    let served_bonus: f64 = z
        .iter()
        .zip(points)
        .zip(bonus)
        .filter(|((&zj, p), _)| zj <= p.valuation + 1e-9)
        .map(|((_, _), &bo)| bo)
        .sum();
    debug_assert!(
        (objective + served_bonus - value[0][n]).abs() < 1e-6 * (1.0 + value[0][n].abs()),
        "reconstruction ({objective} + bonus {served_bonus}) disagrees with DP value ({})",
        value[0][n]
    );
    mbp_obs::gauge_set("mbp.optim.revenue.objective", objective);
    mbp_obs::event(
        mbp_obs::Verbosity::Debug,
        "mbp.optim.revenue",
        "theorem-10 DP solved",
        &[
            ("n", n.to_string()),
            ("objective", format!("{objective:.6}")),
            ("priced_out", pending_skip.len().to_string()),
        ],
    );
    RevenueSolution {
        pricing: PricingFunction::from_points(a, z).expect("DP output is valid"),
        objective,
    }
}

// ---------------------------------------------------------------------------
// Exact solver (the MILP stand-in) on the original problem (2).
// ---------------------------------------------------------------------------

/// Result of the exact solver, including its exponential work counter.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// The optimal arbitrage-free pricing.
    pub pricing: PricingFunction,
    /// Optimal revenue of problem (2).
    pub objective: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes_explored: u64,
}

/// Exactly solves problem (2) with the `T_bv` objective by quantizing the
/// grid with `scale` steps per unit and running branch-and-bound
/// (exponential time — this is the Figures 9/10 "MILP" baseline).
pub fn solve_bv_exact(points: &[BuyerPoint], scale: f64) -> ExactSolution {
    let a: Vec<f64> = points.iter().map(|p| p.a).collect();
    check_grid(&a);
    let qa = quantize_grid(&a, scale);
    assert!(
        qa.windows(2).all(|w| w[0] < w[1]),
        "quantization collapsed grid points; increase scale"
    );
    let exact_points: Vec<ExactPoint> = points
        .iter()
        .zip(&qa)
        .map(|(p, &q)| ExactPoint::new(q, p.valuation, p.demand))
        .collect();
    let sol = maximize_revenue_exact(&exact_points);
    mbp_obs::counter_add("mbp.optim.exact.nodes", sol.nodes_explored);
    ExactSolution {
        pricing: PricingFunction::from_points(a, sol.prices).expect("exact output is valid"),
        objective: sol.revenue,
        nodes_explored: sol.nodes_explored,
    }
}

// ---------------------------------------------------------------------------
// Price interpolation: T²_pi (QP) and T∞_pi (LP).
// ---------------------------------------------------------------------------

/// Solves the `T²_pi` objective — minimize `Σ (z_j − P_j)²` over the
/// relaxed set (4) — as a Euclidean projection (Dykstra + PAVA).
pub fn solve_pi_l2(points: &[PricePoint]) -> RevenueSolution {
    let _span = mbp_obs::span("mbp.optim.revenue");
    let a: Vec<f64> = points.iter().map(|p| p.a).collect();
    check_grid(&a);
    let targets: Vec<f64> = points.iter().map(|p| p.target).collect();
    let proj = project_relaxed_cone(&targets, &a, 1e-10);
    mbp_obs::counter_add("mbp.optim.revenue.iterations", proj.iterations as u64);
    // Targets the projection had to move were infeasible for the relaxed
    // cone as given — each one is a feasibility rejection.
    let moved = proj
        .z
        .iter()
        .zip(&targets)
        .filter(|(z, p)| (**z - **p).abs() > 1e-7 * (1.0 + p.abs()))
        .count();
    mbp_obs::counter_add("mbp.optim.revenue.feasibility_rejections", moved as u64);
    let loss: f64 = proj
        .z
        .iter()
        .zip(&targets)
        .map(|(z, p)| (z - p) * (z - p))
        .sum();
    // Clamp away any residual numerical negativity before constructing.
    let z: Vec<f64> = proj.z.iter().map(|&x| x.max(0.0)).collect();
    RevenueSolution {
        pricing: PricingFunction::from_points(a, z).expect("projection output is valid"),
        objective: -loss,
    }
}

/// Solves the `T∞_pi` objective — minimize `Σ |z_j − P_j|` over the relaxed
/// set (4) — as a linear program (split variables + simplex).
pub fn solve_pi_l1(points: &[PricePoint]) -> RevenueSolution {
    let _span = mbp_obs::span("mbp.optim.revenue");
    let n = points.len();
    let a: Vec<f64> = points.iter().map(|p| p.a).collect();
    check_grid(&a);
    // Variables: z_1..z_n, t_1..t_n; minimize Σ t_j.
    let mut c = vec![0.0; 2 * n];
    for tc in c.iter_mut().skip(n) {
        *tc = 1.0;
    }
    let mut lp = LinearProgram::new(2 * n, c);
    for (j, p) in points.iter().enumerate() {
        // z_j − t_j ≤ P_j  and  −z_j − t_j ≤ −P_j.
        let mut row = vec![0.0; 2 * n];
        row[j] = 1.0;
        row[n + j] = -1.0;
        lp.constrain(row, Cmp::Le, p.target);
        let mut row = vec![0.0; 2 * n];
        row[j] = -1.0;
        row[n + j] = -1.0;
        lp.constrain(row, Cmp::Le, -p.target);
    }
    for j in 0..n.saturating_sub(1) {
        // Monotone: z_j − z_{j+1} ≤ 0.
        let mut row = vec![0.0; 2 * n];
        row[j] = 1.0;
        row[j + 1] = -1.0;
        lp.constrain(row, Cmp::Le, 0.0);
        // Ratio: a_j·z_{j+1} − a_{j+1}·z_j ≤ 0.
        let mut row = vec![0.0; 2 * n];
        row[j + 1] = a[j];
        row[j] = -a[j + 1];
        lp.constrain(row, Cmp::Le, 0.0);
    }
    let sol = lp.minimize();
    mbp_obs::gauge_set("mbp.optim.revenue.objective", -sol.objective);
    assert_eq!(
        sol.status,
        LpStatus::Optimal,
        "T∞ interpolation LP must be feasible and bounded (z = 0 is feasible)"
    );
    let z: Vec<f64> = sol.x[..n].iter().map(|&x| x.max(0.0)).collect();
    RevenueSolution {
        pricing: PricingFunction::from_points(a, z).expect("LP output is valid"),
        objective: -sol.objective,
    }
}

/// Maximizes a *general* separable concave objective over the relaxed set
/// (the setting of Proposition 2) by projected gradient ascent — use this
/// for objectives beyond the built-in `T_bv`/`T²_pi`/`T∞_pi`, e.g.
/// saturating revenue surrogates.
///
/// `start` seeds the ascent (e.g. the targets, or the DP solution).
pub fn solve_separable_concave(
    obj: &impl mbp_optim::projgrad::SeparableConcave,
    grid: &[f64],
    start: &[f64],
) -> RevenueSolution {
    check_grid(grid);
    let sol = mbp_optim::projgrad::maximize_separable_concave(obj, grid, start, 5000, 1e-10);
    mbp_obs::counter_add("mbp.optim.revenue.iterations", sol.iterations as u64);
    mbp_obs::gauge_set("mbp.optim.revenue.objective", sol.objective);
    let z: Vec<f64> = sol.z.iter().map(|&x| x.max(0.0)).collect();
    RevenueSolution {
        pricing: PricingFunction::from_points(grid.to_vec(), z).expect("projected point is valid"),
        objective: sol.objective,
    }
}

// ---------------------------------------------------------------------------
// Naive baselines (Section 6.2).
// ---------------------------------------------------------------------------

/// The four baseline pricing schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Linear interpolation between the smallest and largest valuation
    /// (intercept clamped at 0 to stay subadditive).
    Lin,
    /// A single price equal to the highest valuation.
    MaxC,
    /// A single price affordable by at least half the demand mass.
    MedC,
    /// The revenue-maximizing single price.
    OptC,
}

impl Baseline {
    /// All four baselines in paper order.
    pub const ALL: [Baseline; 4] = [
        Baseline::Lin,
        Baseline::MaxC,
        Baseline::MedC,
        Baseline::OptC,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Lin => "Lin",
            Baseline::MaxC => "MaxC",
            Baseline::MedC => "MedC",
            Baseline::OptC => "OptC",
        }
    }

    /// Builds the baseline pricing function for a buyer population.
    ///
    /// # Panics
    /// Panics on an empty or invalid grid.
    pub fn pricing(&self, points: &[BuyerPoint]) -> PricingFunction {
        let a: Vec<f64> = points.iter().map(|p| p.a).collect();
        check_grid(&a);
        let n = points.len();
        match self {
            Baseline::Lin => {
                if n == 1 {
                    return PricingFunction::from_points(a, vec![points[0].valuation])
                        .expect("valid");
                }
                let (a1, v1) = (points[0].a, points[0].valuation);
                let (an, vn) = (points[n - 1].a, points[n - 1].valuation);
                let m = (vn - v1) / (an - a1);
                let c = v1 - m * a1;
                let z: Vec<f64> = if m >= 0.0 && c >= 0.0 {
                    a.iter().map(|&x| c + m * x).collect()
                } else if vn >= v1 {
                    // Negative intercept (convex value curve): the affine
                    // extension would be superadditive. Use the steepest
                    // subadditive line through the top point instead.
                    a.iter().map(|&x| vn * x / an).collect()
                } else {
                    // Decreasing valuations: fall back to a constant.
                    vec![vn.min(v1); n]
                };
                PricingFunction::from_points(a, z).expect("valid")
            }
            Baseline::MaxC => {
                let top = points.iter().map(|p| p.valuation).fold(0.0_f64, f64::max);
                PricingFunction::from_points(a, vec![top; n]).expect("valid")
            }
            Baseline::MedC => {
                let total: f64 = points.iter().map(|p| p.demand).sum();
                let mut cands: Vec<f64> = points.iter().map(|p| p.valuation).collect();
                cands.sort_by(|x, y| y.total_cmp(x));
                let mut best = points
                    .iter()
                    .map(|p| p.valuation)
                    .fold(f64::INFINITY, f64::min);
                for &p in &cands {
                    let mass: f64 = points
                        .iter()
                        .filter(|pt| pt.valuation >= p)
                        .map(|pt| pt.demand)
                        .sum();
                    if mass >= 0.5 * total {
                        best = p;
                        break;
                    }
                }
                PricingFunction::from_points(a, vec![best; n]).expect("valid")
            }
            Baseline::OptC => {
                let mut best = (0.0, 0.0); // (revenue, price)
                for p in points {
                    let price = p.valuation;
                    let rev: f64 = points
                        .iter()
                        .filter(|pt| pt.valuation >= price)
                        .map(|pt| pt.demand * price)
                        .sum();
                    if rev > best.0 {
                        best = (rev, price);
                    }
                }
                PricingFunction::from_points(a, vec![best.1; n]).expect("valid")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Evaluation.
// ---------------------------------------------------------------------------

fn revenue_of_prices(z: &[f64], points: &[BuyerPoint]) -> f64 {
    z.iter()
        .zip(points)
        .filter(|&(&zj, p)| zj <= p.valuation + 1e-9)
        .map(|(&zj, p)| p.demand * zj)
        .sum()
}

/// Buyer points per parallel chunk when evaluating a pricing function
/// against a population. The chunking (and with it the chunk-order
/// reduction, hence every parallel result's bits) is fixed independently of
/// the go-parallel threshold below.
const EVAL_GRAIN: usize = 2048;

/// Minimum population for the parallel evaluators to pay for their
/// fork/join handoff. Per-point work is one piecewise-linear `price_at`
/// plus a handful of flops — light enough that mid-size populations ran
/// *slower* in parallel (BENCH_parallel measured 0.92×/0.80× at 2/4
/// threads on 150k points under the earlier `n > EVAL_GRAIN` rule), so
/// anything at or below this count runs the sequential code, bit-identical
/// to the serial implementation.
const EVAL_PAR_THRESHOLD: usize = 200_000;

fn eval_parallel(n: usize) -> bool {
    n > EVAL_PAR_THRESHOLD && mbp_par::max_threads() > 1
}

/// The price vector `z_j = p̄(a_j)` for the whole population, evaluated
/// exactly once and shared by [`revenue`], [`affordability`],
/// [`buyer_surplus`], and [`welfare`] so no metric re-queries the curve per
/// point. Large populations evaluate in parallel with index order preserved.
pub fn price_vector(pf: &PricingFunction, points: &[BuyerPoint]) -> Vec<f64> {
    if eval_parallel(points.len()) {
        let _span = mbp_obs::span("mbp.core.revenue.price_vector.par");
        mbp_par::par_map(points.len(), EVAL_GRAIN, |j| pf.price_at(points[j].a))
    } else {
        points.iter().map(|p| pf.price_at(p.a)).collect()
    }
}

/// Revenue of pricing `pf` against the buyer population: each point pays
/// `p̄(a_j)` iff that is at most its valuation.
pub fn revenue(pf: &PricingFunction, points: &[BuyerPoint]) -> f64 {
    revenue_of_prices(&price_vector(pf, points), points)
}

/// Affordability ratio: the fraction of demand mass that can afford its
/// model instance (Section 6.2).
pub fn affordability(pf: &PricingFunction, points: &[BuyerPoint]) -> f64 {
    let total: f64 = points.iter().map(|p| p.demand).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let z = price_vector(pf, points);
    let served: f64 = z
        .iter()
        .zip(points)
        .filter(|&(&zj, p)| zj <= p.valuation + 1e-9)
        .map(|(_, p)| p.demand)
        .sum();
    served / total
}

/// Buyer surplus: `Σ b_j (v_j − p̄(a_j))` over served points — the welfare
/// buyers keep after paying. Together with [`revenue`] it decomposes the
/// realized social welfare; `welfare = revenue + surplus`.
pub fn buyer_surplus(pf: &PricingFunction, points: &[BuyerPoint]) -> f64 {
    let z = price_vector(pf, points);
    z.iter()
        .zip(points)
        .filter(|&(&zj, p)| zj <= p.valuation + 1e-9)
        .map(|(&zj, p)| p.demand * (p.valuation - zj))
        .sum()
}

/// Welfare accounting of a pricing function against a buyer population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketWelfare {
    /// Seller revenue.
    pub revenue: f64,
    /// Buyer surplus.
    pub buyer_surplus: f64,
    /// Affordability ratio.
    pub affordability: f64,
    /// Realized welfare as a fraction of total surplus `Σ b_j v_j`
    /// (1.0 = fully efficient market; in [0, 1]).
    pub efficiency: f64,
}

/// Computes the full welfare decomposition in a single pass over the
/// population: the price vector is evaluated once and revenue, surplus,
/// served mass, and total surplus accumulate together. Large populations
/// reduce fixed chunks in chunk-index order (deterministic at any thread
/// count ≥ 2); small ones keep the serial running sums.
pub fn welfare(pf: &PricingFunction, points: &[BuyerPoint]) -> MarketWelfare {
    let z = price_vector(pf, points);
    // (revenue, buyer surplus, served mass, total demand, total surplus).
    let accumulate = |range: std::ops::Range<usize>| {
        let mut acc = [0.0f64; 5];
        for (p, &zj) in points[range.clone()].iter().zip(&z[range]) {
            acc[3] += p.demand;
            acc[4] += p.demand * p.valuation;
            if zj <= p.valuation + 1e-9 {
                acc[0] += p.demand * zj;
                acc[1] += p.demand * (p.valuation - zj);
                acc[2] += p.demand;
            }
        }
        acc
    };
    let sums = if eval_parallel(points.len()) {
        let _span = mbp_obs::span("mbp.core.revenue.welfare.par");
        mbp_par::par_map_chunks(points.len(), EVAL_GRAIN, accumulate)
            .into_iter()
            .fold([0.0f64; 5], |mut a, c| {
                for (ai, ci) in a.iter_mut().zip(&c) {
                    *ai += ci;
                }
                a
            })
    } else {
        accumulate(0..points.len())
    };
    let [revenue, buyer_surplus, served, total_demand, total_surplus] = sums;
    MarketWelfare {
        revenue,
        buyer_surplus,
        affordability: if total_demand > 0.0 {
            served / total_demand
        } else {
            0.0
        },
        efficiency: if total_surplus > 0.0 {
            (revenue + buyer_surplus) / total_surplus
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure5_points() -> Vec<BuyerPoint> {
        vec![
            BuyerPoint::new(1.0, 100.0, 0.25),
            BuyerPoint::new(2.0, 150.0, 0.25),
            BuyerPoint::new(3.0, 280.0, 0.25),
            BuyerPoint::new(4.0, 350.0, 0.25),
        ]
    }

    #[test]
    fn dp_on_figure5() {
        let sol = solve_bv_dp(&figure5_points());
        // Relaxed optimum: candidate z = (100, 150, 225, 300) from
        // Δ = 75 (=v_2/a_2) after taking v_1, v_2... verify against the
        // exact enumeration below instead of hand numbers:
        let z = sol.pricing.prices();
        assert!(is_relaxed_feasible(z, sol.pricing.grid(), 1e-9));
        // Within a factor 2 of the exact optimum (Proposition 3) and never
        // above it.
        let exact = solve_bv_exact(&figure5_points(), 1.0);
        assert!((exact.objective - 200.0).abs() < 1e-9);
        assert!(sol.objective <= exact.objective + 1e-9);
        assert!(sol.objective >= exact.objective / 2.0 - 1e-9);
        // In this instance the relaxation is nearly tight (paper Figure 5e
        // shows the approx pricing close to optimal).
        assert!(sol.objective >= 0.9 * exact.objective, "{}", sol.objective);
    }

    #[test]
    fn dp_single_point() {
        let sol = solve_bv_dp(&[BuyerPoint::new(2.0, 30.0, 2.0)]);
        assert!((sol.objective - 60.0).abs() < 1e-12);
        assert_eq!(sol.pricing.prices(), &[30.0]);
    }

    #[test]
    fn dp_prices_are_monotone_and_ratio_feasible() {
        let pts = vec![
            BuyerPoint::new(1.0, 10.0, 0.3),
            BuyerPoint::new(2.0, 11.0, 0.1),
            BuyerPoint::new(4.0, 50.0, 0.6),
            BuyerPoint::new(8.0, 55.0, 0.2),
        ];
        let sol = solve_bv_dp(&pts);
        assert!(is_relaxed_feasible(
            sol.pricing.prices(),
            sol.pricing.grid(),
            1e-9
        ));
    }

    /// Exhaustive validation of the DP on small random instances against a
    /// fine grid search over the relaxed feasible set.
    #[test]
    fn dp_matches_brute_force_on_small_instances() {
        let instances: Vec<Vec<BuyerPoint>> = vec![
            vec![
                BuyerPoint::new(1.0, 4.0, 1.0),
                BuyerPoint::new(2.0, 10.0, 1.0),
            ],
            vec![
                BuyerPoint::new(1.0, 2.0, 0.2),
                BuyerPoint::new(2.0, 9.0, 1.5),
                BuyerPoint::new(3.0, 9.5, 0.4),
            ],
            vec![
                BuyerPoint::new(2.0, 6.0, 1.0),
                BuyerPoint::new(3.0, 6.0, 1.0),
                BuyerPoint::new(6.0, 30.0, 0.5),
            ],
        ];
        for pts in instances {
            let sol = solve_bv_dp(&pts);
            let brute = brute_force_relaxed(&pts, 160);
            assert!(
                sol.objective >= brute - 0.15,
                "DP {} < brute force {brute} on {pts:?}",
                sol.objective
            );
        }
    }

    /// Coarse brute force over the relaxed set: price ratios are chosen from
    /// a grid of levels, exploiting that an optimal solution has
    /// z_j = min(v_j, Δ_j a_j) for a non-increasing sequence Δ_j.
    fn brute_force_relaxed(pts: &[BuyerPoint], levels: usize) -> f64 {
        let max_ratio = pts
            .iter()
            .map(|p| p.valuation / p.a)
            .fold(0.0_f64, f64::max);
        let mut best = 0.0_f64;
        // Enumerate non-increasing ratio sequences from the level grid
        // recursively.
        #[allow(clippy::too_many_arguments)]
        fn rec(
            pts: &[BuyerPoint],
            k: usize,
            prev_ratio: f64,
            z_prev: f64,
            acc: f64,
            levels: usize,
            max_ratio: f64,
            best: &mut f64,
        ) {
            if k == pts.len() {
                *best = f64::max(*best, acc);
                return;
            }
            for l in 0..=levels {
                let ratio = max_ratio * l as f64 / levels as f64;
                if ratio > prev_ratio {
                    continue;
                }
                let z = ratio * pts[k].a;
                if z < z_prev - 1e-12 {
                    continue;
                }
                let pay = if z <= pts[k].valuation + 1e-12 {
                    pts[k].demand * z
                } else {
                    0.0
                };
                rec(pts, k + 1, ratio, z, acc + pay, levels, max_ratio, best);
            }
        }
        rec(
            pts,
            0,
            f64::INFINITY,
            0.0,
            0.0,
            levels,
            max_ratio,
            &mut best,
        );
        best
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn dp_rejects_decreasing_valuations() {
        solve_bv_dp(&[
            BuyerPoint::new(1.0, 10.0, 1.0),
            BuyerPoint::new(2.0, 5.0, 1.0),
        ]);
    }

    #[test]
    fn exact_dominates_dp_and_factor2_holds() {
        // Random-ish instances with integer grids.
        let cases = vec![
            vec![
                BuyerPoint::new(1.0, 3.0, 0.5),
                BuyerPoint::new(2.0, 30.0, 1.0),
                BuyerPoint::new(5.0, 31.0, 0.7),
            ],
            vec![
                BuyerPoint::new(2.0, 8.0, 1.0),
                BuyerPoint::new(4.0, 9.0, 0.2),
                BuyerPoint::new(6.0, 28.0, 0.9),
                BuyerPoint::new(8.0, 35.0, 0.4),
            ],
        ];
        for pts in cases {
            let dp = solve_bv_dp(&pts);
            let exact = solve_bv_exact(&pts, 1.0);
            assert!(dp.objective <= exact.objective + 1e-9, "{pts:?}");
            assert!(
                dp.objective >= exact.objective / 2.0 - 1e-9,
                "Proposition 3 violated: {} < {}/2 on {pts:?}",
                dp.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn l2_interpolation_exact_when_feasible() {
        // Targets already in the relaxed cone are reproduced exactly.
        let pts = vec![
            PricePoint::new(1.0, 2.0),
            PricePoint::new(2.0, 3.0),
            PricePoint::new(4.0, 5.0),
        ];
        let sol = solve_pi_l2(&pts);
        for (z, p) in sol.pricing.prices().iter().zip(&pts) {
            assert!((z - p.target).abs() < 1e-7);
        }
        assert!(sol.objective.abs() < 1e-10);
    }

    #[test]
    fn l1_interpolation_exact_when_feasible() {
        let pts = vec![
            PricePoint::new(1.0, 2.0),
            PricePoint::new(2.0, 3.0),
            PricePoint::new(4.0, 5.0),
        ];
        let sol = solve_pi_l1(&pts);
        for (z, p) in sol.pricing.prices().iter().zip(&pts) {
            assert!((z - p.target).abs() < 1e-7);
        }
    }

    #[test]
    fn interpolation_projects_infeasible_targets() {
        // Superadditive targets must be pulled down into the cone.
        let pts = vec![PricePoint::new(1.0, 1.0), PricePoint::new(2.0, 10.0)];
        let l2 = solve_pi_l2(&pts);
        let l1 = solve_pi_l1(&pts);
        for sol in [&l2, &l1] {
            let z = sol.pricing.prices();
            assert!(
                is_relaxed_feasible(z, sol.pricing.grid(), 1e-7),
                "{z:?} infeasible"
            );
            assert!(z[1] <= 2.0 * z[0] + 1e-7);
        }
    }

    #[test]
    fn baselines_shapes() {
        let pts = figure5_points();
        let lin = Baseline::Lin.pricing(&pts);
        // v₁=100 at a=1, v₄=350 at a=4 → slope 83.3, intercept 16.7 ≥ 0.
        assert!((lin.price_at(1.0) - 100.0).abs() < 1e-9);
        assert!((lin.price_at(4.0) - 350.0).abs() < 1e-9);
        let maxc = Baseline::MaxC.pricing(&pts);
        assert_eq!(maxc.price_at(2.0), 350.0);
        let medc = Baseline::MedC.pricing(&pts);
        // Half the mass (0.5 of 1.0) affords at price 280 (two buyers).
        assert_eq!(medc.price_at(2.0), 280.0);
        let optc = Baseline::OptC.pricing(&pts);
        // Candidates: 100×1.0=100, 150×0.75=112.5, 280×0.5=140, 350×0.25=87.5.
        assert_eq!(optc.price_at(2.0), 280.0);
    }

    #[test]
    fn lin_clamps_negative_intercept() {
        // Convex valuations: line through (1, 1) and (4, 40) has intercept
        // 1 − 13·1 < 0; Lin must fall back to the subadditive ray.
        let pts = vec![
            BuyerPoint::new(1.0, 1.0, 1.0),
            BuyerPoint::new(2.0, 5.0, 1.0),
            BuyerPoint::new(4.0, 40.0, 1.0),
        ];
        let lin = Baseline::Lin.pricing(&pts);
        let z = lin.prices();
        assert!(is_relaxed_feasible(z, lin.grid(), 1e-9), "{z:?}");
        assert!((lin.price_at(4.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn revenue_and_affordability_eval() {
        let pts = figure5_points();
        let maxc = Baseline::MaxC.pricing(&pts);
        // Only the top buyer affords 350.
        assert!((revenue(&maxc, &pts) - 87.5).abs() < 1e-9);
        assert!((affordability(&maxc, &pts) - 0.25).abs() < 1e-12);
        let free =
            PricingFunction::from_points(pts.iter().map(|p| p.a).collect(), vec![0.0; 4]).unwrap();
        assert_eq!(revenue(&free, &pts), 0.0);
        assert_eq!(affordability(&free, &pts), 1.0);
    }

    #[test]
    fn welfare_decomposition_adds_up() {
        let pts = figure5_points();
        let dp = solve_bv_dp(&pts);
        let w = welfare(&dp.pricing, &pts);
        assert!((w.revenue - dp.objective).abs() < 1e-9);
        assert!(w.buyer_surplus >= -1e-12);
        let total: f64 = pts.iter().map(|p| p.demand * p.valuation).sum();
        assert!((w.revenue + w.buyer_surplus - w.efficiency * total).abs() < 1e-9);
        assert!(w.efficiency <= 1.0 + 1e-12);
        // The DP serves everyone here, so the market is fully efficient:
        // every unit of unextracted valuation shows up as buyer surplus.
        assert!((w.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn welfare_of_maxc_leaves_no_surplus_for_the_top_buyer() {
        let pts = figure5_points();
        let maxc = Baseline::MaxC.pricing(&pts);
        let w = welfare(&maxc, &pts);
        // Only the top buyer is served, at exactly their valuation.
        assert!((w.buyer_surplus - 0.0).abs() < 1e-9);
        assert!((w.affordability - 0.25).abs() < 1e-12);
        assert!(w.efficiency < 0.5);
    }

    #[test]
    fn fairness_lambda_zero_is_plain_dp() {
        let pts = figure5_points();
        let plain = solve_bv_dp(&pts);
        let fair = solve_bv_dp_fair(&pts, 0.0);
        assert_eq!(plain.pricing.prices(), fair.pricing.prices());
        assert_eq!(plain.objective, fair.objective);
    }

    #[test]
    fn fairness_trades_revenue_for_affordability() {
        // An instance where pure revenue maximization prices out the small
        // buyer: big buyer at a=2 with huge valuation, tiny buyer at a=1.
        let pts = vec![
            BuyerPoint::new(1.0, 2.0, 1.0),
            BuyerPoint::new(2.0, 100.0, 1.0),
        ];
        let plain = solve_bv_dp(&pts);
        // Serving the small buyer caps z2 at 2·2 = 4 → revenue ≤ 6; pricing
        // them out earns 100.
        assert!((plain.objective - 100.0).abs() < 1e-9);
        assert!((affordability(&plain.pricing, &pts) - 0.5).abs() < 1e-12);
        // A large fairness weight flips the decision.
        let fair = solve_bv_dp_fair(&pts, 200.0);
        assert_eq!(affordability(&fair.pricing, &pts), 1.0);
        assert!((fair.objective - 6.0).abs() < 1e-9, "{}", fair.objective);
        // Revenue at λ = 0 is an upper bound for every λ.
        for lambda in [0.5, 5.0, 50.0, 500.0] {
            let f = solve_bv_dp_fair(&pts, lambda);
            assert!(f.objective <= plain.objective + 1e-9);
            assert!(affordability(&f.pricing, &pts) >= affordability(&plain.pricing, &pts) - 1e-12);
        }
    }

    #[test]
    fn fairness_prices_stay_arbitrage_free() {
        let pts = figure5_points();
        for lambda in [0.0, 10.0, 1000.0] {
            let fair = solve_bv_dp_fair(&pts, lambda);
            assert!(is_relaxed_feasible(
                fair.pricing.prices(),
                fair.pricing.grid(),
                1e-9
            ));
        }
    }

    #[test]
    fn separable_concave_solver_matches_l2_interpolation() {
        let pts = vec![
            PricePoint::new(1.0, 5.0),
            PricePoint::new(2.0, 1.0),
            PricePoint::new(3.0, 9.0),
        ];
        let grid: Vec<f64> = pts.iter().map(|p| p.a).collect();
        let targets: Vec<f64> = pts.iter().map(|p| p.target).collect();
        let via_projection = solve_pi_l2(&pts);
        let obj = mbp_optim::projgrad::SquaredInterpolation {
            targets: targets.clone(),
        };
        let via_ascent = solve_separable_concave(&obj, &grid, &targets);
        for (x, y) in via_ascent
            .pricing
            .prices()
            .iter()
            .zip(via_projection.pricing.prices())
        {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn mbp_dominates_baselines_on_figure5() {
        let pts = figure5_points();
        let dp = solve_bv_dp(&pts);
        for b in Baseline::ALL {
            let rb = revenue(&b.pricing(&pts), &pts);
            assert!(
                dp.objective >= rb - 1e-9,
                "{} beat DP: {rb} > {}",
                b.name(),
                dp.objective
            );
        }
    }

    /// A synthetic population; pass `n > EVAL_PAR_THRESHOLD` to exercise
    /// the parallel path.
    fn big_population(n: usize) -> Vec<BuyerPoint> {
        (0..n)
            .map(|j| {
                let a = 1.0 + 9.0 * (j as f64 / n as f64);
                let v = 50.0 + 40.0 * ((j as f64) * 0.37).sin().abs() * a;
                BuyerPoint::new(a, v, 1.0 / n as f64)
            })
            .collect()
    }

    #[test]
    fn parallel_population_eval_is_deterministic_and_consistent() {
        let pts = big_population(EVAL_PAR_THRESHOLD + 20_000);
        let pf = Baseline::Lin.pricing(&pts);
        let w2 = mbp_par::with_threads(2, || welfare(&pf, &pts));
        let w4 = mbp_par::with_threads(4, || welfare(&pf, &pts));
        assert_eq!(w2, w4);
        let w1 = mbp_par::with_threads(1, || welfare(&pf, &pts));
        assert!((w1.revenue - w2.revenue).abs() <= 1e-12 * w1.revenue.abs().max(1.0));
        // The single-pass welfare agrees with the individual metrics.
        for threads in [1, 2, 4] {
            let (w, r, s, aff) = mbp_par::with_threads(threads, || {
                (
                    welfare(&pf, &pts),
                    revenue(&pf, &pts),
                    buyer_surplus(&pf, &pts),
                    affordability(&pf, &pts),
                )
            });
            assert!((w.revenue - r).abs() < 1e-9);
            assert!((w.buyer_surplus - s).abs() < 1e-9);
            assert!((w.affordability - aff).abs() < 1e-9);
        }
    }
}
