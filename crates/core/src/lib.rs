//! # mbp-core — Model-Based Pricing for Machine Learning
//!
//! A from-scratch Rust implementation of the framework of
//! *Chen, Koutris, Kumar — "Towards Model-based Pricing for Machine Learning
//! in a Data Marketplace" (SIGMOD 2019)*.
//!
//! Instead of selling a dataset, the market sells *noisy versions of the
//! optimal ML model* trained on it. The buyer picks an accuracy/price point;
//! the broker perturbs the optimal model with calibrated noise and charges
//! according to the noise level. The pricing function must be
//! **arbitrage-free**: no combination of cheap noisy models may beat the
//! accuracy of a more expensive one (Definition 3/4). For the Gaussian
//! mechanism this holds iff price, as a function of the *inverse* noise
//! control parameter, is monotone and subadditive (Theorems 5–6).
//!
//! Layout:
//!
//! * [`mechanism`] — the Gaussian mechanism `K_G` of Section 4.1 plus the
//!   uniform/Laplace variants of Examples 1–2, all calibrated so that the
//!   model-space square loss satisfies `E[ε_s] = δ` (Lemma 3);
//! * [`error`] — error transforms `δ ↔ E[ε]` (Theorem 4's monotone
//!   bijection and its empirical estimation, Figure 6);
//! * [`pricing`] — piecewise-linear pricing functions over the inverse-NCP
//!   axis (the Proposition 1 construction);
//! * [`lookup`] — the branchless segment-lookup kernel (Eytzinger / grid
//!   layouts) behind the compiled serving tables;
//! * [`arbitrage`] — auditors that verify or *break* pricing functions,
//!   including the model-averaging attack from the proof of Theorem 5;
//! * [`revenue`] — the revenue-optimization toolbox of Section 5: the
//!   `O(n²)` dynamic program (Theorem 10), LP/QP price interpolation,
//!   the four naive baselines, and the exact exponential solver;
//! * [`market`] — the three agents (seller, broker, buyer) and their
//!   interaction protocol (Figures 1–2), with value/demand curve families
//!   used by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrage;
pub mod error;
pub mod lookup;
pub mod market;
pub mod mechanism;
pub mod pricing;
pub mod revenue;

pub use lookup::SegmentIndex;
pub use mechanism::{
    GaussianMechanism, LaplaceMechanism, NoiseMechanism, UniformAdditiveMechanism,
    UniformMultiplicativeMechanism,
};
pub use pricing::{
    BatchScratch, ErrorPricedTable, ErrorPricedView, PhiMemo, PricingFunction, PricingTable,
};
