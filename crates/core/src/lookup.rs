//! Branchless sorted-array lookup for the quote-serving fast path.
//!
//! Every hot quote ends in "find the segment containing `x`" over a small
//! sorted array (pricing knots, knot prices, empirical-transform NCPs).
//! `slice::partition_point` answers that with a branchy binary search whose
//! comparison outcome steers an unpredictable branch each step — on dense
//! mixed query streams the mispredictions alone cost more than the whole
//! piecewise scan. [`SegmentIndex`] replaces it with one of two branchless
//! layouts, chosen once when the table is compiled:
//!
//! * **Grid** — when the keys are near-uniform (within `1e-9·h` of the
//!   lattice `x0 + i·h`), the segment is a multiply + truncate plus two
//!   arithmetic ±1 fix-ups: `O(1)`, no search at all.
//! * **Eytzinger** — otherwise the keys are copied into BFS (breadth-first)
//!   order, so the descent `k ← 2k + (key ≤ x)` touches one cache line per
//!   level, steers no data-dependent branch (the compare feeds an index,
//!   not a jump), and a precomputed rank map converts the final node back
//!   to the sorted position.
//!
//! Both layouts answer **exactly** — the same index `partition_point`
//! returns, for every input including duplicate-adjacent keys, denormal
//! gaps, single keys, `NaN`, and infinities. Exactness (not 1e-12
//! closeness) is what lets the compiled pricing table reproduce the
//! reference scan bit-for-bit; debug builds cross-check every lookup
//! against `partition_point` to keep it that way.

/// Relative lattice tolerance under which a key set counts as uniform:
/// each key may deviate from `x0 + i·h` by at most this fraction of the
/// stride `h`. The slack keeps the provisional cell within one of the true
/// segment, which the ±1 fix-ups then resolve exactly.
const GRID_UNIFORM_TOL: f64 = 1e-9;

/// Lookup layout selected when the index is built.
#[derive(Debug, Clone)]
enum Layout {
    /// Near-uniform keys: provisional cell `⌊(x − x0)·inv_h⌋` plus ±1
    /// arithmetic fix-ups against the caller's key slice.
    Grid {
        /// First key (lattice origin).
        x0: f64,
        /// Reciprocal stride `1/h`.
        inv_h: f64,
    },
    /// General case: keys permuted into BFS order (1-based; slot 0 is
    /// padding) with `rank[k]` mapping a tree node back to its sorted
    /// index and `rank[0]` holding the past-the-end answer `n`.
    Eytzinger {
        /// BFS-ordered copy of the keys, length `n + 1`.
        keys: Vec<f64>,
        /// Node → sorted-position map, length `n + 1`, `rank[0] = n`.
        rank: Vec<u32>,
    },
}

/// A compiled lookup structure over one sorted `f64` slice.
///
/// Built once (at pricing-table compile time), queried on every quote.
/// Callers pass the *same sorted slice the index was built from* to each
/// query — the grid layout uses it for its fix-ups, and keeping a single
/// canonical copy avoids duplicating the knot array.
///
/// ```
/// use mbp_core::lookup::SegmentIndex;
///
/// let knots = [1.0, 2.0, 4.0, 8.0];
/// let idx = SegmentIndex::new(&knots);
/// assert_eq!(idx.upper_bound(&knots, 3.0), knots.partition_point(|&k| k <= 3.0));
/// assert_eq!(idx.lower_bound(&knots, 4.0), knots.partition_point(|&k| k < 4.0));
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    layout: Layout,
}

impl SegmentIndex {
    /// Builds the index for `keys`, picking the grid layout when the keys
    /// are near-uniform and the Eytzinger layout otherwise.
    ///
    /// `keys` must be sorted ascending (ties allowed) — the same
    /// precondition `partition_point` carries. Up to `u32::MAX − 1` keys
    /// are supported (the rank map is `u32`).
    pub fn new(keys: &[f64]) -> Self {
        let layout = match try_grid(keys) {
            Some(grid) => grid,
            None => eytzinger(keys),
        };
        SegmentIndex { layout }
    }

    /// `true` when the fixed-stride grid layout was selected.
    pub fn is_grid(&self) -> bool {
        matches!(self.layout, Layout::Grid { .. })
    }

    /// First index whose key is `> x` — exactly
    /// `keys.partition_point(|&k| k <= x)`.
    #[inline]
    pub fn upper_bound(&self, keys: &[f64], x: f64) -> usize {
        let idx = match &self.layout {
            Layout::Grid { x0, inv_h } => grid_bound(keys, *x0, *inv_h, x, true),
            Layout::Eytzinger { keys: bfs, rank } => eytz_bound(bfs, rank, x, true),
        };
        debug_assert_eq!(
            idx,
            keys.partition_point(|&k| k <= x),
            "upper_bound diverged from partition_point at x={x}"
        );
        idx
    }

    /// First index whose key is `≥ x` — exactly
    /// `keys.partition_point(|&k| k < x)`.
    #[inline]
    pub fn lower_bound(&self, keys: &[f64], x: f64) -> usize {
        let idx = match &self.layout {
            Layout::Grid { x0, inv_h } => grid_bound(keys, *x0, *inv_h, x, false),
            Layout::Eytzinger { keys: bfs, rank } => eytz_bound(bfs, rank, x, false),
        };
        debug_assert_eq!(
            idx,
            keys.partition_point(|&k| k < x),
            "lower_bound diverged from partition_point at x={x}"
        );
        idx
    }
}

/// Grid eligibility: at least two finite, strictly ascending keys, every
/// one within [`GRID_UNIFORM_TOL`]`·h` of the lattice `x0 + i·h`.
fn try_grid(keys: &[f64]) -> Option<Layout> {
    let n = keys.len();
    if n < 2 {
        return None;
    }
    let (&first, &last) = (keys.first()?, keys.last()?);
    if !(first.is_finite() && last.is_finite() && last > first) {
        return None;
    }
    let h = (last - first) / (n - 1) as f64;
    if !(h > 0.0 && h.is_finite()) {
        return None;
    }
    let tol = GRID_UNIFORM_TOL * h;
    let mut prev = f64::NEG_INFINITY;
    for (i, &k) in keys.iter().enumerate() {
        let lattice = first + i as f64 * h;
        if !(k.is_finite() && k > prev && (k - lattice).abs() <= tol) {
            return None;
        }
        prev = k;
    }
    Some(Layout::Grid {
        x0: first,
        inv_h: 1.0 / h,
    })
}

/// Grid lookup: provisional cell by one multiply, then two arithmetic ±1
/// fix-ups (cmov-style select via `usize::from(bool)`, no data-dependent
/// branch). The provisional cell is within one of the true segment by the
/// construction-time uniformity bound, so a single increment candidate and
/// a single boundary test resolve the exact partition point.
#[inline]
fn grid_bound(keys: &[f64], x0: f64, inv_h: f64, x: f64, upper: bool) -> usize {
    let t = (x - x0) * inv_h;
    // `as usize` saturates: negative and NaN land on 0, +∞ on the clamp.
    let i = (t as usize).min(keys.len().saturating_sub(1));
    if upper {
        let i = i + usize::from(keys.get(i + 1).is_some_and(|&k| k <= x));
        i + usize::from(keys.get(i).is_some_and(|&k| k <= x))
    } else {
        let i = i + usize::from(keys.get(i + 1).is_some_and(|&k| k < x));
        i + usize::from(keys.get(i).is_some_and(|&k| k < x))
    }
}

/// Builds the BFS-ordered key copy and its node → sorted-rank map.
fn eytzinger(sorted: &[f64]) -> Layout {
    let n = sorted.len();
    assert!(
        n < u32::MAX as usize,
        "segment index supports fewer than 2^32 keys"
    );
    let mut keys = vec![0.0; n + 1];
    let mut rank = vec![0u32; n + 1];
    if let Some(sentinel) = rank.first_mut() {
        // Descents that fall off the right edge undo to node 0: the
        // past-the-end answer.
        *sentinel = n as u32;
    }
    let mut next = 0usize;
    fill(sorted, &mut keys, &mut rank, 1, &mut next);
    Layout::Eytzinger { keys, rank }
}

/// In-order traversal of the complete tree (nodes `1..=n`, children `2k`
/// and `2k+1`) assigns sorted keys to BFS slots and records each node's
/// sorted position.
fn fill(sorted: &[f64], keys: &mut [f64], rank: &mut [u32], k: usize, next: &mut usize) {
    if k > sorted.len() {
        return;
    }
    fill(sorted, keys, rank, 2 * k, next);
    if let (Some(&v), Some(slot), Some(r)) = (sorted.get(*next), keys.get_mut(k), rank.get_mut(k)) {
        *slot = v;
        *r = *next as u32;
    }
    *next += 1;
    fill(sorted, keys, rank, 2 * k + 1, next);
}

/// Eytzinger descent: each level folds the comparison into the child
/// index (`k ← 2k + (key ≤ x)`), so the only branch is the fixed-depth
/// loop bound. The final node is the first key violating the predicate;
/// undoing the trailing right-turns and reading the rank map yields its
/// sorted position — the exact partition point.
#[inline]
fn eytz_bound(bfs: &[f64], rank: &[u32], x: f64, upper: bool) -> usize {
    let mut k = 1usize;
    if upper {
        while let Some(&key) = bfs.get(k) {
            k = 2 * k + usize::from(key <= x);
        }
    } else {
        while let Some(&key) = bfs.get(k) {
            k = 2 * k + usize::from(key < x);
        }
    }
    k >>= k.trailing_ones() + 1;
    rank.get(k).map_or(0, |&r| r as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_randx::seeded_rng;
    use rand::{Rng, RngCore};

    /// Exhaustive probe battery around a key set: every key, every
    /// midpoint, both tails, ±1 ulp around each key, NaN, and infinities.
    fn probes(keys: &[f64]) -> Vec<f64> {
        let mut xs = vec![
            f64::NAN,
            f64::NEG_INFINITY,
            f64::INFINITY,
            -1.0,
            0.0,
            f64::MIN_POSITIVE,
        ];
        for w in keys.windows(2) {
            xs.push((w[0] + w[1]) * 0.5);
        }
        for &k in keys {
            xs.push(k);
            xs.push(f64::from_bits(k.to_bits().wrapping_add(1)));
            xs.push(f64::from_bits(k.to_bits().wrapping_sub(1)));
            xs.push(k - 1.0);
            xs.push(k + 1.0);
        }
        if let (Some(&lo), Some(&hi)) = (keys.first(), keys.last()) {
            xs.push(lo - 1e30);
            xs.push(hi + 1e30);
        }
        xs
    }

    fn check_exact(keys: &[f64]) {
        let idx = SegmentIndex::new(keys);
        for x in probes(keys) {
            assert_eq!(
                idx.upper_bound(keys, x),
                keys.partition_point(|&k| k <= x),
                "upper_bound(x={x}) on {keys:?} (grid={})",
                idx.is_grid()
            );
            assert_eq!(
                idx.lower_bound(keys, x),
                keys.partition_point(|&k| k < x),
                "lower_bound(x={x}) on {keys:?} (grid={})",
                idx.is_grid()
            );
        }
    }

    #[test]
    fn uniform_keys_select_grid_and_match_partition_point() {
        let keys: Vec<f64> = (0..512).map(|i| 1.0 + i as f64 * 0.25).collect();
        let idx = SegmentIndex::new(&keys);
        assert!(idx.is_grid(), "exactly uniform keys must pick the grid");
        check_exact(&keys);
    }

    #[test]
    fn non_uniform_keys_select_eytzinger_and_match_partition_point() {
        let keys = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let idx = SegmentIndex::new(&keys);
        assert!(!idx.is_grid(), "geometric keys must not pick the grid");
        check_exact(&keys);
    }

    #[test]
    fn single_knot_and_empty() {
        check_exact(&[3.5]);
        check_exact(&[]);
        let idx = SegmentIndex::new(&[]);
        assert_eq!(idx.upper_bound(&[], 1.0), 0);
        assert_eq!(idx.lower_bound(&[], f64::NAN), 0);
    }

    #[test]
    fn duplicate_adjacent_keys_match_partition_point() {
        check_exact(&[5.0, 5.0, 9.0]);
        check_exact(&[1.0, 1.0, 1.0, 1.0]);
        check_exact(&[0.5, 2.0, 2.0, 2.0, 7.0, 7.0]);
    }

    #[test]
    fn denormal_gaps_match_partition_point() {
        let d = f64::MIN_POSITIVE; // smallest normal; gaps below are denormal
        let tiny = f64::from_bits(1); // smallest subnormal
        check_exact(&[0.0, tiny, 2.0 * tiny, d, 1.0]);
        check_exact(&[1.0, 1.0 + f64::EPSILON, 1.0 + 2.0 * f64::EPSILON]);
    }

    #[test]
    fn saturation_band_probes_clamp_exactly() {
        let keys: Vec<f64> = (0..64).map(|i| 1.0 + i as f64 * 0.5).collect();
        let idx = SegmentIndex::new(&keys);
        let last = *keys.last().unwrap();
        for i in 0..200 {
            let x = last + i as f64 * 13.37;
            assert_eq!(idx.upper_bound(&keys, x), keys.len());
        }
        assert_eq!(idx.upper_bound(&keys, f64::INFINITY), keys.len());
        assert_eq!(idx.upper_bound(&keys, f64::NAN), 0);
    }

    /// Randomized adversarial spacings: uniform-with-jitter (some runs
    /// land inside the grid tolerance, some out), geometric, clustered
    /// duplicates, and mixed-magnitude keys, each probed densely against
    /// `partition_point`.
    #[test]
    fn random_adversarial_spacings_match_partition_point() {
        let mut rng = seeded_rng(0x5e61005);
        for trial in 0..200 {
            let n = 1 + (rng.next_u64() % 96) as usize;
            let style = trial % 4;
            let mut keys = Vec::with_capacity(n);
            let mut cur = rng.gen_range(-100.0..100.0);
            for _ in 0..n {
                let step = match style {
                    0 => 0.25 + 1e-12 * rng.gen_range(-1.0..1.0), // near-uniform
                    1 => rng.gen_range(0.0..2.0),                 // random gaps (ties allowed)
                    2 => {
                        // clustered: long runs of exact duplicates
                        if rng.next_u64().is_multiple_of(3) {
                            rng.gen_range(0.5..2.0)
                        } else {
                            0.0
                        }
                    }
                    _ => rng.gen_range(0.0..1.0) * 10f64.powi((rng.next_u64() % 9) as i32 - 4),
                };
                cur += step;
                keys.push(cur);
            }
            check_exact(&keys);
        }
    }

    /// The grid tolerance is a real gate: jitter beyond `1e-9·h` must fall
    /// back to Eytzinger (where exactness needs no uniformity), jitter
    /// within it may keep the grid, and both layouts stay exact either way.
    #[test]
    fn grid_eligibility_respects_tolerance() {
        let uniform: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(SegmentIndex::new(&uniform).is_grid());
        let mut jittered = uniform.clone();
        jittered[50] += 0.1; // 0.1·h — far outside tolerance
        assert!(!SegmentIndex::new(&jittered).is_grid());
        check_exact(&jittered);
    }
}
