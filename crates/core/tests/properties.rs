//! Property-based tests for the pricing core: Proposition 1 evaluation,
//! budget inversion, DP feasibility/optimality structure, and baseline
//! well-behavedness on random instances.

use mbp_core::arbitrage::audit;
use mbp_core::error::{DeltaMethodTransform, ErrorTransform, SquareLossTransform};
use mbp_core::pricing::{ErrorPricedView, PhiMemo, PricingFunction};
use mbp_core::revenue::{affordability, revenue, solve_bv_dp, Baseline, BuyerPoint};
use mbp_core::SegmentIndex;
use mbp_optim::isotonic::is_relaxed_feasible;
use proptest::prelude::*;

/// Random ascending positive grid + arbitrary non-negative prices.
fn grid_and_prices() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((0.3..3.0f64, 0.0..50.0f64), 1..12).prop_map(|raw| {
        let mut a = 0.0;
        let mut grid = Vec::with_capacity(raw.len());
        let mut prices = Vec::with_capacity(raw.len());
        for (gap, p) in raw {
            a += gap;
            grid.push(a);
            prices.push(p);
        }
        (grid, prices)
    })
}

/// Adversarial strictly-ascending key sets for the segment index: exact
/// uniform lattices (compiled to the grid layout), uniform lattices with
/// sub- and super-tolerance jitter (straddling the grid-eligibility
/// boundary), and irregular gaps spanning six orders of magnitude
/// (compiled to Eytzinger).
fn adversarial_keys() -> impl Strategy<Value = Vec<f64>> {
    (
        0u32..3,
        prop::collection::vec((0u32..7, 1.0..10.0f64), 1..48),
        (1.0..100.0f64, 0.01..10.0f64),
        -12i32..-6,
    )
        .prop_map(|(mode, raw, (x0, h), mag)| match mode {
            // Irregular gaps spanning six orders of magnitude → Eytzinger.
            0 => {
                let mut a = 0.0;
                raw.iter()
                    .map(|&(g, m)| {
                        a += m * 10f64.powi(g as i32 - 3);
                        a
                    })
                    .collect()
            }
            // Exact uniform lattice → grid layout.
            1 => (0..raw.len()).map(|i| x0 + i as f64 * h).collect(),
            // Uniform lattice with alternating jitter around the
            // grid-eligibility tolerance (1e-9·h): sub-tolerance stays on
            // the grid, super-tolerance falls back to Eytzinger.
            _ => {
                let eps = h * 10f64.powi(mag);
                (0..raw.len())
                    .map(|i| x0 + i as f64 * h + if i % 2 == 0 { eps } else { -eps })
                    .collect()
            }
        })
}

/// Random monotone-valuation buyer instance.
fn buyer_instance() -> impl Strategy<Value = Vec<BuyerPoint>> {
    prop::collection::vec((0.5..4.0f64, 0.0..25.0f64, 0.05..2.0f64), 1..10).prop_map(|raw| {
        let mut a = 0.0;
        let mut v = 0.0;
        raw.into_iter()
            .map(|(gap, dv, b)| {
                a += gap;
                v += dv;
                BuyerPoint::new(a, v, b)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1 evaluation: the curve interpolates its grid points
    /// exactly, is continuous at the knots, rides the origin ray below the
    /// grid, and saturates above it.
    #[test]
    fn pricing_evaluation_interpolates((grid, prices) in grid_and_prices()) {
        let pf = PricingFunction::from_points(grid.clone(), prices.clone()).unwrap();
        for (x, p) in grid.iter().zip(&prices) {
            prop_assert!((pf.price_at(*x) - p).abs() < 1e-9);
            // Knot continuity from both sides.
            prop_assert!((pf.price_at(x * (1.0 + 1e-9)) - p).abs() < 1e-5);
            prop_assert!((pf.price_at(x * (1.0 - 1e-9)) - p).abs() < 1e-5);
        }
        prop_assert_eq!(pf.price_at(0.0), 0.0);
        let tail = grid.last().unwrap() * 10.0;
        prop_assert!((pf.price_at(tail) - prices.last().unwrap()).abs() < 1e-12);
        // Origin ray is proportional (only meaningful with >1 knot; the
        // single-knot constant curve is flat by construction).
        if grid.len() > 1 {
            let x0 = grid[0] * 0.5;
            prop_assert!((pf.price_at(x0) - prices[0] * 0.5).abs() < 1e-9);
        }
    }

    /// The compiled segment index is an exact drop-in for the branchy
    /// binary search: on every key layout — grid-eligible lattices,
    /// boundary-jittered lattices, and wildly irregular gaps — both
    /// `upper_bound` and `lower_bound` return bit-for-bit the same index
    /// as `slice::partition_point`, including on knot hits, one-ULP
    /// neighbors of knots, out-of-range probes, infinities, and NaN.
    #[test]
    fn segment_index_matches_partition_point(
        keys in adversarial_keys(),
        probes in prop::collection::vec(0.0..1.0f64, 0..24),
    ) {
        let idx = SegmentIndex::new(&keys);
        let lo = keys[0];
        let hi = *keys.last().unwrap();
        let span = (hi - lo).max(1.0);
        let mut xs = vec![
            lo - 0.5 * span,
            hi + 0.5 * span,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NAN,
            0.0,
        ];
        for &k in &keys {
            xs.extend([k, k.next_down(), k.next_up()]);
        }
        for t in probes {
            xs.push(lo - 0.1 * span + 1.2 * span * t);
        }
        for x in xs {
            prop_assert_eq!(
                idx.upper_bound(&keys, x),
                keys.partition_point(|&k| k <= x),
                "upper_bound diverged at x={} (grid: {})", x, idx.is_grid()
            );
            prop_assert_eq!(
                idx.lower_bound(&keys, x),
                keys.partition_point(|&k| k < x),
                "lower_bound diverged at x={} (grid: {})", x, idx.is_grid()
            );
        }
    }

    /// Budget inversion round-trips on monotone curves: buying at the
    /// returned precision costs at most the budget, and any meaningfully
    /// higher precision costs strictly more.
    #[test]
    fn budget_inversion_is_tight((grid, mut prices) in grid_and_prices(), budget in 0.5..60.0f64) {
        // Make the curve strictly increasing so inversion is unambiguous.
        prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, p) in prices.iter_mut().enumerate() {
            *p += 0.25 * (i as f64 + 1.0);
        }
        let pf = PricingFunction::from_points(grid.clone(), prices).unwrap();
        match pf.max_precision_for_budget(budget) {
            None => prop_assert!(budget < pf.price_at(grid[0] * 1e-6) + 1e-9 || pf.prices()[0] > budget),
            Some(x) if x.is_infinite() => prop_assert!(budget >= pf.max_price() - 1e-9),
            Some(x) => {
                prop_assert!(pf.price_at(x) <= budget + 1e-6);
                let probe = (x * 1.01).min(grid.last().unwrap() * 2.0);
                if probe > x && probe <= *grid.last().unwrap() {
                    prop_assert!(pf.price_at(probe) >= budget - 1e-6);
                }
            }
        }
    }

    /// The DP always emits relaxed-feasible (hence arbitrage-free) prices
    /// that never exceed valuations at served points, and its revenue
    /// evaluation is consistent.
    #[test]
    fn dp_output_always_well_behaved(points in buyer_instance()) {
        let sol = solve_bv_dp(&points);
        let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
        prop_assert!(is_relaxed_feasible(sol.pricing.prices(), &grid, 1e-7));
        prop_assert!((sol.objective - revenue(&sol.pricing, &points)).abs() < 1e-9);
        prop_assert!(sol.objective >= -1e-12);
        // Revenue never exceeds total surplus.
        let surplus: f64 = points.iter().map(|p| p.demand * p.valuation).sum();
        prop_assert!(sol.objective <= surplus + 1e-9);
        // Audit it on the instance grid.
        let report = audit(&sol.pricing, &grid, 4, 1e-5);
        prop_assert!(report.is_clean(), "{:?}", report);
    }

    /// The compiled table answers every evaluation form within 1e-12
    /// relative of the piecewise-linear scan on random (not necessarily
    /// monotone) curves: interior points, knots, the origin ray, the
    /// saturated tail, clamped non-positive inputs, NCP pricing, and
    /// budget inversion.
    #[test]
    fn compiled_table_agrees_with_scan(
        (grid, prices) in grid_and_prices(),
        budget in 0.0..80.0f64,
        delta in 0.01..20.0f64,
    ) {
        let pf = PricingFunction::from_points(grid.clone(), prices).unwrap();
        let table = pf.compile();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1.0);
        let x_last = *grid.last().unwrap();
        let mut queries = vec![0.0, -1.0, f64::NAN, grid[0] * 0.5, x_last * 4.0];
        for w in grid.windows(2) {
            queries.push(0.5 * (w[0] + w[1]));
        }
        queries.extend(grid.iter().copied());
        for x in queries {
            prop_assert!(
                close(table.price_at(x), pf.price_at(x)),
                "price_at({x}): {} vs {}", table.price_at(x), pf.price_at(x)
            );
        }
        prop_assert!(close(table.price_for_ncp(delta), pf.price_for_ncp(delta)));
        match (table.max_precision_for_budget(budget), pf.max_precision_for_budget(budget)) {
            (None, None) => {}
            (Some(a), Some(d)) => prop_assert!(
                a == d || close(a, d),
                "budget inversion at {budget}: {a} vs {d}"
            ),
            (a, d) => prop_assert!(false, "budget inversion shape differs: {a:?} vs {d:?}"),
        }
    }

    /// The memoized φ inverse round-trips the error transform and prices
    /// errors exactly like the uncached [`ErrorPricedView`], for both the
    /// affine fast path and the virtual-call fallback.
    #[test]
    fn phi_memo_matches_direct_inversion(
        (grid, mut prices) in grid_and_prices(),
        base in 0.0..5.0f64,
        trace in 0.1..10.0f64,
        delta in 0.0..8.0f64,
    ) {
        prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pf = PricingFunction::from_points(grid, prices).unwrap();
        let table = pf.compile();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1.0);
        let affine = DeltaMethodTransform::new(base, trace, 3);
        let identity = SquareLossTransform;
        let transforms: [&dyn ErrorTransform; 2] = [&affine, &identity];
        for t in transforms {
            let memo = PhiMemo::new(t, &table);
            let view = ErrorPricedView::new(&pf, t);
            // φ round-trip: inverting the forward map recovers δ.
            if let Some(d) = memo.ncp_for_error(t, t.expected_error(delta)) {
                prop_assert!((d - delta).abs() <= 1e-9 * delta.max(1.0));
            }
            // Price-for-error agreement across the whole range, including
            // below-base (unachievable), the saturation band, and the tail.
            for err in [base - 1.0, base, base + 1e-13, t.expected_error(delta),
                        t.expected_error(100.0), f64::INFINITY] {
                match (memo.price_for_error(t, &table, err), view.price_for_error(err)) {
                    (None, None) => {}
                    (Some(a), Some(d)) => prop_assert!(
                        close(a, d),
                        "{}: price_for_error({err}): {a} vs {d}", t.name()
                    ),
                    (a, d) => prop_assert!(
                        false,
                        "{}: price_for_error({err}) shape differs: {a:?} vs {d:?}", t.name()
                    ),
                }
            }
        }
    }

    /// Every baseline yields a well-behaved (monotone + subadditive on the
    /// grid) pricing function with affordability in [0, 1].
    #[test]
    fn baselines_always_well_behaved(points in buyer_instance()) {
        let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
        for b in Baseline::ALL {
            let pf = b.pricing(&points);
            let report = audit(&pf, &grid, 4, 1e-5);
            prop_assert!(report.is_clean(), "{}: {:?}", b.name(), report);
            let a = affordability(&pf, &points);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        }
    }
}
