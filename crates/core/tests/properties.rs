//! Property-based tests for the pricing core: Proposition 1 evaluation,
//! budget inversion, DP feasibility/optimality structure, and baseline
//! well-behavedness on random instances.

use mbp_core::arbitrage::audit;
use mbp_core::pricing::PricingFunction;
use mbp_core::revenue::{affordability, revenue, solve_bv_dp, Baseline, BuyerPoint};
use mbp_optim::isotonic::is_relaxed_feasible;
use proptest::prelude::*;

/// Random ascending positive grid + arbitrary non-negative prices.
fn grid_and_prices() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((0.3..3.0f64, 0.0..50.0f64), 1..12).prop_map(|raw| {
        let mut a = 0.0;
        let mut grid = Vec::with_capacity(raw.len());
        let mut prices = Vec::with_capacity(raw.len());
        for (gap, p) in raw {
            a += gap;
            grid.push(a);
            prices.push(p);
        }
        (grid, prices)
    })
}

/// Random monotone-valuation buyer instance.
fn buyer_instance() -> impl Strategy<Value = Vec<BuyerPoint>> {
    prop::collection::vec((0.5..4.0f64, 0.0..25.0f64, 0.05..2.0f64), 1..10).prop_map(|raw| {
        let mut a = 0.0;
        let mut v = 0.0;
        raw.into_iter()
            .map(|(gap, dv, b)| {
                a += gap;
                v += dv;
                BuyerPoint::new(a, v, b)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1 evaluation: the curve interpolates its grid points
    /// exactly, is continuous at the knots, rides the origin ray below the
    /// grid, and saturates above it.
    #[test]
    fn pricing_evaluation_interpolates((grid, prices) in grid_and_prices()) {
        let pf = PricingFunction::from_points(grid.clone(), prices.clone()).unwrap();
        for (x, p) in grid.iter().zip(&prices) {
            prop_assert!((pf.price_at(*x) - p).abs() < 1e-9);
            // Knot continuity from both sides.
            prop_assert!((pf.price_at(x * (1.0 + 1e-9)) - p).abs() < 1e-5);
            prop_assert!((pf.price_at(x * (1.0 - 1e-9)) - p).abs() < 1e-5);
        }
        prop_assert_eq!(pf.price_at(0.0), 0.0);
        let tail = grid.last().unwrap() * 10.0;
        prop_assert!((pf.price_at(tail) - prices.last().unwrap()).abs() < 1e-12);
        // Origin ray is proportional (only meaningful with >1 knot; the
        // single-knot constant curve is flat by construction).
        if grid.len() > 1 {
            let x0 = grid[0] * 0.5;
            prop_assert!((pf.price_at(x0) - prices[0] * 0.5).abs() < 1e-9);
        }
    }

    /// Budget inversion round-trips on monotone curves: buying at the
    /// returned precision costs at most the budget, and any meaningfully
    /// higher precision costs strictly more.
    #[test]
    fn budget_inversion_is_tight((grid, mut prices) in grid_and_prices(), budget in 0.5..60.0f64) {
        // Make the curve strictly increasing so inversion is unambiguous.
        prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, p) in prices.iter_mut().enumerate() {
            *p += 0.25 * (i as f64 + 1.0);
        }
        let pf = PricingFunction::from_points(grid.clone(), prices).unwrap();
        match pf.max_precision_for_budget(budget) {
            None => prop_assert!(budget < pf.price_at(grid[0] * 1e-6) + 1e-9 || pf.prices()[0] > budget),
            Some(x) if x.is_infinite() => prop_assert!(budget >= pf.max_price() - 1e-9),
            Some(x) => {
                prop_assert!(pf.price_at(x) <= budget + 1e-6);
                let probe = (x * 1.01).min(grid.last().unwrap() * 2.0);
                if probe > x && probe <= *grid.last().unwrap() {
                    prop_assert!(pf.price_at(probe) >= budget - 1e-6);
                }
            }
        }
    }

    /// The DP always emits relaxed-feasible (hence arbitrage-free) prices
    /// that never exceed valuations at served points, and its revenue
    /// evaluation is consistent.
    #[test]
    fn dp_output_always_well_behaved(points in buyer_instance()) {
        let sol = solve_bv_dp(&points);
        let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
        prop_assert!(is_relaxed_feasible(sol.pricing.prices(), &grid, 1e-7));
        prop_assert!((sol.objective - revenue(&sol.pricing, &points)).abs() < 1e-9);
        prop_assert!(sol.objective >= -1e-12);
        // Revenue never exceeds total surplus.
        let surplus: f64 = points.iter().map(|p| p.demand * p.valuation).sum();
        prop_assert!(sol.objective <= surplus + 1e-9);
        // Audit it on the instance grid.
        let report = audit(&sol.pricing, &grid, 4, 1e-5);
        prop_assert!(report.is_clean(), "{:?}", report);
    }

    /// Every baseline yields a well-behaved (monotone + subadditive on the
    /// grid) pricing function with affordability in [0, 1].
    #[test]
    fn baselines_always_well_behaved(points in buyer_instance()) {
        let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
        for b in Baseline::ALL {
            let pf = b.pricing(&points);
            let report = audit(&pf, &grid, 4, 1e-5);
            prop_assert!(report.is_clean(), "{}: {:?}", b.name(), report);
            let a = affordability(&pf, &points);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        }
    }
}
