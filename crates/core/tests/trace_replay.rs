//! End-to-end causal-tracing acceptance tests: a planted slow quote lands
//! in the flight recorder as an exemplar carrying its replay seed, and
//! re-running the request from that seed reproduces both the released
//! model and the canonical span tree; sharded simulation emits identical
//! span trees at every thread count.
//!
//! Obs state is process-global, so every test here serializes on one lock
//! (this integration binary is its own process — the core unit tests can
//! never interleave with it).

use mbp_core::error::SquareLossTransform;
use mbp_core::market::curves::{grid, DemandCurve, DemandShape, ValueCurve, ValueShape};
use mbp_core::market::simulation::{simulate_market_sharded, SimulationConfig};
use mbp_core::market::{Broker, PurchaseRequest, Sale, Seller};
use mbp_core::PricingFunction;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn arm() {
    mbp_obs::reset();
    mbp_obs::enable();
    mbp_obs::set_tracing(true);
}

fn disarm() {
    mbp_obs::set_tracing(false);
    mbp_obs::disable();
    mbp_obs::set_slow_threshold_micros(u64::MAX / 1000);
    mbp_obs::reset();
}

fn pricing() -> PricingFunction {
    let g: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let p: Vec<f64> = g.iter().map(|x| 8.0 * x.sqrt()).collect();
    PricingFunction::from_points(g, p).unwrap()
}

fn listed_broker(seed: u64) -> Broker {
    let mut rng = seeded_rng(seed);
    let data = mbp_data::synth::simulated1(400, 4, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing(),
            Box::new(SquareLossTransform),
        )
        .unwrap();
    broker
}

/// Acceptance: with the slow threshold at zero, a listed quote is planted
/// as "slow"; its exemplar carries the request seed and the full child
/// tree, and replaying from that seed reproduces the identical released
/// weights and canonical span tree.
#[test]
fn slow_quote_exemplar_carries_seed_and_replays_identically() {
    let _g = serial();
    arm();
    mbp_obs::set_slow_threshold_micros(0);
    let mut broker = listed_broker(51);
    let run = |broker: &mut Broker, seed: u64| -> Sale {
        let mut rng = seeded_rng(seed);
        mbp_obs::set_request_seed(seed);
        broker
            .buy_listed(
                ModelKind::LinearRegression,
                PurchaseRequest::ErrorBudget(1.5),
                &mut rng,
            )
            .unwrap()
    };
    let first = run(&mut broker, 777_001);

    let exemplars = mbp_obs::exemplars();
    let ex = exemplars
        .iter()
        .find(|e| e.root.seed == 777_001)
        .expect("planted slow quote must be captured as an exemplar");
    assert_eq!(ex.root.name, "mbp.core.buy");
    assert_eq!(ex.root.listing, "linear_regression");
    assert_eq!(ex.root.mechanism, "gaussian");
    assert!(
        !ex.children.is_empty(),
        "exemplar must retain the child span tree"
    );
    let mut captured = ex.children.clone();
    captured.push(ex.root.clone());
    let captured_tree = mbp_obs::canonical_tree(&captured, ex.root.trace);
    for phase in ["lookup", "phi_inversion", "noise", "ledger"] {
        assert!(
            captured_tree.contains(phase),
            "phase {phase} missing from {captured_tree}"
        );
    }

    // Replay from the exemplar's seed: identical release, identical tree.
    let replay_seed = ex.root.seed;
    mbp_obs::reset();
    let second = run(&mut broker, replay_seed);
    assert_eq!(first.price, second.price);
    assert_eq!(first.ncp, second.ncp);
    assert_eq!(first.model.weights(), second.model.weights());
    let spans = mbp_obs::recorder_snapshot();
    let root = spans
        .iter()
        .find(|s| s.seed == replay_seed)
        .expect("replayed root span");
    let replay_tree = mbp_obs::canonical_tree(&spans, root.trace);
    assert_eq!(captured_tree, replay_tree);
    disarm();
}

/// Satellite: the sharded simulation emits the same multiset of canonical
/// span trees at 1 and 4 worker threads — the span context follows work
/// across `mbp-par` and only timings/id assignment may differ.
#[test]
fn sharded_simulation_span_trees_match_across_thread_counts() {
    let _g = serial();
    let trees_at = |threads: usize| -> Vec<String> {
        arm();
        let mut rng = seeded_rng(61);
        let data = mbp_data::synth::simulated1(500, 4, 0.5, &mut rng).split(0.75, &mut rng);
        let seller = Seller::new(
            data.clone(),
            grid(10.0, 100.0, 8),
            ValueCurve::new(ValueShape::Concave { power: 2.0 }, 5.0, 100.0),
            DemandCurve::new(DemandShape::Uniform),
        );
        let mut broker = Broker::new(data);
        broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
        let pricing = broker.price_from_research(&seller).pricing;
        let out = mbp_par::with_threads(threads, || {
            simulate_market_sharded(
                &mut broker,
                &seller,
                ModelKind::LinearRegression,
                &pricing,
                &SquareLossTransform,
                SimulationConfig {
                    n_buyers: 600,
                    valuation_jitter: 0.0,
                },
                9090,
            )
            .unwrap()
        });
        assert!(out.served > 0, "some buyers must be served");
        let spans = mbp_obs::recorder_snapshot();
        let quote_traces: BTreeSet<u32> = spans
            .iter()
            .filter(|s| s.name == "mbp.core.buy")
            .map(|s| s.trace)
            .collect();
        assert_eq!(out.served, quote_traces.len(), "one trace per quote");
        let mut trees: Vec<String> = quote_traces
            .iter()
            .map(|&t| mbp_obs::canonical_tree(&spans, t))
            .collect();
        trees.sort();
        disarm();
        trees
    };
    let one = trees_at(1);
    let four = trees_at(4);
    assert_eq!(one, four);
}
