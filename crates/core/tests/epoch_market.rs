//! Epoch rollover against a *real* broker.
//!
//! `run_adaptive_market` simulates seasons in isolation; these tests drive
//! the same per-season loop — re-derive a DP-optimal curve, re-publish it,
//! serve buyers — through [`Broker`] and [`SharedBroker`], pinning the
//! ledger carry-over semantics: re-publishing a listing replaces the
//! *offer* but never rewrites or drops settled transactions.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::concurrent::SharedBroker;
use mbp_core::market::{Broker, PurchaseRequest};
use mbp_core::revenue::{solve_bv_dp, BuyerPoint};
use mbp_data::synth;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;

const KIND: ModelKind = ModelKind::LinearRegression;

/// Buyer grid shared by every test: NCPs 1..=6 with concave valuations.
fn truth() -> Vec<BuyerPoint> {
    (1..=6)
        .map(|i| {
            let a = i as f64;
            BuyerPoint::new(a, 12.0 * a.sqrt(), 1.0 / 6.0)
        })
        .collect()
}

/// DP-optimal curve for the truth scaled by `scale` — one curve per
/// "season belief", all on the same grid but with distinct prices.
fn season_curve(scale: f64) -> mbp_core::pricing::PricingFunction {
    let believed: Vec<BuyerPoint> = truth()
        .iter()
        .map(|p| BuyerPoint::new(p.a, p.valuation * scale, p.demand))
        .collect();
    solve_bv_dp(&believed).pricing
}

fn fresh_broker(data_seed: u64) -> Broker {
    let mut rng = seeded_rng(data_seed);
    let data = synth::simulated1(60, 3, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(KIND, 1e-6)
        .expect("linear regression is supported");
    broker
}

#[test]
fn ledger_carries_over_across_epoch_republishes() {
    let mut broker = fresh_broker(41);
    let mut rng = seeded_rng(42);
    let grid: Vec<f64> = truth().iter().map(|p| p.a).collect();
    let scales = [0.5, 0.75, 1.0, 1.25];

    let mut expected_revenue = 0.0;
    let mut all_sale_prices: Vec<u64> = Vec::new();
    for (epoch, &scale) in scales.iter().enumerate() {
        let curve = season_curve(scale);
        broker
            .publish(KIND, curve, Box::new(SquareLossTransform))
            .expect("republish succeeds every epoch");
        for &a in &grid {
            let sale = broker
                .buy_listed(KIND, PurchaseRequest::AtNcp(a), &mut rng)
                .expect("AtNcp purchases always clear");
            expected_revenue += sale.price;
            all_sale_prices.push(sale.price.to_bits());
        }
        // Rollover: the ledger accumulates across re-publishes instead of
        // resetting with the listing.
        assert_eq!(
            broker.ledger().len(),
            (epoch + 1) * grid.len(),
            "publish must not clear settled transactions"
        );
    }

    // Every ledger entry still carries the price it settled at, in order:
    // re-publishing later (higher-scale) curves never rewrote history.
    let ledger_prices: Vec<u64> = broker.ledger().iter().map(|t| t.price.to_bits()).collect();
    assert_eq!(ledger_prices, all_sale_prices);
    assert!(
        (broker.total_revenue() - expected_revenue).abs() < 1e-9,
        "revenue is the running sum over all epochs"
    );

    // The seasons genuinely re-priced: the same request costs more under
    // the last curve than under the first.
    let n = grid.len();
    let first_epoch_top = f64::from_bits(all_sale_prices[n - 1]);
    let last_epoch_top = f64::from_bits(all_sale_prices[all_sale_prices.len() - 1]);
    assert!(
        last_epoch_top > first_epoch_top,
        "scaled-up beliefs should raise the posted price ({first_epoch_top} vs {last_epoch_top})"
    );
}

#[test]
fn mid_epoch_republish_switches_quotes_without_rewriting_history() {
    let mut broker = fresh_broker(43);
    let mut rng = seeded_rng(44);
    let a = 4.0;

    broker
        .publish(KIND, season_curve(0.5), Box::new(SquareLossTransform))
        .expect("publish A");
    let under_a: Vec<u64> = (0..3)
        .map(|_| {
            broker
                .buy_listed(KIND, PurchaseRequest::AtNcp(a), &mut rng)
                .expect("buy under curve A")
                .price
                .to_bits()
        })
        .collect();

    // Mid-season correction: the seller re-publishes a steeper curve while
    // the season is still running.
    broker
        .publish(KIND, season_curve(1.0), Box::new(SquareLossTransform))
        .expect("publish B");
    let under_b: Vec<u64> = (0..3)
        .map(|_| {
            broker
                .buy_listed(KIND, PurchaseRequest::AtNcp(a), &mut rng)
                .expect("buy under curve B")
                .price
                .to_bits()
        })
        .collect();

    // Identical requests within one listing price identically (bitwise);
    // the switch is visible exactly at the re-publish.
    assert!(under_a.windows(2).all(|w| w[0] == w[1]));
    assert!(under_b.windows(2).all(|w| w[0] == w[1]));
    assert_ne!(under_a[0], under_b[0], "the re-publish must re-price");
    assert!(f64::from_bits(under_b[0]) > f64::from_bits(under_a[0]));

    // History is append-only: the three A-priced transactions survive the
    // re-publish verbatim, followed by the three B-priced ones.
    let ledger: Vec<u64> = broker.ledger().iter().map(|t| t.price.to_bits()).collect();
    assert_eq!(ledger[..3], under_a[..]);
    assert_eq!(ledger[3..], under_b[..]);
}

#[test]
fn shared_broker_epoch_rollover_preserves_striped_sales() {
    let sb = SharedBroker::new(fresh_broker(45));
    let mut rng = seeded_rng(46);
    let requests: Vec<PurchaseRequest> = truth()
        .iter()
        .map(|p| PurchaseRequest::AtNcp(p.a))
        .collect();
    let scales = [0.5, 0.75, 1.0];

    let mut expected_revenue = 0.0;
    for (epoch, &scale) in scales.iter().enumerate() {
        // Maintenance drains the stripes, then swaps the listing — the
        // drained transactions from prior seasons must already be in the
        // core ledger when the new season opens.
        let carried = sb.with_broker(|b| {
            b.publish(KIND, season_curve(scale), Box::new(SquareLossTransform))
                .expect("republish succeeds every epoch");
            b.ledger().len()
        });
        assert_eq!(
            carried,
            epoch * requests.len(),
            "reconciliation carries every prior season's sales into the core ledger"
        );
        let sales = sb
            .buy_batch(KIND, &requests, &mut rng)
            .expect("listing exists");
        for sale in sales {
            expected_revenue += sale.expect("AtNcp purchases always clear").price;
        }
        // sales_count spans core + stripes, so the rollover is seamless
        // even before the next reconcile.
        assert_eq!(sb.sales_count(), (epoch + 1) * requests.len());
    }

    assert!((sb.total_revenue() - expected_revenue).abs() < 1e-9);
    // Final reconcile: everything lands in the core ledger, nothing lost.
    let final_len = sb.with_broker(|b| b.ledger().len());
    assert_eq!(final_len, scales.len() * requests.len());
}
