//! Named regression tests promoted from `properties.proptest-regressions`.
//!
//! Proptest replays those seeds before generating novel cases, but only
//! for whoever runs the property suite with the regression file present.
//! Promoting the shrunken counterexamples into plain `#[test]`s makes
//! them first-class, named, and grep-able: they run everywhere (including
//! `--test regressions` in isolation), survive a deleted or rewritten
//! regression file, and document *what* the historical failure was.
//!
//! Both cases stress the same corner of the Theorem 10 DP: long runs of
//! zero-valuation buyers below a single positive-valuation point, where
//! the subadditivity ratio constraints must pull the high price down
//! without driving intermediate prices negative or breaking monotonicity.

use mbp_core::arbitrage::audit;
use mbp_core::error::SquareLossTransform;
use mbp_core::market::{Broker, MarketError};
use mbp_core::pricing::PricingFunction;
use mbp_core::revenue::{revenue, solve_bv_dp, BuyerPoint};
use mbp_data::synth;
use mbp_ml::ModelKind;
use mbp_optim::isotonic::is_relaxed_feasible;
use mbp_randx::seeded_rng;

/// Mirrors the `dp_output_always_well_behaved` property from
/// `properties.rs` on one concrete instance.
fn assert_dp_well_behaved(points: &[BuyerPoint]) {
    let sol = solve_bv_dp(points);
    let grid: Vec<f64> = points.iter().map(|p| p.a).collect();
    assert!(
        is_relaxed_feasible(sol.pricing.prices(), &grid, 1e-7),
        "DP prices must be monotone and ratio-feasible"
    );
    assert!(
        (sol.objective - revenue(&sol.pricing, points)).abs() < 1e-9,
        "objective {} inconsistent with evaluated revenue {}",
        sol.objective,
        revenue(&sol.pricing, points)
    );
    assert!(sol.objective >= -1e-12);
    let surplus: f64 = points.iter().map(|p| p.demand * p.valuation).sum();
    assert!(sol.objective <= surplus + 1e-9);
    let report = audit(&sol.pricing, &grid, 4, 1e-5);
    assert!(report.is_clean(), "{report:?}");
}

/// Seed `99080a23…`: three zero-valuation points, then one valued point
/// far up the grid.
#[test]
fn dp_regression_zero_valuation_prefix_with_one_valued_tail_point() {
    let points = [
        BuyerPoint::new(0.5, 0.0, 0.05),
        BuyerPoint::new(2.620_172_681_184_32, 0.0, 0.05),
        BuyerPoint::new(3.120_172_681_184_32, 0.0, 0.05),
        BuyerPoint::new(6.756_339_404_138_743, 12.203_109_316_914_15, 0.05),
    ];
    assert_dp_well_behaved(&points);
}

/// Seed `e0e3f9d5…`: five zero-valuation points in two tight clusters,
/// then one valued point just past the second cluster.
#[test]
fn dp_regression_clustered_zero_valuations_before_the_valued_point() {
    let points = [
        BuyerPoint::new(2.089_264_147_368_508, 0.0, 0.05),
        BuyerPoint::new(2.589_264_147_368_508, 0.0, 0.05),
        BuyerPoint::new(3.089_264_147_368_508, 0.0, 0.05),
        BuyerPoint::new(5.800_255_919_707_685, 0.0, 0.05),
        BuyerPoint::new(6.300_255_919_707_685, 0.0, 0.05),
        BuyerPoint::new(6.800_255_919_707_685, 17.869_475_530_965_023, 0.05),
    ];
    assert_dp_well_behaved(&points);
}

/// Found by `mbp-lint`'s panic-freedom triage of the serve path: a buyer
/// could crash the broker by requesting a price–error curve over a grid
/// containing a NaN, zero, or negative NCP. The NaN slipped past the old
/// `partial_cmp().expect("finite NCPs")` sort and then tripped the
/// `delta > 0` assert inside `PricingFunction::price_for_ncp`. The grid
/// is now validated up front and the request rejected as `BadRequest`.
#[test]
fn regression_price_error_curve_rejects_nonpositive_and_nan_ncps() {
    let mut rng = seeded_rng(42);
    let ds = synth::simulated1(200, 4, 0.5, &mut rng);
    let mut broker = Broker::new(ds.split(0.75, &mut rng));
    broker.support(ModelKind::LinearRegression, 0.0).unwrap();
    let grid: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    let pricing = PricingFunction::from_points(grid, prices).unwrap();

    for bad_grid in [
        vec![1.0, f64::NAN, 3.0],
        vec![0.0, 1.0, 2.0],
        vec![-1.0, 1.0, 2.0],
        vec![1.0, f64::INFINITY],
    ] {
        let err = broker
            .price_error_curve(
                ModelKind::LinearRegression,
                &SquareLossTransform,
                &pricing,
                &bad_grid,
            )
            .unwrap_err();
        assert!(
            matches!(err, MarketError::BadRequest(_)),
            "grid {bad_grid:?} must be rejected, got {err:?}"
        );
    }

    // The happy path is untouched: a valid grid still yields a curve.
    let curve = broker
        .price_error_curve(
            ModelKind::LinearRegression,
            &SquareLossTransform,
            &pricing,
            &[0.5, 1.0, 2.0, 4.0],
        )
        .unwrap();
    assert_eq!(curve.points.len(), 4);
    assert!(curve.is_well_formed());
}

/// PR 8 batch-admission hardening: before `MAX_BATCH`, a network front-end
/// bug could dispatch an empty batch (paying the listing lookup for a
/// silent no-op) or queue an unbounded batch behind a single shared read
/// guard. Both are now rejected up front as `BadRequest` by every batch
/// entry point — `quote_batch`, `buy_batch`, `buy_batch_into`,
/// `quote_batch_into`, `price_batch`, and the `SharedBroker` wrappers —
/// while batches of exactly `MAX_BATCH` requests still serve.
#[test]
fn regression_batch_entry_points_reject_empty_and_oversized_batches() {
    use mbp_core::market::concurrent::SharedBroker;
    use mbp_core::market::{PurchaseRequest, SaleArena, MAX_BATCH};

    let mut rng = seeded_rng(4242);
    let ds = synth::simulated1(200, 4, 0.5, &mut rng);
    let mut broker = Broker::new(ds.split(0.75, &mut rng));
    broker.support(ModelKind::LinearRegression, 1e-6).unwrap();
    let grid: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    let pricing = PricingFunction::from_points(grid, prices).unwrap();
    broker
        .publish(
            ModelKind::LinearRegression,
            pricing,
            Box::new(SquareLossTransform),
        )
        .unwrap();

    let kind = ModelKind::LinearRegression;
    let oversized = vec![PurchaseRequest::AtNcp(1.0); MAX_BATCH + 1];
    let mut arena = SaleArena::new();

    // Empty and oversized batches: typed BadRequest from every entry point,
    // with no RNG consumed and no ledger growth.
    let rng_probe = |rng: &mut mbp_randx::MbpRng| {
        use rand::Rng;
        rng.clone().gen_range(0.0..1.0f64).to_bits()
    };
    let before_draw = rng_probe(&mut rng);
    for requests in [&[][..], &oversized[..]] {
        let err = broker.quote_batch(kind, requests, &mut rng).unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = broker.buy_batch(kind, requests, &mut rng).unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = broker
            .buy_batch_into(kind, requests, &mut rng, &mut arena)
            .unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = broker
            .quote_batch_into(kind, requests, &mut rng, &mut arena)
            .unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = broker.price_batch(kind, requests).unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
    }
    assert_eq!(
        rng_probe(&mut rng),
        before_draw,
        "rejected batches must not consume RNG"
    );
    assert!(
        broker.ledger().is_empty(),
        "rejected batches must not settle"
    );

    let shared = SharedBroker::new(broker);
    for requests in [&[][..], &oversized[..]] {
        let err = shared.buy_batch(kind, requests, &mut rng).unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = shared
            .buy_batch_into(kind, requests, &mut rng, &mut arena)
            .unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
        let err = shared.price_batch(kind, requests).unwrap_err();
        assert!(matches!(err, MarketError::BadRequest(_)), "{err:?}");
    }
    assert_eq!(shared.sales_count(), 0);

    // Exactly MAX_BATCH requests is the documented cap and still serves.
    let full = vec![PurchaseRequest::AtNcp(1.0); MAX_BATCH];
    shared
        .buy_batch_into(kind, &full, &mut rng, &mut arena)
        .unwrap();
    assert_eq!(arena.len(), MAX_BATCH);
    assert!(arena.results().all(|r| r.is_ok()));
    assert_eq!(shared.sales_count(), MAX_BATCH);
}
