//! Purchase-mode equivalence: budget requests are *navigation*, not a
//! separate pricing path.
//!
//! `ErrorBudget` and `PriceBudget` resolve to an NCP and then go through
//! exactly the same compiled-table entry a direct `AtNcp` purchase hits.
//! These tests pin that equivalence with the two-brokers-same-seed idiom
//! (identical data and purchase RNG seeds ⇒ bit-identical releases) and
//! tie it to the differential oracle from `mbp-testkit`: the published
//! curve prices identically under scan, table, and compensated-sum
//! reference, so there is no side channel for a budget buyer to exploit.

use mbp_core::error::SquareLossTransform;
use mbp_core::market::{Broker, PurchaseRequest, Sale};
use mbp_core::pricing::PricingFunction;
use mbp_data::synth;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use mbp_testkit::{check_error_space, check_pricing, OracleConfig};

const KIND: ModelKind = ModelKind::LinearRegression;

fn curve() -> PricingFunction {
    let grid: Vec<f64> = (1..=6).map(f64::from).collect();
    let prices: Vec<f64> = grid.iter().map(|x| 9.0 * x.sqrt()).collect();
    PricingFunction::from_points(grid, prices).expect("concave curve is valid")
}

fn broker_with_listing(data_seed: u64) -> Broker {
    let mut rng = seeded_rng(data_seed);
    let data = synth::simulated1(60, 3, 0.5, &mut rng).split(0.75, &mut rng);
    let mut broker = Broker::new(data);
    broker
        .support(KIND, 1e-6)
        .expect("linear regression is supported");
    broker
        .publish(KIND, curve(), Box::new(SquareLossTransform))
        .expect("publish succeeds");
    broker
}

/// Runs one purchase on a fresh broker with fixed data and RNG seeds, so
/// two calls with requests that resolve to the same NCP must produce
/// bit-identical sales.
fn one_purchase(request: PurchaseRequest) -> Sale {
    let mut broker = broker_with_listing(71);
    let mut rng = seeded_rng(72);
    broker
        .buy_listed(KIND, request, &mut rng)
        .expect("request is satisfiable on this listing")
}

fn assert_same_sale(a: &Sale, b: &Sale) {
    assert_eq!(a.price.to_bits(), b.price.to_bits(), "price");
    assert_eq!(a.ncp.to_bits(), b.ncp.to_bits(), "ncp");
    assert_eq!(
        a.expected_error.to_bits(),
        b.expected_error.to_bits(),
        "expected error"
    );
    let wa = a.model.weights().as_slice();
    let wb = b.model.weights().as_slice();
    assert_eq!(wa.len(), wb.len());
    for (x, y) in wa.iter().zip(wb) {
        assert_eq!(x.to_bits(), y.to_bits(), "released weights");
    }
}

#[test]
fn error_budget_hits_the_same_table_entry_as_a_direct_purchase() {
    for eps in [1.2, 1.5, 2.0, 3.0] {
        let budgeted = one_purchase(PurchaseRequest::ErrorBudget(eps));
        assert!(
            budgeted.expected_error <= eps + 1e-12,
            "budget respected: {} > {eps}",
            budgeted.expected_error
        );
        // Replaying the resolved NCP directly is indistinguishable — same
        // table entry, same price, same noise draw, same weights.
        let direct = one_purchase(PurchaseRequest::AtNcp(budgeted.ncp));
        assert_same_sale(&budgeted, &direct);
    }
}

#[test]
fn price_budget_hits_the_same_table_entry_as_a_direct_purchase() {
    for budget in [5.0, 9.0, 14.0, 25.0] {
        let budgeted = one_purchase(PurchaseRequest::PriceBudget(budget));
        assert!(
            budgeted.price <= budget + 1e-12,
            "budget respected: {} > {budget}",
            budgeted.price
        );
        let direct = one_purchase(PurchaseRequest::AtNcp(budgeted.ncp));
        assert_same_sale(&budgeted, &direct);
    }
}

#[test]
fn budget_modes_pay_exactly_the_published_table_price() {
    // First, the listing's curve is differentially clean: scan, compiled
    // table, and the compensated-sum reference agree to within 1e-12 in
    // both price space and error space. Budget navigation therefore cannot
    // land on a "cheaper copy" of any entry.
    let f = curve();
    let cfg = OracleConfig {
        seed: 73,
        probes: 1_000,
        ..OracleConfig::default()
    };
    assert!(check_pricing(&f, &cfg).is_clean());
    assert!(check_error_space(&f, &SquareLossTransform, &cfg).is_clean());

    // Second, every budget sale is priced by that same table.
    let table = f.compile();
    for request in [
        PurchaseRequest::ErrorBudget(1.3),
        PurchaseRequest::ErrorBudget(2.5),
        PurchaseRequest::PriceBudget(7.0),
        PurchaseRequest::PriceBudget(18.0),
    ] {
        let sale = one_purchase(request);
        assert_eq!(
            sale.price.to_bits(),
            table.price_for_ncp(sale.ncp).to_bits(),
            "budget sale must be served from the published table entry"
        );
    }
}
