//! `mbp-market` — the command-line face of the MBP marketplace.
//!
//! See [`commands::usage`] (or run with no arguments) for the command list.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
