//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    command: Option<String>,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing and lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A required flag was absent.
    Required(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnexpectedPositional(arg) => {
                write!(f, "unexpected positional argument {arg:?}")
            }
            ArgError::Required(flag) => write!(f, "missing required flag --{flag}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name): first token is the
    /// subcommand, the rest are `--flag value` pairs or bare `--flag`
    /// switches. A flag followed by another `--flag` (or by nothing)
    /// stores the empty string; [`Args::get_bool`] treats that as `true`.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                out.command = it.next();
            }
        }
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(tok));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => String::new(),
            };
            out.flags.insert(name.to_string(), value);
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Optional string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::Required(flag.into()))
    }

    /// Boolean switch: `true` for bare `--flag` and for the explicit
    /// truthy spellings; `false` when absent or set to anything else.
    pub fn get_bool(&self, flag: &str) -> bool {
        matches!(self.get(flag), Some("" | "true" | "1" | "yes" | "on"))
    }

    /// Optional `f64` flag with a default.
    pub fn get_f64(&self, flag: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: raw.into(),
                expected: "a number",
            }),
        }
    }

    /// Optional `u64` flag with a default.
    pub fn get_u64(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: raw.into(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Optional `usize` flag with a default.
    pub fn get_usize(&self, flag: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.into(),
                value: raw.into(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Parses a `lo,hi,n` triple into an evenly spaced grid.
    pub fn get_grid(&self, flag: &str, default: (f64, f64, usize)) -> Result<Vec<f64>, ArgError> {
        let (lo, hi, n) = match self.get(flag) {
            None => default,
            Some(raw) => {
                let parts: Vec<&str> = raw.split(',').collect();
                let bad = || ArgError::BadValue {
                    flag: flag.into(),
                    value: raw.into(),
                    expected: "lo,hi,n",
                };
                if parts.len() != 3 {
                    return Err(bad());
                }
                (
                    parts[0].parse().map_err(|_| bad())?,
                    parts[1].parse().map_err(|_| bad())?,
                    parts[2].parse().map_err(|_| bad())?,
                )
            }
        };
        if !(lo > 0.0 && lo < hi && n >= 2) {
            return Err(ArgError::BadValue {
                flag: flag.into(),
                value: format!("{lo},{hi},{n}"),
                expected: "0 < lo < hi and n >= 2",
            });
        }
        Ok((0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(argv("price --csv data.csv --lambda 2.5")).unwrap();
        assert_eq!(a.command(), Some("price"));
        assert_eq!(a.require("csv").unwrap(), "data.csv");
        assert_eq!(a.get_f64("lambda", 0.0).unwrap(), 2.5);
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(argv("train")).unwrap();
        assert_eq!(a.get_f64("ridge", 1e-6).unwrap(), 1e-6);
        assert_eq!(a.get_u64("seed", 7).unwrap(), 7);
        assert!(a.get("csv").is_none());
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            Args::parse(argv("x stray")),
            Err(ArgError::UnexpectedPositional("stray".into()))
        );
        let a = Args::parse(argv("x --n nope")).unwrap();
        assert!(matches!(
            a.get_usize("n", 1),
            Err(ArgError::BadValue { .. })
        ));
        assert_eq!(
            a.require("missing"),
            Err(ArgError::Required("missing".into()))
        );
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let a = Args::parse(argv("run --trace --seed 9 --verbose")).unwrap();
        assert!(a.get_bool("trace"));
        assert!(a.get_bool("verbose"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 9);
        assert!(!a.get_bool("absent"));
        let b = Args::parse(argv("run --trace yes --quiet false")).unwrap();
        assert!(b.get_bool("trace"));
        assert!(!b.get_bool("quiet"));
        // A trailing bare flag is fine too.
        let c = Args::parse(argv("run --trace")).unwrap();
        assert!(c.get_bool("trace"));
    }

    #[test]
    fn grid_parsing() {
        let a = Args::parse(argv("x --grid 10,100,10")).unwrap();
        let g = a.get_grid("grid", (1.0, 2.0, 2)).unwrap();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 10.0);
        assert_eq!(g[9], 100.0);
        let d = Args::parse(argv("x")).unwrap();
        assert_eq!(
            d.get_grid("grid", (1.0, 3.0, 3)).unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        let bad = Args::parse(argv("x --grid 5,1,3")).unwrap();
        assert!(bad.get_grid("grid", (1.0, 2.0, 2)).is_err());
    }

    #[test]
    fn threads_flag_parses_like_any_usize_flag() {
        let a = Args::parse(argv("simulate --threads 4 --buyers 10")).unwrap();
        assert_eq!(a.get("threads"), Some("4"));
        assert_eq!(a.get_usize("threads", 1).unwrap(), 4);
        // Absent flag falls back to the default (pool decides from env).
        let b = Args::parse(argv("simulate")).unwrap();
        assert!(b.get("threads").is_none());
    }

    #[test]
    fn no_command_is_ok() {
        let a = Args::parse(argv("--help x")).unwrap();
        assert_eq!(a.command(), None);
        assert_eq!(a.get("help"), Some("x"));
    }
}
