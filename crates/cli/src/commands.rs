//! The `mbp-market` subcommand implementations.
//!
//! Each command returns its report as a `String` (printed by `main`), which
//! keeps the commands unit-testable without capturing stdout.

use crate::args::{ArgError, Args};
use mbp_core::arbitrage::audit;
use mbp_core::market::curves::{DemandCurve, DemandShape, ValueCurve, ValueShape};
use mbp_core::pricing::PricingFunction;
use mbp_core::revenue::{affordability, revenue, solve_bv_dp_fair, Baseline, BuyerPoint};
use mbp_data::{catalog, csv, stats, Dataset};
use mbp_linalg::Vector;
use mbp_ml::metrics::{evaluate_classification, evaluate_regression, EvalReport};
use mbp_ml::train::{gradient_descent, newton_logistic, ridge_closed_form, TrainConfig};
use mbp_ml::{LogisticLoss, ModelKind, SmoothedHingeLoss};
use mbp_randx::seeded_rng;
use std::fmt::Write as _;
use std::path::Path;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgError),
    /// I/O or CSV problem.
    Data(String),
    /// Anything the market/trainers raised.
    Market(String),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Static-analysis findings (the rendered report).
    Lint(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Data(e) => write!(f, "{e}"),
            CliError::Market(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; run with no arguments for usage")
            }
            CliError::Lint(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text.
pub fn usage() -> String {
    "\
mbp-market — a model-based pricing marketplace (SIGMOD'19 reproduction)

USAGE: mbp-market <COMMAND> [--flag value ...]

COMMANDS:
  catalog                         print the Table 3 dataset catalog
  summarize --csv F               dataset summary statistics
  train     --csv F --model M     train the optimal model instance
            [--ridge MU] [--eval-csv F2]
  price     --csv F               derive arbitrage-free DP pricing
            [--grid lo,hi,n] [--value SHAPE] [--vmin V] [--vmax V]
            [--demand SHAPE] [--lambda L] [--out PRICES_TSV]
  audit     --prices F            audit a pricing curve (TSV: x<TAB>price)
  attack    --prices F            fuzz a pricing curve for arbitrage
            [--seed S] [--trials N] (monotonicity, subadditivity, budget
            [--bundle K]            round-trips) and cross-check all
            [--corpus F]            evaluators differentially; replays and
                                    extends a regression corpus file
  sell      --csv F --model M     train, price, and release one noisy
            --budget P [--grid lo,hi,n] [--seed S] [--out MODEL_TSV]
                                  instance within budget
  simulate  [--csv F] [--model M] run a Monte-Carlo selling season against
            [--buyers N] [--jitter J] the derived arbitrage-free pricing
            [--grid lo,hi,n] [--seed S] (synthetic Simulated1 data when no
            [--ridge MU] [--lambda L]   CSV is given)
            [--sharded]                 shard buyers across worker threads
                                        (deterministic in the seed at any
                                        thread count)
            [--batch N]                 serve buyers through the batched
                                        quote path (publishes a compiled
                                        listing; deterministic in the seed
                                        at any batch size)
  trace     [--buyers N] [--seed S] run a traced synthetic selling season
            [--grid lo,hi,n]        and dump the flight recorder: span
            [--slow-threshold-us T] summary, tail-latency exemplars (with
            [--out TRACE_JSON]      replay seeds), and the Chrome
            [--jsonl SPANS_JSONL]   trace_event JSON (inline unless --out)
  predict   --model MODEL_TSV     score a CSV with a saved model instance
            --csv F
  serve     [--port P] [--host H]  boot the TCP marketplace daemon: trains
            [--metrics-port P]     and publishes one listing (synthetic
            [--csv F] [--model M]  data unless --csv; priced 10·√x over
            [--seed S] [--ridge MU] --grid), then serves quote/buy/publish
            [--grid lo,hi,n]       over the length-prefixed wire protocol
            [--queue-limit N]      until a Shutdown frame or SIGTERM
            [--idle-timeout-ms T]  drains it; --metrics-port exposes
            [--no-batch]           GET /metrics (Prometheus); --no-batch
            [--wal DIR]            disables batch admission (baseline);
                                   --wal appends every market mutation to
                                   a durable write-ahead log in DIR and
                                   replays any existing log on boot
  replay    --wal DIR             re-run a captured WAL read-only: fold
            [--curve C1,C2,...]    the surviving history and report
            [--grid lo,hi,n]       counterfactual revenue per pricing
                                   scheme (built-ins sqrt/linear, or a
                                   TSV path) plus a determinism digest;
                                   torn tails truncate, corrupt records
                                   skip with a count, never an error
  lint      [--root DIR]          static-analysis pass over the workspace
            [--baseline FILE]     (determinism, panic-freedom, float
            [--interprocedural]   discipline, lock order, unsafe audit,
            [--graph-out BASE]    narrowing casts); --interprocedural adds
                                  the whole-workspace call-graph analyses
                                  (reach-panic, taint-det, lock-graph) and
                                  --graph-out writes BASE.json/BASE.dot
                                  witness artifacts; exits non-zero on any
                                  finding beyond the lint.toml baseline

GLOBAL FLAGS (every command):
  --threads N          thread-pool size for parallel hot paths (default:
                       MBP_THREADS env var, else the hardware parallelism)
  --metrics-out PATH   write a JSON metrics snapshot after the command
  --trace              record span/trace events (appended to the report)
                       and enable causal request tracing + the flight
                       recorder for the command
  --trace-out PATH     write the flight recorder as Chrome trace_event
                       JSON after the command (implies tracing)
  --slow-threshold-us N  spans at or above N microseconds are kept as
                       tail-latency exemplars with their replay seed and
                       full child tree (default 1000)
  --verbose            record debug-level events as well (including the
                       effective thread-pool size)

MODELS: linreg | logreg | svm
VALUE SHAPES: linear | convex | concave | sigmoid
DEMAND SHAPES: uniform | peak | bimodal | increasing | decreasing
"
    .to_string()
}

/// Dispatches a parsed command line, honoring the global observability
/// flags: `--metrics-out PATH` (JSON snapshot of every `mbp.*` metric),
/// `--trace` (trace-level events appended to the report), and `--verbose`
/// (debug-level events). Any of them enables the otherwise-inert
/// [`mbp_obs`] registry before the command runs.
pub fn run(args: &Args) -> Result<String, CliError> {
    let trace = args.get_bool("trace");
    let verbose = args.get_bool("verbose");
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    if trace || verbose || metrics_out.is_some() || trace_out.is_some() {
        mbp_obs::enable();
        if trace {
            mbp_obs::set_verbosity(mbp_obs::Verbosity::Trace);
        } else if verbose {
            mbp_obs::set_verbosity(mbp_obs::Verbosity::Debug);
        }
    }
    // `--trace` / `--trace-out` arm causal tracing: every quote/buy/publish
    // gets a span context, and spans at or above `--slow-threshold-us` are
    // kept as replayable exemplars.
    if trace || trace_out.is_some() {
        mbp_obs::set_slow_threshold_micros(args.get_u64("slow-threshold-us", 1_000)?);
        mbp_obs::set_tracing(true);
    }
    // `--threads N` overrides MBP_THREADS (which mbp-par reads itself).
    if let Some(raw) = args.get("threads") {
        let n = mbp_par::parse_threads(Some(raw)).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                flag: "threads".into(),
                value: raw.into(),
                expected: "a positive integer",
            })
        })?;
        mbp_par::set_threads(n);
    }
    if verbose {
        mbp_obs::event(
            mbp_obs::Verbosity::Debug,
            "mbp.cli",
            "thread pool configured",
            &[("effective_threads", mbp_par::max_threads().to_string())],
        );
    }
    let mut result = dispatch(args);
    if let Some(path) = trace_out {
        let spans = mbp_obs::recorder_snapshot();
        let json = mbp_obs::recorder_to_chrome_trace(&spans);
        if let Err(e) = std::fs::write(path, json) {
            result = result.and(Err(CliError::Data(format!("writing {path}: {e}"))));
        }
    }
    if let Some(path) = metrics_out {
        let json = mbp_obs::to_json(&mbp_obs::snapshot());
        if let Err(e) = std::fs::write(path, json) {
            result = result.and(Err(CliError::Data(format!("writing {path}: {e}"))));
        }
    }
    if trace || verbose {
        if let Ok(report) = &mut result {
            let events = mbp_obs::drain_events();
            if !events.is_empty() {
                report.push_str("── events ──\n");
                report.push_str(&mbp_obs::events_to_jsonl(&events));
            }
        }
    }
    result
}

fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command() {
        None => Ok(usage()),
        Some("catalog") => cmd_catalog(),
        Some("summarize") => cmd_summarize(args),
        Some("train") => cmd_train(args),
        Some("price") => cmd_price(args),
        Some("audit") => cmd_audit(args),
        Some("attack") => cmd_attack(args),
        Some("sell") => cmd_sell(args),
        Some("simulate") => cmd_simulate(args),
        Some("trace") => cmd_trace(args),
        Some("predict") => cmd_predict(args),
        Some("serve") => cmd_serve(args),
        Some("replay") => cmd_replay(args),
        Some("lint") => cmd_lint(args),
        Some(other) => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// `mbp-market serve`: boot the TCP marketplace daemon.
///
/// Trains and publishes one listing (synthetic Simulated1 data unless
/// `--csv` is given, priced `10·√x` over `--grid`), binds the wire
/// protocol on `--host:--port`, and blocks until a `Shutdown` control
/// frame or SIGTERM triggers the graceful drain. The report printed on
/// exit summarizes connections accepted and requests served.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    use mbp_core::error::SquareLossTransform;
    use mbp_core::market::concurrent::SharedBroker;
    use mbp_core::market::Broker;

    // A daemon is long-running and its /metrics endpoint serves the live
    // registry, so observability is always on for this command.
    mbp_obs::enable();

    let seed = args.get_u64("seed", 7)?;
    let mut rng = seeded_rng(seed);
    let ds = match args.get("csv") {
        Some(p) => load_csv(p)?,
        None => mbp_data::synth::simulated1(600, 4, 0.5, &mut rng),
    };
    let kind = match args.get("model") {
        Some(raw) => parse_model(raw)?,
        None => mbp_ml::ModelKind::LinearRegression,
    };
    let ridge = args.get_f64("ridge", 1e-6)?;
    let grid = args.get_grid("grid", (1.0, 129.0, 512))?;
    let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
    let pricing =
        PricingFunction::from_points(grid, prices).map_err(|e| CliError::Market(e.to_string()))?;

    let tt = ds.split(0.75, &mut rng);
    let mut broker = Broker::new(tt);

    // `--wal DIR` turns on durability: recover the directory into the
    // broker first (bit-identical replay of the surviving log), then
    // attach the live handle as the broker's sink so the recovery itself
    // is not re-recorded. Off by default — serving stays log-free.
    let (shared, wal) = match args.get("wal") {
        Some(dir) => {
            use mbp_core::market::DurabilitySink;
            use std::sync::Arc;
            let (wal, recovery) =
                mbp_wal::Durability::open(Path::new(dir), mbp_wal::WalConfig::default())
                    .map_err(|e| CliError::Data(format!("opening wal {dir}: {e}")))?;
            recovery
                .state
                .apply(&mut broker)
                .map_err(|e| CliError::Market(e.to_string()))?;
            let recovered_listing = recovery.state.published_points(kind).is_some();
            let shared = SharedBroker::with_durability(
                broker,
                Arc::clone(&wal) as Arc<dyn mbp_core::market::DurabilitySink>,
            );
            if recovery.state.support_ridge(kind).is_none() {
                shared
                    .support(kind, ridge)
                    .map_err(|e| CliError::Market(e.to_string()))?;
            }
            if !recovered_listing {
                shared
                    .publish(kind, pricing, Box::new(SquareLossTransform))
                    .map_err(|e| CliError::Market(e.to_string()))?;
            }
            // Pin this process's RNG session so `replay` can see where the
            // recovered history's randomness left off.
            let draws = recovery.state.rng_cursor.map_or(1, |(_, d)| d + 1);
            wal.record_rng_cursor(seed, draws);
            wal.sync()
                .map_err(|e| CliError::Data(format!("syncing wal {dir}: {e}")))?;
            println!(
                "wal: recovered {} record(s) ({} sales, {} skipped, {} torn segment(s)) from {dir}",
                recovery.records,
                recovery.state.sales.len(),
                recovery.records_skipped,
                recovery.truncated_segments,
            );
            (shared, Some(wal))
        }
        None => {
            broker
                .support(kind, ridge)
                .map_err(|e| CliError::Market(e.to_string()))?;
            broker
                .publish(kind, pricing, Box::new(SquareLossTransform))
                .map_err(|e| CliError::Market(e.to_string()))?;
            (SharedBroker::new(broker), None)
        }
    };

    let host = args.get("host").unwrap_or("127.0.0.1");
    let port = args.get_u64("port", 7878)?;
    let metrics_port = args.get_u64("metrics-port", 0)?;
    let cfg = mbp_serve::ServerConfig {
        addr: format!("{host}:{port}"),
        metrics_addr: (metrics_port != 0).then(|| format!("{host}:{metrics_port}")),
        io_threads: 0, // resolved from --threads / MBP_THREADS by mbp-par
        batch_admission: !args.get_bool("no-batch"),
        queue_limit: args.get_usize("queue-limit", 1024)?,
        idle_timeout: std::time::Duration::from_millis(args.get_u64("idle-timeout-ms", 30_000)?),
        handle_sigterm: true,
    };
    let handle = mbp_serve::start(shared, cfg).map_err(|e| CliError::Market(e.to_string()))?;
    println!(
        "mbp-serve listening on {} (model {})",
        handle.addr(),
        kind.name()
    );
    if let Some(maddr) = handle.metrics_addr() {
        println!("metrics on http://{maddr}/metrics");
    }
    let stats = handle.wait();
    let mut out = String::new();
    writeln!(out, "drained after graceful shutdown").unwrap();
    writeln!(out, "connections\t{}", stats.connections).unwrap();
    writeln!(out, "requests\t{}", stats.requests).unwrap();
    if let Some(wal) = &wal {
        // Final durability point: everything the daemon settled is on disk
        // before the report claims a clean drain.
        wal.sync()
            .map_err(|e| CliError::Data(format!("final wal sync: {e}")))?;
        writeln!(out, "wal_dir\t{}", wal.dir().display()).unwrap();
        writeln!(out, "wal_segment\t{}", wal.segment()).unwrap();
        writeln!(out, "wal_sales_logged\t{}", wal.sales_logged()).unwrap();
        writeln!(out, "wal_io_errors\t{}", wal.io_error_count()).unwrap();
    }
    Ok(out)
}

/// `mbp-market replay`: deterministic record/replay backtesting over a
/// captured WAL.
///
/// Read-only: scans `--wal DIR` (torn tails truncated, corrupt-but-framed
/// records skipped with a count — never an error), folds the surviving
/// history, and re-prices every recorded sale under each `--curve` scheme
/// (at the same `price_at(1/ncp)` coordinate the mechanism charged) to
/// report counterfactual revenue next to what the log actually earned.
/// Curve specs are the built-ins `sqrt` (10·√x) and `linear` (0.75·x)
/// over `--grid`, or a path to an `x<TAB>price` TSV as written by
/// `price --out`. The whole pipeline runs twice and the report carries a
/// determinism digest over the folded state and every revenue figure. An
/// empty or missing WAL is a clean empty report, not an error.
fn cmd_replay(args: &Args) -> Result<String, CliError> {
    use mbp_serve::wire::{digest_bytes, DIGEST_SEED};

    let dir = args.require("wal")?;
    let grid = args.get_grid("grid", (1.0, 129.0, 512))?;
    let specs: Vec<String> = args
        .get("curve")
        .unwrap_or("sqrt,linear")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if specs.is_empty() {
        return Err(CliError::Args(ArgError::BadValue {
            flag: "curve".into(),
            value: args.get("curve").unwrap_or_default().into(),
            expected: "a comma-separated list of schemes (sqrt, linear, or a TSV path)",
        }));
    }
    let mut curves: Vec<(String, PricingFunction)> = Vec::new();
    for spec in &specs {
        let curve = match spec.as_str() {
            "sqrt" => {
                let prices = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
                PricingFunction::from_points(grid.clone(), prices)
                    .map_err(|e| CliError::Market(e.to_string()))?
            }
            "linear" => {
                let prices = grid.iter().map(|x| 0.75 * x).collect();
                PricingFunction::from_points(grid.clone(), prices)
                    .map_err(|e| CliError::Market(e.to_string()))?
            }
            path => load_prices_tsv(path)?,
        };
        curves.push((spec.clone(), curve));
    }

    // One full pass: scan, fold, re-price. The pipeline runs twice and the
    // digests must agree — that is the record/replay determinism contract.
    let pass = || -> Result<(mbp_wal::DirRecovery, mbp_wal::RecoveredState, Vec<f64>), CliError> {
        let path = Path::new(dir);
        let scanned = if path.exists() {
            mbp_wal::recover_dir(path)
                .map_err(|e| CliError::Data(format!("scanning wal {dir}: {e}")))?
        } else {
            // Satellite pin: a WAL that never existed is an empty history.
            mbp_wal::DirRecovery::default()
        };
        let state = mbp_wal::RecoveredState::from_events(&scanned.events);
        let revenues = curves
            .iter()
            .map(|(_, curve)| {
                state
                    .sales
                    .iter()
                    // Guarded like `price_at` itself: a non-positive NCP
                    // clamps to a free (zero-price) counterfactual rather
                    // than panicking on a hostile log.
                    .map(|tx| {
                        let x = if tx.ncp > 0.0 && tx.ncp.is_finite() {
                            1.0 / tx.ncp
                        } else {
                            0.0
                        };
                        curve.price_at(x)
                    })
                    // An explicit zero seed: the empty-sum identity is -0.0,
                    // which would print as "-0.000000" for an empty log.
                    .fold(0.0, |a, b| a + b)
            })
            .collect();
        Ok((scanned, state, revenues))
    };
    let digest_of = |state: &mbp_wal::RecoveredState, revenues: &[f64]| {
        let mut h = digest_bytes(DIGEST_SEED, &state.digest().to_le_bytes());
        for r in revenues {
            h = digest_bytes(h, &r.to_bits().to_le_bytes());
        }
        h
    };

    let (scanned, state, revenues) = pass()?;
    let first = digest_of(&state, &revenues);
    let (_, state2, revenues2) = pass()?;
    let second = digest_of(&state2, &revenues2);

    let recorded: f64 = state
        .sales
        .iter()
        .map(|tx| tx.price)
        .fold(0.0, |a, b| a + b);
    let mut out = String::new();
    writeln!(out, "replayed wal {dir}").unwrap();
    writeln!(out, "segments\t{}", scanned.segments).unwrap();
    writeln!(out, "records\t{}", scanned.events.len()).unwrap();
    writeln!(out, "records_skipped\t{}", scanned.records_skipped).unwrap();
    writeln!(out, "truncated_segments\t{}", scanned.truncated_segments).unwrap();
    writeln!(out, "sales\t{}", state.sales.len()).unwrap();
    writeln!(out, "epoch\t{}", state.epoch).unwrap();
    writeln!(out, "recorded_revenue\t{recorded:.6}").unwrap();
    for ((name, _), rev) in curves.iter().zip(&revenues) {
        writeln!(
            out,
            "scheme\t{name}\trevenue\t{rev:.6}\tdelta\t{:+.6}",
            rev - recorded
        )
        .unwrap();
    }
    writeln!(out, "replay_digest\t{first:016x}").unwrap();
    writeln!(out, "deterministic\t{}", first == second).unwrap();
    Ok(out)
}

/// `mbp-market lint`: run the workspace static-analysis pass.
///
/// Scans every `.rs` file under `--root` (default: the current directory)
/// against the determinism / panic-freedom / float / lock-order / unsafe /
/// cast rules, honoring the `--baseline` waiver budget (default:
/// `lint.toml` under the root when present). With `--interprocedural` the
/// whole-workspace call graph is built as well and the `reach-panic` /
/// `taint-det` / `lock-graph` analyses run over it; `--graph-out BASE`
/// additionally writes `BASE.json` and `BASE.dot` witness artifacts.
/// Findings are returned as an error so the process exits non-zero, which
/// is what lets CI gate on this command.
fn cmd_lint(args: &Args) -> Result<String, CliError> {
    let root = Path::new(args.get("root").unwrap_or("."));
    let default_baseline = root.join("lint.toml");
    let baseline = match args.get("baseline") {
        Some(p) => Some(Path::new(p).to_path_buf()),
        None => default_baseline.exists().then_some(default_baseline),
    };
    let graph_out = args.get("graph-out").filter(|v| !v.is_empty());
    let report = if args.get_bool("interprocedural") || graph_out.is_some() {
        mbp_lint::run_interprocedural(root, baseline.as_deref(), graph_out.map(Path::new))
    } else {
        mbp_lint::run(root, baseline.as_deref())
    }
    .map_err(|e| CliError::Data(format!("scanning {}: {e}", root.display())))?;
    if report.is_clean() {
        Ok(report.render())
    } else {
        Err(CliError::Lint(report.render()))
    }
}

fn load_csv(path: &str) -> Result<Dataset, CliError> {
    csv::read_dataset_path(Path::new(path))
        .map_err(|e| CliError::Data(format!("reading {path}: {e}")))
}

fn parse_model(raw: &str) -> Result<ModelKind, CliError> {
    match raw {
        "linreg" => Ok(ModelKind::LinearRegression),
        "logreg" => Ok(ModelKind::LogisticRegression),
        "svm" => Ok(ModelKind::LinearSvm),
        other => Err(CliError::Market(format!(
            "unknown model {other:?} (expected linreg|logreg|svm)"
        ))),
    }
}

fn train_weights(kind: ModelKind, ds: &Dataset, ridge: f64) -> Result<Vector, CliError> {
    match kind {
        ModelKind::LinearRegression => {
            ridge_closed_form(ds, ridge).map_err(|e| CliError::Market(e.to_string()))
        }
        ModelKind::LogisticRegression => {
            Ok(newton_logistic(&LogisticLoss::ridge(ridge), ds, TrainConfig::default()).weights)
        }
        ModelKind::LinearSvm => {
            let mu = if ridge > 0.0 { ridge } else { 1e-3 };
            Ok(
                gradient_descent(&SmoothedHingeLoss::new(mu, 0.5), ds, TrainConfig::default())
                    .weights,
            )
        }
    }
}

fn cmd_catalog() -> Result<String, CliError> {
    let mut out = String::from("dataset\ttask\tpaper_n1\tpaper_n2\td\n");
    for spec in &catalog::TABLE3 {
        let task = match spec.task {
            catalog::Task::Regression => "regression",
            catalog::Task::Classification => "classification",
        };
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            spec.name, task, spec.paper_n_train, spec.paper_n_test, spec.d
        )
        .expect("string write");
    }
    Ok(out)
}

fn cmd_summarize(args: &Args) -> Result<String, CliError> {
    let ds = load_csv(args.require("csv")?)?;
    let s = stats::summarize(&ds);
    let mut out = String::new();
    writeln!(out, "rows\t{}", s.n).unwrap();
    writeln!(out, "features\t{}", s.d).unwrap();
    writeln!(out, "target_mean\t{:.6}", s.target_mean).unwrap();
    writeln!(out, "target_sd\t{:.6}", s.target_sd).unwrap();
    if let Some(p) = s.positive_rate {
        writeln!(out, "positive_rate\t{p:.4}").unwrap();
    }
    for (j, (m, sd)) in s.feature_means.iter().zip(&s.feature_sds).enumerate() {
        writeln!(out, "feature_{j}\tmean {m:.4}\tsd {sd:.4}").unwrap();
    }
    Ok(out)
}

fn cmd_train(args: &Args) -> Result<String, CliError> {
    let ds = load_csv(args.require("csv")?)?;
    let kind = parse_model(args.require("model")?)?;
    let ridge = args.get_f64("ridge", 1e-6)?;
    let w = train_weights(kind, &ds, ridge)?;
    let mut out = String::new();
    writeln!(out, "model\t{}", kind.name()).unwrap();
    for (j, wj) in w.as_slice().iter().enumerate() {
        writeln!(out, "w{j}\t{wj:.10}").unwrap();
    }
    let eval_ds = match args.get("eval-csv") {
        Some(p) => load_csv(p)?,
        None => ds,
    };
    match kind {
        ModelKind::LinearRegression => {
            if let EvalReport::Regression { mse, rmse, r2 } = evaluate_regression(&w, &eval_ds) {
                writeln!(out, "mse\t{mse:.6}\nrmse\t{rmse:.6}\nr2\t{r2:.6}").unwrap();
            }
        }
        _ => {
            if let EvalReport::Classification {
                accuracy,
                precision,
                recall,
                f1,
                ..
            } = evaluate_classification(&w, &eval_ds)
            {
                writeln!(
                    out,
                    "accuracy\t{accuracy:.4}\nprecision\t{precision:.4}\nrecall\t{recall:.4}\nf1\t{f1:.4}"
                )
                .unwrap();
            }
        }
    }
    Ok(out)
}

fn parse_value_curve(args: &Args) -> Result<ValueCurve, CliError> {
    let vmin = args.get_f64("vmin", 2.0)?;
    let vmax = args.get_f64("vmax", 100.0)?;
    let shape = match args.get("value").unwrap_or("concave") {
        "linear" => ValueShape::Linear,
        "convex" => ValueShape::Convex { power: 2.5 },
        "concave" => ValueShape::Concave { power: 2.5 },
        "sigmoid" => ValueShape::Sigmoid { steepness: 8.0 },
        other => return Err(CliError::Market(format!("unknown value shape {other:?}"))),
    };
    Ok(ValueCurve::new(shape, vmin, vmax))
}

fn parse_demand_curve(args: &Args) -> Result<DemandCurve, CliError> {
    let shape = match args.get("demand").unwrap_or("uniform") {
        "uniform" => DemandShape::Uniform,
        "peak" => DemandShape::Peak {
            center: 0.5,
            width: 0.25,
        },
        "bimodal" => DemandShape::Bimodal { width: 0.15 },
        "increasing" => DemandShape::Increasing,
        "decreasing" => DemandShape::Decreasing,
        other => return Err(CliError::Market(format!("unknown demand shape {other:?}"))),
    };
    Ok(DemandCurve::new(shape))
}

fn derive_pricing(args: &Args) -> Result<(Vec<f64>, Vec<BuyerPoint>, PricingFunction), CliError> {
    let grid = args.get_grid("grid", (10.0, 100.0, 10))?;
    let value = parse_value_curve(args)?;
    let demand = parse_demand_curve(args)?;
    let buyers = mbp_core::market::curves::buyer_points(&grid, &value, &demand)
        .map_err(|e| CliError::Data(e.to_string()))?;
    let lambda = args.get_f64("lambda", 0.0)?;
    let sol = solve_bv_dp_fair(&buyers, lambda);
    Ok((grid, buyers, sol.pricing))
}

fn cmd_price(args: &Args) -> Result<String, CliError> {
    // The CSV is loaded to bind the listing to a concrete dataset (and to
    // fail early on a bad path); pricing itself depends on the curves.
    let _ds = load_csv(args.require("csv")?)?;
    let (grid, buyers, pricing) = derive_pricing(args)?;
    if let Some(out_path) = args.get("out") {
        // Emit the curve in the TSV dialect `audit --prices` consumes, so
        // `price --out F` composes with `audit --prices F`.
        let mut text = String::from("# x price\n");
        for (x, p) in pricing.grid().iter().zip(pricing.prices()) {
            text.push_str(&format!("{x} {p}\n"));
        }
        std::fs::write(out_path, text)
            .map_err(|e| CliError::Data(format!("writing {out_path}: {e}")))?;
    }
    let mut out = String::from("x\tvaluation\tdemand\tprice\n");
    for (p, b) in pricing.prices().iter().zip(&buyers) {
        writeln!(
            out,
            "{:.2}\t{:.3}\t{:.4}\t{:.4}",
            b.a, b.valuation, b.demand, p
        )
        .unwrap();
    }
    writeln!(out, "revenue\t{:.4}", revenue(&pricing, &buyers)).unwrap();
    writeln!(
        out,
        "affordability\t{:.4}",
        affordability(&pricing, &buyers)
    )
    .unwrap();
    for baseline in Baseline::ALL {
        let pf = baseline.pricing(&buyers);
        writeln!(
            out,
            "baseline_{}\trevenue {:.4}\taffordability {:.4}",
            baseline.name(),
            revenue(&pf, &buyers),
            affordability(&pf, &buyers)
        )
        .unwrap();
    }
    let clean = audit(&pricing, &grid, 10, 1e-6).is_clean();
    writeln!(out, "arbitrage_free\t{clean}").unwrap();
    Ok(out)
}

/// Loads a `x<TAB>price` TSV (as written by `price --out`) into a
/// validated pricing function. Shared by `audit` and `attack`.
fn load_prices_tsv(path: &str) -> Result<PricingFunction, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Data(format!("reading {path}: {e}")))?;
    let mut grid = Vec::new();
    let mut prices = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(x), Some(p)) = (parts.next(), parts.next()) else {
            return Err(CliError::Data(format!(
                "line {}: expected `x price`",
                i + 1
            )));
        };
        let x: f64 = x
            .parse()
            .map_err(|_| CliError::Data(format!("line {}: bad x {x:?}", i + 1)))?;
        let p: f64 = p
            .parse()
            .map_err(|_| CliError::Data(format!("line {}: bad price {p:?}", i + 1)))?;
        grid.push(x);
        prices.push(p);
    }
    PricingFunction::from_points(grid, prices).map_err(|e| CliError::Data(e.to_string()))
}

fn cmd_audit(args: &Args) -> Result<String, CliError> {
    let pf = load_prices_tsv(args.require("prices")?)?;
    let report = audit(&pf, pf.grid(), 10, 1e-6);
    let mut out = String::new();
    writeln!(
        out,
        "monotonicity_violations\t{}",
        report.monotonicity_violations.len()
    )
    .unwrap();
    for (a, b) in &report.monotonicity_violations {
        writeln!(out, "  price({a}) > price({b})").unwrap();
    }
    writeln!(out, "arbitrage_opportunities\t{}", report.arbitrage.len()).unwrap();
    for f in &report.arbitrage {
        writeln!(
            out,
            "  target x={} list={:.4} bundle={:?} costs {:.4} (margin {:.4})",
            f.target_precision,
            f.list_price,
            f.bundle,
            f.bundle_price,
            f.margin()
        )
        .unwrap();
    }
    writeln!(
        out,
        "verdict\t{}",
        if report.is_clean() {
            "CLEAN"
        } else {
            "ARBITRAGE"
        }
    )
    .unwrap();
    Ok(out)
}

fn cmd_attack(args: &Args) -> Result<String, CliError> {
    use mbp_testkit::{attack_curve, check_pricing, AttackConfig, Case, Corpus, OracleConfig};

    let pf = load_prices_tsv(args.require("prices")?)?;
    let seed = args.get_u64("seed", 42)?;
    let trials = args.get_u64("trials", 20_000)?;
    let bundle = args.get_usize("bundle", 5)?;
    let cfg = AttackConfig {
        seed,
        trials,
        max_bundle: bundle,
        ..AttackConfig::default()
    };
    let mut out = String::new();

    // Regression corpus replays before randomized search.
    let corpus_path = args.get("corpus").map(std::path::PathBuf::from);
    let mut corpus = match &corpus_path {
        Some(p) => Corpus::load(p).map_err(|e| CliError::Data(format!("corpus: {e}")))?,
        None => Corpus::default(),
    };
    let regressions = corpus.replay(&pf, cfg.tol);
    writeln!(out, "corpus_cases\t{}", corpus.cases().len()).unwrap();
    writeln!(out, "corpus_regressions\t{}", regressions.len()).unwrap();
    for v in &regressions {
        writeln!(out, "  {v}").unwrap();
    }

    let report = attack_curve(&pf, &cfg);
    writeln!(out, "seed\t{seed}").unwrap();
    writeln!(out, "trials\t{}", report.trials).unwrap();
    writeln!(out, "checks\t{}", report.checks).unwrap();
    writeln!(out, "violations\t{}", report.violations.len()).unwrap();
    for c in &report.violations {
        writeln!(out, "  trial {}: {}", c.trial, c.violation).unwrap();
    }

    let oracle = check_pricing(
        &pf,
        &OracleConfig {
            seed,
            ..OracleConfig::default()
        },
    );
    writeln!(out, "oracle_comparisons\t{}", oracle.comparisons).unwrap();
    writeln!(out, "oracle_max_divergence\t{:.3e}", oracle.max_divergence).unwrap();
    for d in &oracle.divergences {
        writeln!(out, "  {d}").unwrap();
    }

    // Persist fresh counterexamples so the defect can never silently return.
    if let Some(path) = &corpus_path {
        let mut added = 0;
        for c in &report.violations {
            if let Some(case) = Case::from_violation(&c.violation) {
                if corpus.add(case) {
                    added += 1;
                }
            }
        }
        if added > 0 {
            corpus
                .save(path)
                .map_err(|e| CliError::Data(format!("saving corpus: {e}")))?;
        }
        writeln!(out, "corpus_added\t{added}").unwrap();
    }

    let clean = report.is_clean() && regressions.is_empty() && oracle.is_clean();
    writeln!(
        out,
        "verdict\t{}",
        if clean { "CLEAN" } else { "EXPLOITABLE" }
    )
    .unwrap();
    Ok(out)
}

fn cmd_sell(args: &Args) -> Result<String, CliError> {
    use mbp_core::error::SquareLossTransform;
    use mbp_core::market::{Broker, PurchaseRequest};

    let ds = load_csv(args.require("csv")?)?;
    let kind = parse_model(args.require("model")?)?;
    let budget = args.get_f64("budget", f64::NAN)?;
    if !budget.is_finite() || budget < 0.0 {
        return Err(CliError::Args(ArgError::Required("budget".into())));
    }
    let seed = args.get_u64("seed", 7)?;
    let mut rng = seeded_rng(seed);
    let tt = ds.split(0.75, &mut rng);
    let (_, _, pricing) = derive_pricing(args)?;
    let mut broker = Broker::new(tt);
    broker
        .support(kind, args.get_f64("ridge", 1e-3)?)
        .map_err(|e| CliError::Market(e.to_string()))?;
    let sale = broker
        .buy(
            kind,
            PurchaseRequest::PriceBudget(budget),
            &pricing,
            &SquareLossTransform,
            &mut rng,
        )
        .map_err(|e| CliError::Market(e.to_string()))?;
    let mut out = String::new();
    writeln!(out, "model\t{}", kind.name()).unwrap();
    writeln!(out, "price\t{:.4}", sale.price).unwrap();
    writeln!(out, "ncp\t{:.6}", sale.ncp).unwrap();
    writeln!(out, "expected_error\t{:.6}", sale.expected_error).unwrap();
    for (j, wj) in sale.model.weights().as_slice().iter().enumerate() {
        writeln!(out, "w{j}\t{wj:.10}").unwrap();
    }
    if let Some(path) = args.get("out") {
        let mut buf = Vec::new();
        mbp_ml::persist::write_model(&sale.model, &mut buf)
            .map_err(|e| CliError::Data(e.to_string()))?;
        std::fs::write(path, buf).map_err(|e| CliError::Data(format!("writing {path}: {e}")))?;
        writeln!(out, "saved\t{path}").unwrap();
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    use mbp_core::error::SquareLossTransform;
    use mbp_core::market::simulation::{
        simulate_market, simulate_market_batched, simulate_market_sharded, SimulationConfig,
    };
    use mbp_core::market::{Broker, Seller};

    let seed = args.get_u64("seed", 7)?;
    let mut rng = seeded_rng(seed);
    let ds = match args.get("csv") {
        Some(p) => load_csv(p)?,
        // Default season: the paper's Simulated1 process, small enough to
        // run in well under a second.
        None => mbp_data::synth::simulated1(600, 4, 0.5, &mut rng),
    };
    let kind = match args.get("model") {
        Some(raw) => parse_model(raw)?,
        None => mbp_ml::ModelKind::LinearRegression,
    };
    let buyers = args.get_usize("buyers", 1000)?;
    if buyers == 0 {
        return Err(CliError::Args(ArgError::BadValue {
            flag: "buyers".into(),
            value: "0".into(),
            expected: "a positive integer",
        }));
    }
    let jitter = args.get_f64("jitter", 0.0)?;
    let ridge = args.get_f64("ridge", 1e-6)?;
    let grid = args.get_grid("grid", (10.0, 100.0, 10))?;
    let value = parse_value_curve(args)?;
    let demand = parse_demand_curve(args)?;
    let tt = ds.split(0.75, &mut rng);
    let seller = Seller::new(tt.clone(), grid, value, demand);
    let mut broker = Broker::new(tt);
    broker
        .support(kind, ridge)
        .map_err(|e| CliError::Market(e.to_string()))?;
    // λ = 0 reduces to the plain Theorem 10 revenue maximization that
    // `price_from_research` performs.
    let lambda = args.get_f64("lambda", 0.0)?;
    let pricing = solve_bv_dp_fair(&seller.buyer_population(), lambda).pricing;
    let cfg = SimulationConfig {
        n_buyers: buyers,
        valuation_jitter: jitter,
    };
    // --batch N serves buyers through the compiled-table batched quote
    // path: the pricing curve is published as a listing (compiling its
    // PricingTable) and purchases flow through Broker::buy_batch in
    // N-sized groups. The outcome depends only on --seed, never on N.
    let batch = match args.get("batch") {
        Some(raw) => {
            let n = raw
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    CliError::Args(ArgError::BadValue {
                        flag: "batch".into(),
                        value: raw.into(),
                        expected: "a positive integer",
                    })
                })?;
            Some(n)
        }
        None => None,
    };
    // --sharded splits the buyer stream across the thread pool with one
    // seed stream per shard; results depend only on --seed, never on the
    // thread count. The default path replays the exact pre-existing
    // sequential RNG stream.
    let outcome = if let Some(batch) = batch {
        broker
            .publish(kind, pricing.clone(), Box::new(SquareLossTransform))
            .map_err(|e| CliError::Market(e.to_string()))?;
        simulate_market_batched(&mut broker, &seller, kind, cfg, batch, seed ^ 0xba7c)
    } else if args.get_bool("sharded") {
        simulate_market_sharded(
            &mut broker,
            &seller,
            kind,
            &pricing,
            &SquareLossTransform,
            cfg,
            seed ^ 0x5a4d,
        )
    } else {
        simulate_market(
            &mut broker,
            &seller,
            kind,
            &pricing,
            &SquareLossTransform,
            cfg,
            &mut rng,
        )
    }
    .map_err(|e| CliError::Market(e.to_string()))?;
    let mut out = String::new();
    writeln!(out, "model\t{}", kind.name()).unwrap();
    writeln!(out, "buyers\t{buyers}").unwrap();
    writeln!(out, "served\t{}", outcome.served).unwrap();
    writeln!(out, "declined\t{}", outcome.declined).unwrap();
    writeln!(
        out,
        "predicted_revenue_per_buyer\t{:.4}",
        outcome.predicted_revenue_per_buyer
    )
    .unwrap();
    writeln!(
        out,
        "realized_revenue_per_buyer\t{:.4}",
        outcome.realized_revenue_per_buyer
    )
    .unwrap();
    writeln!(
        out,
        "predicted_affordability\t{:.4}",
        outcome.predicted_affordability
    )
    .unwrap();
    writeln!(
        out,
        "realized_affordability\t{:.4}",
        outcome.realized_affordability()
    )
    .unwrap();
    writeln!(out, "broker_revenue\t{:.4}", broker.total_revenue()).unwrap();
    Ok(out)
}

/// `mbp-market trace`: run a deterministic synthetic selling season with
/// causal tracing armed and dump the flight recorder.
///
/// The season is the same sharded Monte-Carlo market `simulate --sharded`
/// runs (so span contexts cross `mbp-par` worker threads), with the slow
/// threshold applied so tail-latency quotes are kept as exemplars carrying
/// their replay seed. The report lists the span/trace counts and every
/// exemplar; the full recorder dump is emitted as Chrome trace_event JSON
/// (inline, or to `--out`) and optionally as JSONL (`--jsonl`).
fn cmd_trace(args: &Args) -> Result<String, CliError> {
    use mbp_core::error::SquareLossTransform;
    use mbp_core::market::simulation::{simulate_market_sharded, SimulationConfig};
    use mbp_core::market::{Broker, Seller};

    let seed = args.get_u64("seed", 7)?;
    let buyers = args.get_usize("buyers", 300)?;
    let threshold_us = args.get_u64("slow-threshold-us", 1_000)?;
    let kind = match args.get("model") {
        Some(raw) => parse_model(raw)?,
        None => mbp_ml::ModelKind::LinearRegression,
    };
    mbp_obs::enable();
    mbp_obs::set_slow_threshold_micros(threshold_us);
    mbp_obs::set_tracing(true);

    let mut rng = seeded_rng(seed);
    let ds = mbp_data::synth::simulated1(600, 4, 0.5, &mut rng);
    let tt = ds.split(0.75, &mut rng);
    let grid = args.get_grid("grid", (10.0, 100.0, 10))?;
    let seller = Seller::new(
        tt.clone(),
        grid,
        parse_value_curve(args)?,
        parse_demand_curve(args)?,
    );
    let mut broker = Broker::new(tt);
    broker
        .support(kind, args.get_f64("ridge", 1e-6)?)
        .map_err(|e| CliError::Market(e.to_string()))?;
    let pricing = solve_bv_dp_fair(&seller.buyer_population(), 0.0).pricing;
    let outcome = simulate_market_sharded(
        &mut broker,
        &seller,
        kind,
        &pricing,
        &SquareLossTransform,
        SimulationConfig {
            n_buyers: buyers,
            valuation_jitter: args.get_f64("jitter", 0.0)?,
        },
        seed ^ 0x5a4d,
    )
    .map_err(|e| CliError::Market(e.to_string()))?;

    let spans = mbp_obs::recorder_snapshot();
    let exemplars = mbp_obs::exemplars();
    let quote_traces: std::collections::BTreeSet<u32> = spans
        .iter()
        .filter(|s| s.name == "mbp.core.buy")
        .map(|s| s.trace)
        .collect();

    let mut out = String::new();
    writeln!(out, "buyers\t{buyers}").unwrap();
    writeln!(out, "served\t{}", outcome.served).unwrap();
    writeln!(out, "declined\t{}", outcome.declined).unwrap();
    writeln!(out, "spans\t{}", spans.len()).unwrap();
    writeln!(out, "quote_traces\t{}", quote_traces.len()).unwrap();
    writeln!(out, "slow_threshold_us\t{threshold_us}").unwrap();
    writeln!(out, "exemplars\t{}", exemplars.len()).unwrap();
    for ex in &exemplars {
        writeln!(
            out,
            "  exemplar\tseed={}\tdur_us={:.1}\t{}({},{})\tchildren={}",
            ex.root.seed,
            ex.root.dur_nanos as f64 / 1_000.0,
            ex.root.name,
            ex.root.listing,
            ex.root.mechanism,
            ex.children.len()
        )
        .unwrap();
    }

    if let Some(path) = args.get("jsonl") {
        std::fs::write(path, mbp_obs::recorder_to_jsonl(&spans))
            .map_err(|e| CliError::Data(format!("writing {path}: {e}")))?;
        writeln!(out, "jsonl_out\t{path}").unwrap();
    }
    let chrome = mbp_obs::recorder_to_chrome_trace(&spans);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, chrome)
                .map_err(|e| CliError::Data(format!("writing {path}: {e}")))?;
            writeln!(out, "trace_out\t{path}").unwrap();
        }
        None => {
            out.push_str("── chrome-trace ──\n");
            out.push_str(&chrome);
        }
    }
    Ok(out)
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let file = std::fs::File::open(model_path)
        .map_err(|e| CliError::Data(format!("opening {model_path}: {e}")))?;
    let model = mbp_ml::persist::read_model(file).map_err(|e| CliError::Data(e.to_string()))?;
    let ds = load_csv(args.require("csv")?)?;
    if ds.d() != model.dim() {
        return Err(CliError::Data(format!(
            "model expects {} features but the CSV has {}",
            model.dim(),
            ds.d()
        )));
    }
    let mut out = String::from("row\tprediction\ttarget\n");
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let pred = if model.kind().is_classifier() {
            model.classify(x)
        } else {
            model.predict(x)
        };
        writeln!(out, "{i}\t{pred}\t{y}").unwrap();
    }
    let report = if model.kind().is_classifier() {
        evaluate_classification(model.weights(), &ds)
    } else {
        evaluate_regression(model.weights(), &ds)
    };
    match report {
        EvalReport::Regression { mse, rmse, r2 } => {
            writeln!(out, "mse\t{mse:.6}\nrmse\t{rmse:.6}\nr2\t{r2:.6}").unwrap();
        }
        EvalReport::Classification { accuracy, f1, .. } => {
            writeln!(out, "accuracy\t{accuracy:.4}\nf1\t{f1:.4}").unwrap();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that drain the process-global obs event buffer, so
    /// concurrently running tests cannot steal each other's events.
    static EVENTS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn argv(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_csv(name: &str, rows: usize, classify: bool) -> std::path::PathBuf {
        let mut rng = seeded_rng(9);
        let ds = if classify {
            mbp_data::synth::simulated2(rows, 3, 0.95, &mut rng)
        } else {
            mbp_data::synth::simulated1(rows, 3, 0.2, &mut rng)
        };
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut buf = Vec::new();
        csv::write_dataset(&ds, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run(&Args::parse(Vec::<String>::new()).unwrap()).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
    }

    #[test]
    fn catalog_lists_table3() {
        let out = run(&argv("catalog")).unwrap();
        assert!(out.contains("YearMSD"));
        assert!(out.contains("SUSY"));
        assert_eq!(out.lines().count(), 7); // header + 6 rows
    }

    #[test]
    fn summarize_reports_stats() {
        let path = temp_csv("sum.csv", 200, true);
        let out = run(&argv(&format!("summarize --csv {}", path.display()))).unwrap();
        assert!(out.contains("rows\t200"));
        assert!(out.contains("positive_rate"));
    }

    #[test]
    fn train_linreg_reports_fit() {
        let path = temp_csv("train.csv", 300, false);
        let out = run(&argv(&format!(
            "train --csv {} --model linreg",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("Lin. reg."));
        assert!(out.contains("r2"));
        // Noiseless-ish signal: R² should be high.
        let r2: f64 = out
            .lines()
            .find(|l| l.starts_with("r2"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(r2 > 0.9, "r2 {r2}");
    }

    #[test]
    fn train_logreg_reports_accuracy() {
        let path = temp_csv("clf.csv", 400, true);
        let out = run(&argv(&format!(
            "train --csv {} --model logreg --ridge 0.001",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("accuracy"));
        assert!(out.contains("f1"));
    }

    #[test]
    fn price_outputs_curve_and_dominates_baselines() {
        let path = temp_csv("price.csv", 100, false);
        let out = run(&argv(&format!(
            "price --csv {} --grid 20,100,9 --value convex --demand peak",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("arbitrage_free\ttrue"));
        let rev: f64 = out
            .lines()
            .find(|l| l.starts_with("revenue"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(rev > 0.0);
    }

    #[test]
    fn audit_flags_convex_prices() {
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prices.tsv");
        let mut text = String::from("# x price\n");
        for i in 1..=8 {
            text.push_str(&format!("{i} {}\n", i * i));
        }
        std::fs::write(&path, text).unwrap();
        let out = run(&argv(&format!("audit --prices {}", path.display()))).unwrap();
        assert!(out.contains("verdict\tARBITRAGE"), "{out}");
    }

    #[test]
    fn attack_breaks_convex_prices_and_clears_concave_ones() {
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        // Convex (superlinear) prices: bundling beats the list price.
        let bad = dir.join("attack-bad.tsv");
        let mut text = String::from("# x price\n");
        for i in 1..=8 {
            text.push_str(&format!("{i} {}\n", i * i));
        }
        std::fs::write(&bad, text).unwrap();
        let out = run(&argv(&format!(
            "attack --prices {} --seed 3 --trials 2000",
            bad.display()
        )))
        .unwrap();
        assert!(out.contains("verdict\tEXPLOITABLE"), "{out}");
        assert!(out.contains("violations\t"), "{out}");
        // Concave-through-origin prices survive the same search.
        let good = dir.join("attack-good.tsv");
        let mut text = String::from("# x price\n");
        for i in 1..=8 {
            text.push_str(&format!("{i} {}\n", 10.0 * (i as f64).sqrt()));
        }
        std::fs::write(&good, text).unwrap();
        let out = run(&argv(&format!(
            "attack --prices {} --seed 3 --trials 2000",
            good.display()
        )))
        .unwrap();
        assert!(out.contains("verdict\tCLEAN"), "{out}");
        assert!(out.contains("oracle_comparisons\t"), "{out}");
    }

    #[test]
    fn attack_persists_counterexamples_to_a_corpus() {
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("attack-corpus-bad.tsv");
        let mut text = String::from("# x price\n");
        for i in 1..=6 {
            text.push_str(&format!("{i} {}\n", i * i * 2));
        }
        std::fs::write(&bad, text).unwrap();
        let corpus = dir.join("attack-corpus.txt");
        std::fs::remove_file(&corpus).ok();
        let out = run(&argv(&format!(
            "attack --prices {} --seed 5 --trials 2000 --corpus {}",
            bad.display(),
            corpus.display()
        )))
        .unwrap();
        assert!(out.contains("verdict\tEXPLOITABLE"), "{out}");
        assert!(corpus.exists(), "corpus file should be written");
        // Re-running replays the persisted cases as regressions.
        let out = run(&argv(&format!(
            "attack --prices {} --seed 5 --trials 100 --corpus {}",
            bad.display(),
            corpus.display()
        )))
        .unwrap();
        assert!(!out.contains("corpus_regressions\t0"), "{out}");
        std::fs::remove_file(&corpus).ok();
    }

    #[test]
    fn sell_then_predict_roundtrip() {
        let csv = temp_csv("sellout.csv", 300, false);
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        let model_path = dir.join("bought.model.tsv");
        let out = run(&argv(&format!(
            "sell --csv {} --model linreg --budget 90 --grid 10,100,10 --out {}",
            csv.display(),
            model_path.display()
        )))
        .unwrap();
        assert!(out.contains("saved"));
        let pred_out = run(&argv(&format!(
            "predict --model {} --csv {}",
            model_path.display(),
            csv.display()
        )))
        .unwrap();
        assert!(pred_out.contains("r2"), "{pred_out}");
        // The noisy instance still explains most of the variance.
        let r2: f64 = pred_out
            .lines()
            .find(|l| l.starts_with("r2"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(r2 > 0.0, "r2 {r2}");
    }

    #[test]
    fn predict_rejects_dimension_mismatch() {
        let csv3 = temp_csv("dim3.csv", 50, false); // 3 features
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        let model_path = dir.join("dim2.model.tsv");
        let model =
            mbp_ml::LinearModel::new(ModelKind::LinearRegression, mbp_linalg::Vector::zeros(2));
        let mut buf = Vec::new();
        mbp_ml::persist::write_model(&model, &mut buf).unwrap();
        std::fs::write(&model_path, buf).unwrap();
        let err = run(&argv(&format!(
            "predict --model {} --csv {}",
            model_path.display(),
            csv3.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("features"));
    }

    #[test]
    fn price_out_composes_with_audit() {
        let csv = temp_csv("compose.csv", 80, false);
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        let out = dir.join("dp_prices.tsv");
        run(&argv(&format!(
            "price --csv {} --grid 20,100,9 --value concave --out {}",
            csv.display(),
            out.display()
        )))
        .unwrap();
        let audit_out = run(&argv(&format!("audit --prices {}", out.display()))).unwrap();
        assert!(audit_out.contains("verdict\tCLEAN"), "{audit_out}");
    }

    #[test]
    fn simulate_runs_on_synthetic_default() {
        let out = run(&argv("simulate --buyers 200 --seed 11")).unwrap();
        assert!(out.contains("served"), "{out}");
        assert!(out.contains("realized_revenue_per_buyer"));
        let served: usize = out
            .lines()
            .find(|l| l.starts_with("served"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        let declined: usize = out
            .lines()
            .find(|l| l.starts_with("declined"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(served + declined, 200);
    }

    #[test]
    fn metrics_out_writes_acceptance_metrics() {
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        run(&argv(&format!(
            "simulate --buyers 150 --seed 12 --metrics-out {}",
            path.display()
        )))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"mbp.core.buy.count\""), "{json}");
        assert!(json.contains("\"mbp.core.buy.seconds\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
        assert!(json.contains("\"mbp.optim.revenue.iterations\""), "{json}");
    }

    #[test]
    fn trace_appends_events_to_report() {
        let _guard = EVENTS_LOCK.lock().unwrap();
        let out = run(&argv("simulate --buyers 50 --seed 13 --trace")).unwrap();
        assert!(out.contains("── events ──"), "{out}");
        assert!(out.contains("\"target\""), "{out}");
    }

    #[test]
    fn trace_command_emits_chrome_trace_and_exemplars() {
        let _guard = EVENTS_LOCK.lock().unwrap();
        let out = run(&argv("trace --buyers 60 --seed 19 --slow-threshold-us 0")).unwrap();
        mbp_obs::set_tracing(false);
        mbp_obs::set_slow_threshold_micros(1_000);
        assert!(out.contains("quote_traces\t"), "{out}");
        let quote_traces: usize = out
            .lines()
            .find(|l| l.starts_with("quote_traces"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(quote_traces > 0, "{out}");
        // Threshold zero plants every root as slow: exemplars carry seeds.
        assert!(out.contains("exemplar\tseed="), "{out}");
        // The inline dump is Chrome trace_event JSON.
        assert!(out.contains("── chrome-trace ──"), "{out}");
        assert!(out.contains("\"traceEvents\""), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
        assert!(out.contains("mbp.core.buy"), "{out}");
    }

    #[test]
    fn trace_out_flag_writes_chrome_trace_file() {
        let _guard = EVENTS_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("season-trace.json");
        std::fs::remove_file(&path).ok();
        run(&argv(&format!(
            "simulate --buyers 40 --seed 29 --sharded --trace --trace-out {}",
            path.display()
        )))
        .unwrap();
        mbp_obs::set_tracing(false);
        mbp_obs::set_slow_threshold_micros(1_000);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("mbp.core.buy"), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn threads_flag_validates_and_configures_pool() {
        for bad in ["zero", "0", "-2"] {
            let err = run(&argv(&format!("catalog --threads {bad}"))).unwrap_err();
            assert!(
                matches!(err, CliError::Args(ArgError::BadValue { .. })),
                "--threads {bad} should be rejected"
            );
        }
        let out = run(&argv("catalog --threads 3")).unwrap();
        assert!(out.contains("YearMSD"));
        assert_eq!(mbp_par::default_threads(), 3);
        mbp_par::set_threads(0); // restore the process default for other tests
    }

    #[test]
    fn verbose_reports_effective_thread_pool() {
        let _guard = EVENTS_LOCK.lock().unwrap();
        let out = run(&argv("simulate --buyers 30 --seed 17 --verbose")).unwrap();
        assert!(out.contains("thread pool configured"), "{out}");
        assert!(out.contains("effective_threads"), "{out}");
    }

    #[test]
    fn simulate_sharded_is_deterministic_in_the_seed() {
        let a = run(&argv(
            "simulate --buyers 300 --seed 21 --jitter 0.05 --sharded",
        ))
        .unwrap();
        let b = run(&argv(
            "simulate --buyers 300 --seed 21 --jitter 0.05 --sharded",
        ))
        .unwrap();
        assert_eq!(a, b, "sharded season must be a pure function of --seed");
        let count = |report: &str, key: &str| -> usize {
            report
                .lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split('\t').nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(count(&a, "served") + count(&a, "declined"), 300);
    }

    #[test]
    fn simulate_batched_is_invariant_to_batch_size() {
        let a = run(&argv(
            "simulate --buyers 300 --seed 23 --jitter 0.05 --batch 16",
        ))
        .unwrap();
        let b = run(&argv(
            "simulate --buyers 300 --seed 23 --jitter 0.05 --batch 128",
        ))
        .unwrap();
        assert_eq!(a, b, "batched season must not depend on the batch size");
        assert!(a.contains("served\t"), "{a}");
    }

    #[test]
    fn simulate_batch_rejects_zero() {
        let err = run(&argv("simulate --buyers 100 --seed 3 --batch 0")).unwrap_err();
        assert!(err.to_string().contains("batch"), "{err}");
    }

    #[test]
    fn sell_within_budget() {
        let path = temp_csv("sell.csv", 300, false);
        let out = run(&argv(&format!(
            "sell --csv {} --model linreg --budget 30 --grid 10,100,10",
            path.display()
        )))
        .unwrap();
        let price: f64 = out
            .lines()
            .find(|l| l.starts_with("price"))
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap();
        assert!(price <= 30.0 + 1e-9);
        assert!(out.contains("w0"));
    }

    /// Satellite pin: replaying a WAL directory that does not exist (or
    /// exists but holds no segments) is a clean empty report, not an error.
    #[test]
    fn replay_of_missing_or_empty_wal_is_a_clean_empty_report() {
        let base = std::env::temp_dir().join("mbp-cli-tests");
        std::fs::create_dir_all(&base).unwrap();
        let missing = base.join("wal-never-created");
        let _ = std::fs::remove_dir_all(&missing);
        let out = run(&argv(&format!("replay --wal {}", missing.display()))).unwrap();
        assert!(out.contains("records\t0"), "{out}");
        assert!(out.contains("sales\t0"), "{out}");
        assert!(out.contains("recorded_revenue\t0.000000"), "{out}");
        assert!(out.contains("deterministic\ttrue"), "{out}");

        // Present-but-empty directory: identical contract.
        let empty = base.join("wal-empty-dir");
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let out = run(&argv(&format!("replay --wal {}", empty.display()))).unwrap();
        assert!(out.contains("segments\t0"), "{out}");
        assert!(out.contains("records\t0"), "{out}");
        assert!(out.contains("deterministic\ttrue"), "{out}");
    }

    /// `replay --curve` re-prices a captured history under ≥2 alternative
    /// schemes, reports counterfactual revenue for each, and the two-run
    /// determinism digest holds across separate CLI invocations.
    #[test]
    fn replay_reports_counterfactual_revenue_per_scheme_deterministically() {
        use mbp_core::market::DurabilitySink;

        let dir = std::env::temp_dir().join("mbp-cli-tests/wal-replay");
        let _ = std::fs::remove_dir_all(&dir);
        let (wal, recovery) =
            mbp_wal::Durability::open(&dir, mbp_wal::WalConfig::default()).unwrap();
        assert!(recovery.state.is_empty());
        wal.record_support(ModelKind::LinearRegression, 1e-6);
        let grid: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
        wal.record_publish(ModelKind::LinearRegression, &grid, &prices);
        for i in 0..20 {
            // NCPs chosen so every 1/ncp lands inside the default replay
            // grid [1, 129] rather than on the origin-ray clamp.
            let ncp = 0.1 + 0.04 * i as f64;
            wal.record_sale(&mbp_core::market::Transaction {
                kind: ModelKind::LinearRegression,
                ncp,
                price: 10.0 * (1.0 / ncp).sqrt(),
            });
        }
        wal.sync().unwrap();

        let cmd = format!("replay --wal {} --curve sqrt,linear", dir.display());
        let out = run(&argv(&cmd)).unwrap();
        assert!(out.contains("records\t22"), "{out}");
        assert!(out.contains("sales\t20"), "{out}");
        assert!(out.contains("scheme\tsqrt\trevenue\t"), "{out}");
        assert!(out.contains("scheme\tlinear\trevenue\t"), "{out}");
        assert!(out.contains("deterministic\ttrue"), "{out}");
        // The sqrt scheme is the same family the recorded prices came from
        // (the replay curve piecewise-linearly interpolates it over the
        // default grid), so its counterfactual revenue tracks the recorded
        // revenue closely; the linear scheme must genuinely differ.
        let field = |tag: &str, col: usize| -> f64 {
            out.lines()
                .find(|l| l.starts_with(tag))
                .and_then(|l| l.split('\t').nth(col))
                .unwrap()
                .parse()
                .unwrap()
        };
        let recorded = field("recorded_revenue", 1);
        let sqrt_rev = field("scheme\tsqrt", 3);
        let linear_rev = field("scheme\tlinear", 3);
        assert!(
            (recorded - sqrt_rev).abs() < 0.02 * recorded,
            "{recorded} vs {sqrt_rev}"
        );
        assert!(
            (sqrt_rev - linear_rev).abs() > 1.0,
            "schemes should price differently: {sqrt_rev} vs {linear_rev}"
        );

        // Cross-invocation determinism: a fresh run prints the same report.
        let again = run(&argv(&cmd)).unwrap();
        assert_eq!(out, again, "replay must be bit-stable across runs");
    }

    /// The usage screen advertises both halves of the durability surface.
    #[test]
    fn usage_mentions_wal_and_replay() {
        let out = usage();
        assert!(out.contains("--wal DIR"), "serve --wal missing from usage");
        assert!(out.contains("replay"), "replay missing from usage");
    }
}
