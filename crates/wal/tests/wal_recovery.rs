//! WAL recovery property suite, driven by the `mbp-testkit` crash-point
//! injector.
//!
//! The contract under test (satellite 1): over a seeded 10³-event
//! history, recovery from **every** record-boundary prefix — plus 64
//! seeded torn-byte offsets — is bit-identical to an in-memory replay of
//! the surviving prefix; corrupted-checksum / bit-flipped records are
//! skipped with a counted warning, framing damage truncates, and nothing
//! ever panics. The concurrent half kills the WAL writer
//! mid-group-commit under racing `SharedBroker` buys and requires the
//! recovered ledger to be a sub-multiset of the in-memory one.

use mbp_core::market::DurabilitySink;
use mbp_ml::ModelKind;
use mbp_randx::seeded_rng;
use mbp_serve::wire::{digest_bytes, DIGEST_SEED};
use mbp_testkit::crash::{
    default_corpus_path, explore_crashes, CrashCase, CrashConfig, CrashHarness, CrashOracle,
    CrashOutcome, LogGeometry,
};
use mbp_testkit::schedule::{explore_crash, ScheduleConfig};
use mbp_wal::record::FILE_HEADER;
use mbp_wal::{encode_log, recover_bytes, Durability, RecoveredState, WalConfig, WalEvent};
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;

const KINDS: [ModelKind; 3] = [
    ModelKind::LinearRegression,
    ModelKind::LogisticRegression,
    ModelKind::LinearSvm,
];

/// A seeded mixed history: mostly sales, with supports, publishes, epoch
/// rollovers, and RNG cursors sprinkled in — every record type present.
fn seeded_history(seed: u64, n: usize) -> Vec<WalEvent> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|i| {
            let kind = KINDS[rng.gen_range(0usize..KINDS.len())];
            match rng.gen_range(0u32..100) {
                0..=2 => WalEvent::Support {
                    kind,
                    ridge: 10f64.powi(-(rng.gen_range(3i32..9))),
                },
                3..=6 => {
                    let k = rng.gen_range(3usize..8);
                    let base = rng.gen_range(5.0..15.0);
                    let grid: Vec<f64> = (1..=k).map(|j| j as f64).collect();
                    let prices: Vec<f64> = grid.iter().map(|x| base * x.sqrt()).collect();
                    WalEvent::Publish { kind, grid, prices }
                }
                7..=8 => WalEvent::Epoch { epoch: i as u64 },
                9 => WalEvent::RngCursor {
                    seed: rng.gen_range(0u64..u64::MAX),
                    draws: i as u64,
                },
                _ => WalEvent::Sale {
                    kind,
                    ncp: rng.gen_range(0.05..2.0),
                    price: rng.gen_range(0.5..60.0),
                },
            }
        })
        .collect()
}

/// Canonical digest of an event sequence: FNV over its bit-exact segment
/// encoding, so equal digests mean bit-identical recovered events.
fn seq_digest(events: &[WalEvent]) -> u64 {
    digest_bytes(DIGEST_SEED, &encode_log(events).bytes)
}

fn geometry(events: &[WalEvent]) -> LogGeometry {
    let log = encode_log(events);
    LogGeometry {
        bytes: log.bytes,
        header_len: FILE_HEADER.len(),
        record_ends: log.record_ends,
        content_spans: log.content_spans,
    }
}

fn outcome(bytes: &[u8]) -> CrashOutcome {
    let log = recover_bytes(bytes);
    CrashOutcome {
        digest: seq_digest(&log.events),
        applied: log.events.len(),
        skipped: log.records_skipped,
        truncated: log.truncated_at.is_some(),
    }
}

/// Satellite 1: a 10³-event history survives every boundary prefix, 64
/// seeded torn cuts, and seeded content/framing bit flips; recovery is
/// bit-identical to the in-memory replay of the surviving prefix and
/// never panics. With over 1000 boundary schedules plus the sampled
/// cuts/flips, this is also the "clean implementation survives 10³
/// seeded crash schedules" acceptance gate.
#[test]
fn recovery_converges_from_every_crash_point_of_a_large_history() {
    let events = seeded_history(0x9a1_e57, 1_000);
    let geom = geometry(&events);
    let expect_prefix = |k: usize| seq_digest(&events[..k]);
    let expect_skip = |k: usize| {
        let mut rest = events.clone();
        rest.remove(k);
        seq_digest(&rest)
    };
    let oracle = CrashOracle {
        recover: &outcome,
        expect_prefix: &expect_prefix,
        expect_skip: &expect_skip,
    };
    let cfg = CrashConfig {
        seed: 0xc4a5_4b07,
        torn_cuts: 64,
        content_flips: 64,
        header_flips: 32,
        corpus: Some(default_corpus_path()),
    };
    let report = explore_crashes(&geom, &oracle, &cfg);
    assert!(
        report.converged(),
        "{}",
        report.failures.first().expect("failure present")
    );
    // Every boundary (0..=1000) plus the empty image ran exhaustively; the
    // sampled schedules can only add to that.
    assert!(
        report.schedules >= 1_002,
        "only {} schedules ran",
        report.schedules
    );
}

/// The recovered *state fold* (not just the event stream) matches the
/// in-memory fold of the surviving prefix, at a spread of boundary cuts.
#[test]
fn recovered_state_folds_match_in_memory_folds_at_boundaries() {
    let events = seeded_history(0x51a7e, 1_000);
    let log = encode_log(&events);
    for k in [0usize, 1, 7, 99, 500, 999, 1_000] {
        let upto = if k == 0 {
            FILE_HEADER.len()
        } else {
            log.record_ends[k - 1]
        };
        let recovered = recover_bytes(&log.bytes[..upto]);
        assert_eq!(recovered.events.len(), k);
        let from_disk = RecoveredState::from_events(&recovered.events);
        let in_memory = RecoveredState::from_events(&events[..k]);
        assert_eq!(from_disk.digest(), in_memory.digest(), "prefix {k}");
        assert_eq!(from_disk, in_memory, "prefix {k}");
    }
}

/// Satellite 2: concurrent buys against a `SharedBroker` wired to a real
/// WAL, writer killed mid-group-commit at a seeded point — the recovered
/// ledger must be a sub-multiset of the in-memory one, for every sampled
/// schedule. Failing case seeds persist to `testkit/corpus/crash.txt`.
#[test]
fn killed_group_commits_recover_a_subset_ledger_under_concurrency() {
    let base = std::env::temp_dir().join(format!("mbp-wal-crash-sched-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Arc<std::sync::Mutex<Vec<PathBuf>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let harness: CrashHarness = {
        let base = base.clone();
        let dirs = Arc::clone(&dirs);
        Arc::new(move |case_seed: u64| {
            let dir = base.join(format!("case-{case_seed:016x}"));
            dirs.lock().unwrap().push(dir.clone());
            // Small groups + no periodic fsync: the buffered tail is real,
            // so a kill genuinely loses records.
            let cfg = WalConfig {
                group_commit: 4,
                fsync_interval: 0,
            };
            let (wal, recovery) = Durability::open(&dir, cfg).expect("fresh wal dir opens");
            assert!(recovery.state.is_empty());
            CrashCase {
                sink: Arc::clone(&wal) as Arc<dyn DurabilitySink>,
                kill: {
                    let wal = Arc::clone(&wal);
                    Arc::new(move || wal.kill_now())
                },
                recovered_sales: Arc::new(move || {
                    wal.recover_now()
                        .expect("recovery scans the dir")
                        .sales
                        .iter()
                        .map(|t| (t.ncp.to_bits(), t.price.to_bits()))
                        .collect()
                }),
            }
        })
    };
    let report = explore_crash(
        &ScheduleConfig {
            seed: 0x9a7e_57ee,
            interleavings: 40,
            threads: 4,
            ops_per_thread: 8,
            faults: true,
        },
        &harness,
        Some(&default_corpus_path()),
    );
    assert_eq!(report.explored, 40);
    assert!(
        report.failures.is_empty(),
        "{}",
        report.failures.first().expect("failure present")
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// `kill_at_byte` produces a genuinely torn tail on disk, and directory
/// recovery truncates it without losing the synced prefix.
#[test]
fn kill_at_byte_leaves_a_recoverable_torn_tail() {
    let dir = std::env::temp_dir().join(format!("mbp-wal-tornbyte-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = WalConfig {
        group_commit: 1,
        fsync_interval: 0,
    };
    let (wal, _) = Durability::open(&dir, cfg).expect("wal opens");
    // Each sale record is 33 bytes after the 8-byte file header; die in
    // the middle of the 6th record.
    wal.kill_at_byte(8 + 33 * 5 + 17);
    for i in 0..10 {
        wal.record_sale(&mbp_core::market::Transaction {
            kind: ModelKind::LinearRegression,
            ncp: 0.5,
            price: 10.0 + i as f64,
        });
    }
    assert!(wal.io_error_count() > 0, "the kill point must have fired");
    let state = wal.recover_now().expect("recovery scans the dir");
    assert_eq!(state.sales.len(), 5, "the torn 6th record must truncate");
    for (i, tx) in state.sales.iter().enumerate() {
        assert_eq!(tx.price.to_bits(), (10.0 + i as f64).to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
