//! The on-disk record format: wire-framed, checksummed, torn-tolerant.
//!
//! A WAL segment is an 8-byte file header followed by length-prefixed
//! records that reuse the `mbp-serve` wire discipline (magic bytes,
//! version, type tag, little-endian length) plus a per-record FNV-1a
//! checksum over the type byte and payload:
//!
//! ```text
//! file header:  'M' 'B' 'W' 'L'  ver  0 0 0
//! record:       'M' 'B'  ver  type  len:u32le  checksum:u64le  payload
//! ```
//!
//! Floats are stored as raw IEEE-754 little-endian bits, so an
//! encode/decode round trip is bit-identical by construction.
//!
//! **Decode never panics and never errors.** This module is in the
//! `mbp-lint` panic scope: WAL bytes read back from disk are untrusted
//! (torn writes, bit rot), and the decoder classifies damage instead of
//! propagating it —
//!
//! * a record whose *framing* is intact (valid magic/version/type/length,
//!   payload fully present) but whose checksum or payload content is wrong
//!   is **skipped** with a counted warning, and scanning resumes at the
//!   next record;
//! * damaged framing (bad magic, impossible length, or a record extending
//!   past end-of-stream — the torn tail of an interrupted group commit)
//!   **truncates** the stream at that offset: nothing after it can be
//!   trusted because record boundaries are gone.

use mbp_ml::ModelKind;
use mbp_serve::wire::{digest_bytes, kind_from_u8, kind_to_u8, DIGEST_SEED, MAGIC0, MAGIC1};

/// WAL format version.
pub const WAL_VERSION: u8 = 1;
/// Segment file header: magic `MBWL`, version, three reserved bytes.
pub const FILE_HEADER: [u8; 8] = [b'M', b'B', b'W', b'L', WAL_VERSION, 0, 0, 0];
/// Fixed per-record header size in bytes.
pub const RECORD_HEADER_LEN: usize = 16;
/// Hard cap on a record payload; anything larger is framing corruption.
pub const MAX_RECORD_PAYLOAD: usize = 64 * 1024;
/// Hard cap on the number of pricing knots a publish record may carry
/// (mirrors the serve wire cap; well above the 512-knot serving grids).
pub const MAX_PUBLISH_KNOTS: usize = 2048;

/// Record type tags.
pub mod record_type {
    /// `Support { kind, ridge }`.
    pub const SUPPORT: u8 = 1;
    /// `Publish { kind, grid, prices }`.
    pub const PUBLISH: u8 = 2;
    /// `Sale { kind, ncp, price }`.
    pub const SALE: u8 = 3;
    /// `Epoch { epoch }`.
    pub const EPOCH: u8 = 4;
    /// `RngCursor { seed, draws }`.
    pub const RNG_CURSOR: u8 = 5;
    /// `Snapshot { compacted_records }` — start of a compacted segment.
    pub const SNAPSHOT: u8 = 6;
}

/// One durable market event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A model kind was (re)trained onto the menu at `ridge`.
    Support {
        /// Model kind trained.
        kind: ModelKind,
        /// Ridge coefficient it was trained with.
        ridge: f64,
    },
    /// A listing was published from pricing knots `(grid[i], prices[i])`.
    Publish {
        /// Model kind listed.
        kind: ModelKind,
        /// Inverse-NCP knot positions.
        grid: Vec<f64>,
        /// Knot prices.
        prices: Vec<f64>,
    },
    /// One completed sale (a ledger transaction).
    Sale {
        /// Model kind sold.
        kind: ModelKind,
        /// NCP of the sold instance.
        ncp: f64,
        /// Price paid.
        price: f64,
    },
    /// An epoch rollover.
    Epoch {
        /// The epoch now current.
        epoch: u64,
    },
    /// RNG session cursor: base seed and seed-stream position.
    RngCursor {
        /// Session base seed.
        seed: u64,
        /// Seed-stream position marker.
        draws: u64,
    },
    /// First record of a compacted segment: everything accumulated from
    /// *earlier* segments is superseded by the records that follow.
    Snapshot {
        /// Number of live records the compaction preserved.
        compacted_records: u64,
    },
}

impl WalEvent {
    /// The record type tag for this event.
    pub fn type_tag(&self) -> u8 {
        match self {
            WalEvent::Support { .. } => record_type::SUPPORT,
            WalEvent::Publish { .. } => record_type::PUBLISH,
            WalEvent::Sale { .. } => record_type::SALE,
            WalEvent::Epoch { .. } => record_type::EPOCH,
            WalEvent::RngCursor { .. } => record_type::RNG_CURSOR,
            WalEvent::Snapshot { .. } => record_type::SNAPSHOT,
        }
    }
}

/// Appends `event` to `out` as one framed record; returns the encoded
/// record length in bytes.
pub fn append_record(out: &mut Vec<u8>, event: &WalEvent) -> usize {
    let ty = event.type_tag();
    let start = out.len();
    out.extend_from_slice(&[MAGIC0, MAGIC1, WAL_VERSION, ty]);
    out.extend_from_slice(&[0u8; 12]); // len + checksum, patched below
    let payload_start = out.len();
    match event {
        WalEvent::Support { kind, ridge } => {
            out.push(kind_to_u8(*kind));
            out.extend_from_slice(&ridge.to_bits().to_le_bytes());
        }
        WalEvent::Publish { kind, grid, prices } => {
            out.push(kind_to_u8(*kind));
            // LINT-ALLOW(cast): n <= MAX_PUBLISH_KNOTS (2048) by the min chain
            let n = grid.len().min(prices.len()).min(MAX_PUBLISH_KNOTS) as u32;
            out.extend_from_slice(&n.to_le_bytes());
            for (x, p) in grid.iter().zip(prices.iter()).take(n as usize) {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
                out.extend_from_slice(&p.to_bits().to_le_bytes());
            }
        }
        WalEvent::Sale { kind, ncp, price } => {
            out.push(kind_to_u8(*kind));
            out.extend_from_slice(&ncp.to_bits().to_le_bytes());
            out.extend_from_slice(&price.to_bits().to_le_bytes());
        }
        WalEvent::Epoch { epoch } => out.extend_from_slice(&epoch.to_le_bytes()),
        WalEvent::RngCursor { seed, draws } => {
            out.extend_from_slice(&seed.to_le_bytes());
            out.extend_from_slice(&draws.to_le_bytes());
        }
        WalEvent::Snapshot { compacted_records } => {
            out.extend_from_slice(&compacted_records.to_le_bytes());
        }
    }
    // LINT-ALLOW(cast): the largest record payload is 5 + 16 * MAX_PUBLISH_KNOTS bytes, far below u32::MAX
    let len = (out.len() - payload_start) as u32;
    let payload_digest = digest_bytes(digest_bytes(DIGEST_SEED, &[ty]), tail(out, payload_start));
    patch(out, start + 4, &len.to_le_bytes());
    patch(out, start + 8, &payload_digest.to_le_bytes());
    out.len() - start
}

/// The suffix of `buf` from `from` (empty when out of range).
fn tail(buf: &[u8], from: usize) -> &[u8] {
    buf.get(from..).unwrap_or(&[])
}

/// Overwrites `buf[at..at + bytes.len()]`; a no-op when out of range
/// (cannot happen for the fixed offsets used above, but the encoder stays
/// panic-free by construction rather than by argument).
fn patch(buf: &mut [u8], at: usize, bytes: &[u8]) {
    if let Some(dst) = buf.get_mut(at..at + bytes.len()) {
        dst.copy_from_slice(bytes);
    }
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

fn read_f64(buf: &[u8], at: usize) -> Option<f64> {
    Some(f64::from_bits(read_u64(buf, at)?))
}

/// Outcome of scanning one byte stream (see the module docs for the
/// skip-vs-truncate contract).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredLog {
    /// Every intact record, in log order.
    pub events: Vec<WalEvent>,
    /// Records whose framing was intact but whose checksum or payload
    /// content was corrupt: skipped with this counted warning.
    pub records_skipped: usize,
    /// Byte offset at which the stream stopped being parseable (torn tail
    /// or framing damage); `None` for a clean end-of-stream.
    pub truncated_at: Option<usize>,
    /// Total bytes consumed, including any skipped records.
    pub bytes_scanned: usize,
}

/// Decodes one WAL segment (file header + records). Never panics, never
/// errors: damage is reported through [`RecoveredLog::records_skipped`]
/// and [`RecoveredLog::truncated_at`].
///
/// An empty byte stream — and a stream holding only the file header — is
/// a *clean* empty log, not damage: that is exactly what a process killed
/// right after segment creation leaves behind.
pub fn recover_bytes(bytes: &[u8]) -> RecoveredLog {
    let mut log = RecoveredLog::default();
    if bytes.is_empty() {
        return log;
    }
    if bytes.len() < FILE_HEADER.len()
        || bytes.get(..4) != FILE_HEADER.get(..4)
        || bytes.get(4) != Some(&WAL_VERSION)
    {
        // A torn or foreign file header: nothing in the stream is framed.
        log.truncated_at = Some(0);
        return log;
    }
    let mut offset = FILE_HEADER.len();
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end of stream
        }
        if remaining < RECORD_HEADER_LEN {
            log.truncated_at = Some(offset); // torn header
            break;
        }
        let magic_ok = bytes.get(offset) == Some(&MAGIC0)
            && bytes.get(offset + 1) == Some(&MAGIC1)
            && bytes.get(offset + 2) == Some(&WAL_VERSION);
        let ty = bytes.get(offset + 3).copied().unwrap_or(0);
        let len = read_u32(bytes, offset + 4).unwrap_or(u32::MAX) as usize;
        if !magic_ok
            || !(record_type::SUPPORT..=record_type::SNAPSHOT).contains(&ty)
            || len > MAX_RECORD_PAYLOAD
        {
            log.truncated_at = Some(offset); // framing damage
            break;
        }
        if remaining < RECORD_HEADER_LEN + len {
            log.truncated_at = Some(offset); // torn record body
            break;
        }
        let stored_digest = read_u64(bytes, offset + 8).unwrap_or(0);
        let payload = bytes
            .get(offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + len)
            .unwrap_or(&[]);
        let next = offset + RECORD_HEADER_LEN + len;
        let actual = digest_bytes(digest_bytes(DIGEST_SEED, &[ty]), payload);
        if actual != stored_digest {
            log.records_skipped += 1; // counted warning; framing lets us resync
            offset = next;
            continue;
        }
        match decode_payload(ty, payload) {
            Some(event) => log.events.push(event),
            None => log.records_skipped += 1,
        }
        offset = next;
    }
    log.bytes_scanned = log.truncated_at.unwrap_or(bytes.len());
    log
}

/// Decodes one checksum-verified payload; `None` on a content-level
/// mismatch (unknown kind byte, inconsistent knot count), which the
/// caller counts as a skipped record.
fn decode_payload(ty: u8, payload: &[u8]) -> Option<WalEvent> {
    match ty {
        record_type::SUPPORT => {
            if payload.len() != 9 {
                return None;
            }
            Some(WalEvent::Support {
                kind: kind_from_u8(payload.first().copied()?)?,
                ridge: read_f64(payload, 1)?,
            })
        }
        record_type::PUBLISH => {
            let kind = kind_from_u8(payload.first().copied()?)?;
            let n = read_u32(payload, 1)? as usize;
            if n > MAX_PUBLISH_KNOTS || payload.len() != 5 + 16 * n {
                return None;
            }
            let mut grid = Vec::with_capacity(n);
            let mut prices = Vec::with_capacity(n);
            for i in 0..n {
                grid.push(read_f64(payload, 5 + 16 * i)?);
                prices.push(read_f64(payload, 5 + 16 * i + 8)?);
            }
            Some(WalEvent::Publish { kind, grid, prices })
        }
        record_type::SALE => {
            if payload.len() != 17 {
                return None;
            }
            Some(WalEvent::Sale {
                kind: kind_from_u8(payload.first().copied()?)?,
                ncp: read_f64(payload, 1)?,
                price: read_f64(payload, 9)?,
            })
        }
        record_type::EPOCH => {
            if payload.len() != 8 {
                return None;
            }
            Some(WalEvent::Epoch {
                epoch: read_u64(payload, 0)?,
            })
        }
        record_type::RNG_CURSOR => {
            if payload.len() != 16 {
                return None;
            }
            Some(WalEvent::RngCursor {
                seed: read_u64(payload, 0)?,
                draws: read_u64(payload, 8)?,
            })
        }
        record_type::SNAPSHOT => {
            if payload.len() != 8 {
                return None;
            }
            Some(WalEvent::Snapshot {
                compacted_records: read_u64(payload, 0)?,
            })
        }
        _ => None,
    }
}

/// A fully-encoded log with its record geometry, for byte-level crash and
/// corruption exploration (every cut and flip site is addressable without
/// re-parsing).
#[derive(Debug, Clone)]
pub struct EncodedLog {
    /// File header plus all records.
    pub bytes: Vec<u8>,
    /// `record_ends[k]` is the byte offset just past record `k`;
    /// `record_ends.last()` equals `bytes.len()`. The file header spans
    /// `0..FILE_HEADER.len()`.
    pub record_ends: Vec<usize>,
    /// Per record, the `(start, end)` byte range covering its checksum and
    /// payload — the region where a bit flip corrupts *content* while
    /// leaving framing (and therefore resynchronization) intact.
    pub content_spans: Vec<(usize, usize)>,
}

/// Encodes `events` as one segment image, recording record geometry.
pub fn encode_log(events: &[WalEvent]) -> EncodedLog {
    let mut bytes = Vec::with_capacity(FILE_HEADER.len() + events.len() * 40);
    bytes.extend_from_slice(&FILE_HEADER);
    let mut record_ends = Vec::with_capacity(events.len());
    let mut content_spans = Vec::with_capacity(events.len());
    for event in events {
        let start = bytes.len();
        append_record(&mut bytes, event);
        content_spans.push((start + 8, bytes.len()));
        record_ends.push(bytes.len());
    }
    EncodedLog {
        bytes,
        record_ends,
        content_spans,
    }
}

/// Sabotaged recovery used only to prove the crash-point injector has
/// teeth: when the stream ends cleanly at a record boundary, the final
/// applied event is dropped — the classic off-by-one of treating a clean
/// EOF as a torn tail. The injector's boundary-prefix schedules must
/// catch this in its first few probes.
#[cfg(test)]
pub(crate) fn recover_bytes_sabotaged(bytes: &[u8]) -> RecoveredLog {
    let mut log = recover_bytes(bytes);
    if log.truncated_at.is_none() {
        log.events.pop();
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::Support {
                kind: ModelKind::LinearRegression,
                ridge: 1e-6,
            },
            WalEvent::Publish {
                kind: ModelKind::LinearRegression,
                grid: vec![1.0, 2.0, 4.0],
                prices: vec![10.0, 14.0, 20.0],
            },
            WalEvent::Sale {
                kind: ModelKind::LinearRegression,
                ncp: 0.5,
                price: 11.25,
            },
            WalEvent::Epoch { epoch: 3 },
            WalEvent::RngCursor { seed: 7, draws: 42 },
            WalEvent::Snapshot {
                compacted_records: 5,
            },
        ]
    }

    #[test]
    fn round_trips_every_event_type_bit_identically() {
        let events = sample_events();
        let log = encode_log(&events);
        let recovered = recover_bytes(&log.bytes);
        assert_eq!(recovered.events, events);
        assert_eq!(recovered.records_skipped, 0);
        assert_eq!(recovered.truncated_at, None);
        assert_eq!(recovered.bytes_scanned, log.bytes.len());
    }

    #[test]
    fn empty_and_header_only_streams_are_clean() {
        let empty = recover_bytes(&[]);
        assert!(empty.events.is_empty() && empty.truncated_at.is_none());
        let header_only = recover_bytes(&FILE_HEADER);
        assert!(header_only.events.is_empty());
        assert_eq!(header_only.truncated_at, None);
        assert_eq!(header_only.records_skipped, 0);
    }

    #[test]
    fn torn_tail_truncates_at_last_full_record() {
        let events = sample_events();
        let log = encode_log(&events);
        for k in 0..events.len() {
            let end = log.record_ends[k];
            // Cut mid-way through record k+1 (or mid-header of it).
            let upto = if k + 1 < log.record_ends.len() {
                (end + log.record_ends[k + 1]) / 2
            } else {
                continue;
            };
            let recovered = recover_bytes(&log.bytes[..upto]);
            assert_eq!(recovered.events, events[..k + 1].to_vec(), "cut at {upto}");
            assert_eq!(recovered.truncated_at, Some(end));
        }
    }

    #[test]
    fn checksum_flip_skips_exactly_one_record() {
        let events = sample_events();
        let log = encode_log(&events);
        for (k, &(lo, hi)) in log.content_spans.iter().enumerate() {
            let mut bytes = log.bytes.clone();
            bytes[(lo + hi) / 2] ^= 0x10;
            let recovered = recover_bytes(&bytes);
            assert_eq!(recovered.records_skipped, 1, "flip in record {k}");
            let mut expect = events.clone();
            expect.remove(k);
            assert_eq!(recovered.events, expect);
            assert_eq!(recovered.truncated_at, None);
        }
    }

    #[test]
    fn framing_damage_truncates() {
        let events = sample_events();
        let log = encode_log(&events);
        // Corrupt the magic byte of record 2: truncation at its start.
        let start = log.record_ends[1];
        let mut bytes = log.bytes.clone();
        bytes[start] = 0xFF;
        let recovered = recover_bytes(&bytes);
        assert_eq!(recovered.events, events[..2].to_vec());
        assert_eq!(recovered.truncated_at, Some(start));
        // A foreign file header yields no events and truncation at 0.
        let foreign = recover_bytes(&[0u8; 64]);
        assert!(foreign.events.is_empty());
        assert_eq!(foreign.truncated_at, Some(0));
    }

    #[test]
    fn sabotaged_recovery_drops_the_final_record() {
        let events = sample_events();
        let log = encode_log(&events);
        let sabotaged = recover_bytes_sabotaged(&log.bytes);
        assert_eq!(sabotaged.events.len(), events.len() - 1);
    }

    /// Acceptance gate: the testkit crash-point injector must find the
    /// planted recovery bug (clean EOF treated as a torn tail, dropping
    /// the final record) in under five seconds. It lands in the first
    /// handful of boundary probes.
    #[test]
    fn crash_injector_finds_the_planted_recovery_bug_in_under_five_seconds() {
        use mbp_serve::wire::DIGEST_SEED;
        use mbp_testkit::crash::{
            explore_crashes, CrashConfig, CrashOracle, CrashOutcome, LogGeometry,
        };
        let start = std::time::Instant::now();
        // A 200-event history of all types (cycled, deterministic).
        let events: Vec<WalEvent> = (0..200)
            .flat_map(|i| {
                let mut block = sample_events();
                if let Some(WalEvent::Sale { ncp, price, .. }) = block.get_mut(2) {
                    *ncp = 0.1 + i as f64;
                    *price = 10.0 + i as f64;
                }
                block.into_iter().take(if i % 3 == 0 { 6 } else { 1 })
            })
            .collect();
        let log = encode_log(&events);
        let geom = LogGeometry {
            bytes: log.bytes.clone(),
            header_len: FILE_HEADER.len(),
            record_ends: log.record_ends.clone(),
            content_spans: log.content_spans.clone(),
        };
        let seq_digest = |evs: &[WalEvent]| digest_bytes(DIGEST_SEED, &encode_log(evs).bytes);
        let recover = |bytes: &[u8]| {
            let l = recover_bytes_sabotaged(bytes);
            CrashOutcome {
                digest: seq_digest(&l.events),
                applied: l.events.len(),
                skipped: l.records_skipped,
                truncated: l.truncated_at.is_some(),
            }
        };
        let expect_prefix = |k: usize| seq_digest(&events[..k]);
        let expect_skip = |k: usize| {
            let mut rest = events.clone();
            rest.remove(k);
            seq_digest(&rest)
        };
        let oracle = CrashOracle {
            recover: &recover,
            expect_prefix: &expect_prefix,
            expect_skip: &expect_skip,
        };
        let report = explore_crashes(&geom, &oracle, &CrashConfig::default());
        assert!(
            !report.converged(),
            "the injector must catch the planted off-by-one"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "detection took {:?}",
            start.elapsed()
        );
        // The sound decoder passes the identical schedules.
        let sound = |bytes: &[u8]| {
            let l = recover_bytes(bytes);
            CrashOutcome {
                digest: seq_digest(&l.events),
                applied: l.events.len(),
                skipped: l.records_skipped,
                truncated: l.truncated_at.is_some(),
            }
        };
        let oracle = CrashOracle {
            recover: &sound,
            expect_prefix: &expect_prefix,
            expect_skip: &expect_skip,
        };
        let report = explore_crashes(&geom, &oracle, &CrashConfig::default());
        assert!(
            report.converged(),
            "{}",
            report.failures.first().expect("failure present")
        );
    }
}
