//! # mbp-wal — durable write-ahead ledger for the marketplace broker
//!
//! The paper's broker is a pure function of its sale history: revenue,
//! arbitrage-freedom gates, and epoch rollovers all derive from the
//! ledger. This crate makes that history durable — an append-only binary
//! log of supports, publishes, sales, epoch rollovers, and RNG cursors —
//! and proves the converse: recovery replays log + snapshot back to
//! **bit-identical** broker state (weight bits, listing knot bits, ledger
//! sequence; see [`broker_fingerprint`]).
//!
//! Layout:
//!
//! * [`record`] — the framed, checksummed record format and the
//!   torn-tolerant byte-stream decoder (never panics, never errors on
//!   corrupt bytes: framed-but-corrupt records are *skipped* with a
//!   counted warning, framing damage *truncates* the tail);
//! * [`log`] — segment files, the group-commit/fsync write path with
//!   first-class crash hooks, and directory recovery;
//! * [`durability`] — state folding ([`RecoveredState`]), broker replay,
//!   snapshot compaction, and the live [`Durability`] handle that plugs
//!   into `Broker`/`SharedBroker` as a
//!   [`DurabilitySink`](mbp_core::market::DurabilitySink).
//!
//! Everything here is exercised by the `mbp-testkit` crash-point
//! injector: kill-at-record, kill-at-byte, and bit-flip schedules over
//! seeded histories, with recovery required to converge from every
//! surviving prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
pub mod log;
pub mod record;

pub use durability::{broker_fingerprint, CompactStats, Durability, RecoveredState, Recovery};
pub use log::{recover_dir, DirRecovery, WalConfig, WalWriter};
pub use record::{encode_log, recover_bytes, EncodedLog, RecoveredLog, WalEvent};

use std::fmt;

/// Errors raised by the durability layer. Corrupt *bytes* never raise
/// these — only real I/O failures, a killed writer, or recovered content
/// the market itself rejects.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// The writer was crashed by a fault-injection hook; the segment must
    /// not change again.
    Dead,
    /// Replaying recovered state into the broker failed.
    Market(mbp_core::market::MarketError),
    /// Recovered publish knots were rejected by the pricing layer.
    BadPoints(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Dead => write!(f, "wal writer is dead (crash point reached)"),
            WalError::Market(e) => write!(f, "replaying recovered state failed: {e}"),
            WalError::BadPoints(msg) => write!(f, "recovered pricing rejected: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<mbp_core::market::MarketError> for WalError {
    fn from(e: mbp_core::market::MarketError) -> Self {
        WalError::Market(e)
    }
}
