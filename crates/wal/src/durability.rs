//! State reconstruction and the live [`Durability`] sink.
//!
//! Broker state is a pure function of the event history: the menu depends
//! only on the *last* support per kind (training is deterministic), each
//! listing only on the *last* publish per kind (the compiled table is a
//! pure function of the knots), and the ledger on every sale in order.
//! [`RecoveredState`] folds a recovered event stream down to exactly that
//! — which is also why snapshot compaction is lossless: a compacted
//! segment carries the folded form and supersedes everything before it.
//!
//! Recovery equality is checked bit-for-bit via [`broker_fingerprint`]:
//! model weights, listing knots and prices (all as IEEE-754 bits), and the
//! ledger sequence. Internal caches (the ridge factorization cache) are
//! excluded — they are performance state, not market state.

use crate::log::{list_segments, recover_dir, segment_path, WalConfig, WalWriter};
use crate::record::WalEvent;
use crate::WalError;
use mbp_core::error::SquareLossTransform;
use mbp_core::market::{Broker, DurabilitySink, Transaction};
use mbp_core::pricing::PricingFunction;
use mbp_ml::ModelKind;
use mbp_serve::wire::{digest_bytes, kind_to_u8, DIGEST_SEED};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Every model kind, in the fixed order used for fingerprints and
/// compaction.
pub const ALL_KINDS: [ModelKind; 3] = [
    ModelKind::LinearRegression,
    ModelKind::LogisticRegression,
    ModelKind::LinearSvm,
];

/// The folded form of an event history: enough to rebuild a broker
/// bit-identically, and the exact payload of a compacted segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Last ridge per supported kind, in first-support order.
    supports: Vec<(ModelKind, f64)>,
    /// Last published knots per kind, in first-publish order.
    publishes: Vec<(ModelKind, Vec<f64>, Vec<f64>)>,
    /// Every sale, in log order (the ledger).
    pub sales: Vec<Transaction>,
    /// Current epoch (0 before any rollover).
    pub epoch: u64,
    /// Last RNG session cursor, if any.
    pub rng_cursor: Option<(u64, u64)>,
}

impl RecoveredState {
    /// Folds an event stream. A [`WalEvent::Snapshot`] marker resets the
    /// fold: the records that follow it re-state everything still live.
    pub fn from_events(events: &[WalEvent]) -> RecoveredState {
        let mut state = RecoveredState::default();
        for event in events {
            state.apply_event(event);
        }
        state
    }

    /// Folds one event into the state.
    pub fn apply_event(&mut self, event: &WalEvent) {
        match event {
            WalEvent::Support { kind, ridge } => {
                match self.supports.iter_mut().find(|(k, _)| k == kind) {
                    Some(slot) => slot.1 = *ridge,
                    None => self.supports.push((*kind, *ridge)),
                }
            }
            WalEvent::Publish { kind, grid, prices } => {
                match self.publishes.iter_mut().find(|(k, _, _)| k == kind) {
                    Some(slot) => {
                        slot.1 = grid.clone();
                        slot.2 = prices.clone();
                    }
                    None => self.publishes.push((*kind, grid.clone(), prices.clone())),
                }
            }
            WalEvent::Sale { kind, ncp, price } => self.sales.push(Transaction {
                kind: *kind,
                ncp: *ncp,
                price: *price,
            }),
            WalEvent::Epoch { epoch } => self.epoch = *epoch,
            WalEvent::RngCursor { seed, draws } => self.rng_cursor = Some((*seed, *draws)),
            WalEvent::Snapshot { .. } => *self = RecoveredState::default(),
        }
    }

    /// `true` when no event has been folded in.
    pub fn is_empty(&self) -> bool {
        self == &RecoveredState::default()
    }

    /// Number of live records a compaction of this state would write
    /// (excluding the snapshot marker itself).
    pub fn live_records(&self) -> usize {
        self.supports.len()
            + self.publishes.len()
            + self.sales.len()
            + usize::from(self.epoch > 0)
            + usize::from(self.rng_cursor.is_some())
    }

    /// The last recorded ridge for `kind`, if supported.
    pub fn support_ridge(&self, kind: ModelKind) -> Option<f64> {
        self.supports
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| *r)
    }

    /// The last published knots for `kind`, if listed.
    pub fn published_points(&self, kind: ModelKind) -> Option<(&[f64], &[f64])> {
        self.publishes
            .iter()
            .find(|(k, _, _)| *k == kind)
            .map(|(_, g, p)| (g.as_slice(), p.as_slice()))
    }

    /// Serializes the fold back to events: the compacted segment body,
    /// led by a [`WalEvent::Snapshot`] marker.
    pub fn to_events(&self) -> Vec<WalEvent> {
        let mut events = Vec::with_capacity(1 + self.live_records());
        events.push(WalEvent::Snapshot {
            compacted_records: self.live_records() as u64,
        });
        for (kind, ridge) in &self.supports {
            events.push(WalEvent::Support {
                kind: *kind,
                ridge: *ridge,
            });
        }
        for (kind, grid, prices) in &self.publishes {
            events.push(WalEvent::Publish {
                kind: *kind,
                grid: grid.clone(),
                prices: prices.clone(),
            });
        }
        for tx in &self.sales {
            events.push(WalEvent::Sale {
                kind: tx.kind,
                ncp: tx.ncp,
                price: tx.price,
            });
        }
        if self.epoch > 0 {
            events.push(WalEvent::Epoch { epoch: self.epoch });
        }
        if let Some((seed, draws)) = self.rng_cursor {
            events.push(WalEvent::RngCursor { seed, draws });
        }
        events
    }

    /// Canonical digest of the folded state (FNV over the canonical
    /// re-encoding), for determinism checks and replay reports.
    pub fn digest(&self) -> u64 {
        let encoded = crate::record::encode_log(&self.to_events());
        digest_bytes(DIGEST_SEED, &encoded.bytes)
    }

    /// Replays the fold into `broker`: supports retrain (deterministic),
    /// publishes recompile from the recorded knots (durable listings use
    /// the square-loss transform — the serve path's transform), and sales
    /// settle in log order. Attach any durability sink only *after* this
    /// call, or the replay is re-recorded.
    pub fn apply(&self, broker: &mut Broker) -> Result<(), WalError> {
        for (kind, ridge) in &self.supports {
            broker.support(*kind, *ridge)?;
        }
        for (kind, grid, prices) in &self.publishes {
            let pricing = PricingFunction::from_points(grid.clone(), prices.clone())
                .map_err(|e| WalError::BadPoints(format!("recovered publish for {kind:?}: {e}")))?;
            broker.publish(*kind, pricing, Box::new(SquareLossTransform))?;
        }
        broker.settle(self.sales.iter().cloned());
        Ok(())
    }
}

/// Bit-level fingerprint of the market state a recovery must reproduce:
/// per kind (fixed order), the optimal model's weight bits and the
/// listing's knot/price bits; then the ledger sequence. Two brokers with
/// equal fingerprints price and account identically.
pub fn broker_fingerprint(broker: &Broker) -> u64 {
    let mut h = DIGEST_SEED;
    for kind in ALL_KINDS {
        if let Some(model) = broker.optimal_model(kind) {
            h = digest_bytes(h, &[1, kind_to_u8(kind)]);
            for w in model.weights().as_slice() {
                h = digest_bytes(h, &w.to_bits().to_le_bytes());
            }
        }
        if let Some(pricing) = broker.listed_pricing(kind) {
            h = digest_bytes(h, &[2, kind_to_u8(kind)]);
            for x in pricing.grid() {
                h = digest_bytes(h, &x.to_bits().to_le_bytes());
            }
            for p in pricing.prices() {
                h = digest_bytes(h, &p.to_bits().to_le_bytes());
            }
        }
    }
    for tx in broker.ledger() {
        h = digest_bytes(h, &[3, kind_to_u8(tx.kind)]);
        h = digest_bytes(h, &tx.ncp.to_bits().to_le_bytes());
        h = digest_bytes(h, &tx.price.to_bits().to_le_bytes());
    }
    h
}

/// What [`Durability::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The folded pre-crash state (replay with [`RecoveredState::apply`]).
    pub state: RecoveredState,
    /// Corrupt-but-framed records skipped across all segments.
    pub records_skipped: usize,
    /// Segments with a torn or frame-damaged tail.
    pub truncated_segments: usize,
    /// Segment files scanned.
    pub segments: usize,
    /// Intact records replayed.
    pub records: usize,
}

struct DurState {
    writer: WalWriter,
    dir: PathBuf,
    segment: u64,
    cfg: WalConfig,
    /// Live mirror of the full logical state (recovered + appended):
    /// the compaction source.
    mirror: RecoveredState,
}

/// The live write-ahead handle: implements [`DurabilitySink`] by
/// mirroring every event into the current segment (group-commit buffered)
/// and an in-memory fold used for snapshot compaction.
///
/// Sink hooks cannot surface errors to the market hot path; I/O failures
/// and post-kill appends are counted in [`Durability::io_error_count`]
/// instead, and tests assert it stays zero (or exactly matches the
/// injected faults).
pub struct Durability {
    state: Mutex<DurState>,
    io_errors: AtomicU64,
    sales_logged: AtomicU64,
}

impl Durability {
    /// Recovers `dir` (creating it if missing) and opens a fresh segment
    /// for this process's appends. Returns the handle and what was
    /// recovered; replay `recovery.state` into a broker *before*
    /// attaching the handle as its sink.
    pub fn open(dir: &Path, cfg: WalConfig) -> Result<(Arc<Durability>, Recovery), WalError> {
        std::fs::create_dir_all(dir)?;
        let scanned = recover_dir(dir)?;
        let recovery = Recovery {
            state: RecoveredState::from_events(&scanned.events),
            records_skipped: scanned.records_skipped,
            truncated_segments: scanned.truncated_segments,
            segments: scanned.segments,
            records: scanned.events.len(),
        };
        let next = list_segments(dir)?.last().map_or(1, |(id, _)| id + 1);
        let writer = WalWriter::create(&segment_path(dir, next), cfg)?;
        let handle = Durability {
            state: Mutex::new(DurState {
                writer,
                dir: dir.to_path_buf(),
                segment: next,
                cfg,
                mirror: recovery.state.clone(),
            }),
            io_errors: AtomicU64::new(0),
            sales_logged: AtomicU64::new(0),
        };
        Ok((Arc::new(handle), recovery))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DurState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one event, updating the compaction mirror. Failures are
    /// counted, not raised: the market hot path must not stall on a dead
    /// or failing log.
    pub fn append(&self, event: WalEvent) {
        let mut st = self.lock();
        st.mirror.apply_event(&event);
        if st.writer.append(&event).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Commits the buffered group to the OS.
    pub fn commit(&self) -> Result<(), WalError> {
        self.lock().writer.commit()
    }

    /// Explicit durability point: commit + fsync.
    pub fn sync(&self) -> Result<(), WalError> {
        self.lock().writer.sync()
    }

    /// Snapshot compaction: folds the full logical state into a fresh
    /// segment (led by a [`WalEvent::Snapshot`] marker), fsyncs it, and
    /// only then retires every older segment. A crash before the retire
    /// step leaves both generations on disk — recovery handles that, the
    /// marker superseding the old segments.
    pub fn compact(&self) -> Result<CompactStats, WalError> {
        let mut st = self.lock();
        st.writer.sync()?;
        let next = st.segment + 1;
        let mut writer = WalWriter::create(&segment_path(&st.dir, next), st.cfg)?;
        let events = st.mirror.to_events();
        for event in &events {
            writer.append(event)?;
        }
        writer.sync()?;
        let old = std::mem::replace(&mut st.writer, writer);
        st.segment = next;
        let mut retired = 0usize;
        for (id, path) in list_segments(&st.dir)? {
            if id < next {
                std::fs::remove_file(&path)?;
                retired += 1;
            }
        }
        drop(old);
        Ok(CompactStats {
            segments_retired: retired,
            live_records: events.len().saturating_sub(1),
        })
    }

    /// Fault injection (see [`WalWriter::kill_now`]): crash the writer
    /// now, losing the buffered group.
    pub fn kill_now(&self) {
        self.lock().writer.kill_now();
    }

    /// Fault injection (see [`WalWriter::kill_at_byte`]): crash once the
    /// current segment file would exceed `total_bytes`.
    pub fn kill_at_byte(&self, total_bytes: u64) {
        self.lock().writer.kill_at_byte(total_bytes);
    }

    /// Recovers the WAL directory as a fresh reader would see it *right
    /// now* (buffered-but-uncommitted records are invisible, as after a
    /// crash) and folds it to state.
    pub fn recover_now(&self) -> Result<RecoveredState, WalError> {
        let st = self.lock();
        let scanned = recover_dir(&st.dir)?;
        Ok(RecoveredState::from_events(&scanned.events))
    }

    /// Append failures counted so far (0 on a healthy log).
    pub fn io_error_count(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Sales recorded through the sink interface.
    pub fn sales_logged(&self) -> u64 {
        self.sales_logged.load(Ordering::Relaxed)
    }

    /// The current segment id.
    pub fn segment(&self) -> u64 {
        self.lock().segment
    }

    /// The WAL directory.
    pub fn dir(&self) -> PathBuf {
        self.lock().dir.clone()
    }
}

/// What one [`Durability::compact`] call did.
#[derive(Debug, Clone, Copy)]
pub struct CompactStats {
    /// Old segment files deleted.
    pub segments_retired: usize,
    /// Live records carried into the compacted segment.
    pub live_records: usize,
}

impl DurabilitySink for Durability {
    fn record_sale(&self, tx: &Transaction) {
        self.sales_logged.fetch_add(1, Ordering::Relaxed);
        self.append(WalEvent::Sale {
            kind: tx.kind,
            ncp: tx.ncp,
            price: tx.price,
        });
    }

    fn record_sales(&self, txs: &[Transaction]) {
        self.sales_logged
            .fetch_add(txs.len() as u64, Ordering::Relaxed);
        let mut st = self.lock();
        for tx in txs {
            let event = WalEvent::Sale {
                kind: tx.kind,
                ncp: tx.ncp,
                price: tx.price,
            };
            st.mirror.apply_event(&event);
            if st.writer.append(&event).is_err() {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn record_support(&self, kind: ModelKind, ridge: f64) {
        self.append(WalEvent::Support { kind, ridge });
    }

    fn record_publish(&self, kind: ModelKind, grid: &[f64], prices: &[f64]) {
        self.append(WalEvent::Publish {
            kind,
            grid: grid.to_vec(),
            prices: prices.to_vec(),
        });
    }

    fn record_epoch(&self, epoch: u64) {
        self.append(WalEvent::Epoch { epoch });
    }

    fn record_rng_cursor(&self, seed: u64, draws: u64) {
        self.append(WalEvent::RngCursor { seed, draws });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_core::market::{concurrent::SharedBroker, PurchaseRequest};
    use mbp_data::synth;
    use mbp_randx::seeded_rng;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbp-wal-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_broker(seed: u64) -> Broker {
        let mut rng = seeded_rng(seed);
        let data = synth::simulated1(120, 3, 0.5, &mut rng).split(0.75, &mut rng);
        Broker::new(data)
    }

    fn pricing() -> PricingFunction {
        let grid: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let prices: Vec<f64> = grid.iter().map(|x| 10.0 * x.sqrt()).collect();
        PricingFunction::from_points(grid, prices).unwrap()
    }

    /// A full live session against a durability-attached SharedBroker
    /// recovers to a bit-identical broker in a fresh process image.
    #[test]
    fn recovery_is_bit_identical_to_the_live_broker() {
        let dir = temp_dir("bitident");
        let (wal, recovery) = Durability::open(&dir, WalConfig::default()).unwrap();
        assert!(recovery.state.is_empty());
        let sb = SharedBroker::with_durability(fresh_broker(11), Arc::clone(&wal) as Arc<_>);
        sb.support(ModelKind::LinearRegression, 1e-6).unwrap();
        sb.publish(
            ModelKind::LinearRegression,
            pricing(),
            Box::new(SquareLossTransform),
        )
        .unwrap();
        let mut rng = seeded_rng(12);
        let requests: Vec<PurchaseRequest> = (1..=20)
            .map(|i| PurchaseRequest::AtNcp(i as f64 * 0.1))
            .collect();
        for r in sb
            .buy_batch(ModelKind::LinearRegression, &requests, &mut rng)
            .unwrap()
        {
            r.unwrap();
        }
        wal.record_epoch(2);
        wal.record_rng_cursor(12, 20);
        wal.sync().unwrap();
        let live_print = sb.with_broker(|b| broker_fingerprint(b));
        assert_eq!(wal.sales_logged(), 20);
        assert_eq!(wal.io_error_count(), 0);
        drop(sb);
        drop(wal);

        // "Restart": recover the directory into a fresh broker over the
        // same dataset.
        let (_wal2, recovery) = Durability::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recovery.state.sales.len(), 20);
        assert_eq!(recovery.state.epoch, 2);
        assert_eq!(recovery.state.rng_cursor, Some((12, 20)));
        assert_eq!(recovery.records_skipped, 0);
        let mut restored = fresh_broker(11);
        recovery.state.apply(&mut restored).unwrap();
        assert_eq!(broker_fingerprint(&restored), live_print);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction retires old segments and preserves the fold exactly —
    /// including when stale segments survive a crash between the snapshot
    /// write and the retire step (the Snapshot marker supersedes them).
    #[test]
    fn compaction_retires_segments_and_preserves_state() {
        let dir = temp_dir("compact");
        let (wal, _) = Durability::open(&dir, WalConfig::default()).unwrap();
        wal.record_support(ModelKind::LinearRegression, 1e-6);
        wal.record_support(ModelKind::LinearRegression, 1e-3); // superseded
        let p = pricing();
        wal.record_publish(ModelKind::LinearRegression, p.grid(), p.prices());
        for i in 0..10 {
            wal.record_sale(&Transaction {
                kind: ModelKind::LinearRegression,
                ncp: 0.5,
                price: 10.0 + i as f64,
            });
        }
        wal.sync().unwrap();
        let before = wal.recover_now().unwrap();
        let stats = wal.compact().unwrap();
        assert_eq!(stats.segments_retired, 1);
        // 1 support (latest ridge only) + 1 publish + 10 sales.
        assert_eq!(stats.live_records, 12);
        let after = wal.recover_now().unwrap();
        assert_eq!(after.digest(), before.digest());
        assert_eq!(after.support_ridge(ModelKind::LinearRegression), Some(1e-3));

        // Simulate the crash-between-write-and-retire: re-materialize a
        // stale pre-snapshot segment *before* the compacted one and check
        // the marker still supersedes it.
        let stale = crate::record::encode_log(&[WalEvent::Sale {
            kind: ModelKind::LinearRegression,
            ncp: 9.0,
            price: 999.0,
        }]);
        std::fs::write(segment_path(&wal.dir(), 1), &stale.bytes).unwrap();
        let with_stale = wal.recover_now().unwrap();
        assert_eq!(with_stale.digest(), before.digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Empty and header-only WALs recover to a clean empty broker (the
    /// regression pinned for `mbp-market replay` / `serve --wal`).
    #[test]
    fn empty_and_header_only_wals_recover_to_a_clean_empty_broker() {
        for tag in ["empty-dir", "header-only"] {
            let dir = temp_dir(tag);
            std::fs::create_dir_all(&dir).unwrap();
            if tag == "header-only" {
                std::fs::write(segment_path(&dir, 1), crate::record::FILE_HEADER).unwrap();
            }
            let scanned = recover_dir(&dir).unwrap();
            let state = RecoveredState::from_events(&scanned.events);
            assert!(state.is_empty(), "{tag} must fold to the empty state");
            let mut broker = fresh_broker(31);
            let clean_print = broker_fingerprint(&broker);
            state.apply(&mut broker).unwrap();
            assert_eq!(broker_fingerprint(&broker), clean_print);
            assert_eq!(broker.ledger().len(), 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// The per-sale and batched sink paths log the same stream.
    #[test]
    fn batched_and_single_sale_hooks_agree() {
        let txs: Vec<Transaction> = (0..5)
            .map(|i| Transaction {
                kind: ModelKind::LinearRegression,
                ncp: 0.1 * (i + 1) as f64,
                price: i as f64,
            })
            .collect();
        let (d1, dir1) = {
            let dir = temp_dir("hooks1");
            let (d, _) = Durability::open(&dir, WalConfig::default()).unwrap();
            d.record_sales(&txs);
            d.sync().unwrap();
            (d.recover_now().unwrap(), dir)
        };
        let (d2, dir2) = {
            let dir = temp_dir("hooks2");
            let (d, _) = Durability::open(&dir, WalConfig::default()).unwrap();
            for tx in &txs {
                d.record_sale(tx);
            }
            d.sync().unwrap();
            (d.recover_now().unwrap(), dir)
        };
        assert_eq!(d1.digest(), d2.digest());
        std::fs::remove_dir_all(&dir1).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
}
