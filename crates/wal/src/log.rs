//! Segment files: buffered group-commit writes and directory recovery.
//!
//! A WAL directory holds numbered segment files `wal-000001.log`,
//! `wal-000002.log`, … Each process run appends to a fresh segment (never
//! to an old one — recovery is the only reader of history), and snapshot
//! compaction replaces retired segments with one compacted segment whose
//! first record is a [`WalEvent::Snapshot`] marker.
//!
//! ## Group commit and fsync points
//!
//! [`WalWriter::append`] encodes into an in-memory buffer; the buffer is
//! handed to the OS once [`WalConfig::group_commit`] records have
//! accumulated (or on an explicit [`WalWriter::commit`]), and `fsync` runs
//! every [`WalConfig::fsync_interval`] records (or on an explicit
//! [`WalWriter::sync`]). The durability contract is exactly what those
//! points imply: records behind the last `fsync` survive a machine crash;
//! records behind the last `commit` survive a process crash; buffered
//! records survive neither. Recovery tolerates every cut this produces.
//!
//! ## Fault injection
//!
//! The writer carries first-class crash hooks — [`WalWriter::kill_now`]
//! (drop the buffer mid-group-commit) and [`WalWriter::kill_at_byte`]
//! (truncate the file at an exact byte, simulating a torn OS write) — used
//! by the `mbp-testkit` crash-point explorer. A killed writer reports
//! [`WalError::Dead`](crate::WalError::Dead) on every later append instead
//! of touching the file again.

use crate::record::{append_record, recover_bytes, WalEvent, FILE_HEADER};
use crate::WalError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Buffering and durability knobs for a [`WalWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Records buffered in memory before one OS write. 1 writes through.
    pub group_commit: usize,
    /// Records between `fsync` calls; 0 syncs only on explicit
    /// [`WalWriter::sync`] / close.
    pub fsync_interval: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            group_commit: 64,
            fsync_interval: 512,
        }
    }
}

/// Append-only writer for one segment file.
#[derive(Debug)]
pub struct WalWriter {
    /// `None` once killed: the simulated crash already happened and the
    /// file must not change again.
    file: Option<File>,
    path: PathBuf,
    cfg: WalConfig,
    buf: Vec<u8>,
    records_buffered: usize,
    records_since_sync: usize,
    bytes_written: u64,
    records_written: u64,
    syncs: u64,
    kill_at: Option<u64>,
}

impl WalWriter {
    /// Creates (truncating) the segment at `path` and writes the file
    /// header.
    pub fn create(path: &Path, cfg: WalConfig) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&FILE_HEADER)?;
        Ok(WalWriter {
            file: Some(file),
            path: path.to_path_buf(),
            cfg: WalConfig {
                group_commit: cfg.group_commit.max(1),
                fsync_interval: cfg.fsync_interval,
            },
            buf: Vec::with_capacity(4096),
            records_buffered: 0,
            records_since_sync: 0,
            bytes_written: FILE_HEADER.len() as u64,
            records_written: 0,
            syncs: 0,
            kill_at: None,
        })
    }

    /// Appends one record to the group-commit buffer, flushing when the
    /// group is full.
    pub fn append(&mut self, event: &WalEvent) -> Result<(), WalError> {
        if self.file.is_none() {
            return Err(WalError::Dead);
        }
        append_record(&mut self.buf, event);
        self.records_buffered += 1;
        if self.records_buffered >= self.cfg.group_commit {
            self.commit()?;
        }
        Ok(())
    }

    /// Hands the buffered group to the OS, honoring a pending kill point,
    /// and fsyncs when the configured interval has elapsed.
    pub fn commit(&mut self) -> Result<(), WalError> {
        if self.buf.is_empty() {
            return if self.file.is_some() {
                Ok(())
            } else {
                Err(WalError::Dead)
            };
        }
        let Some(file) = self.file.as_mut() else {
            return Err(WalError::Dead);
        };
        if let Some(kill) = self.kill_at {
            let budget = kill.saturating_sub(self.bytes_written) as usize;
            if budget < self.buf.len() {
                // Torn OS write: the file gains exactly `budget` bytes of
                // the group, then the "process" dies.
                let partial = self.buf.get(..budget).unwrap_or(&[]);
                file.write_all(partial)?;
                let _ = file.sync_data();
                self.bytes_written += budget as u64;
                self.buf.clear();
                self.records_buffered = 0;
                self.file = None;
                return Err(WalError::Dead);
            }
        }
        file.write_all(&self.buf)?;
        self.bytes_written += self.buf.len() as u64;
        self.records_written += self.records_buffered as u64;
        self.records_since_sync += self.records_buffered;
        self.buf.clear();
        self.records_buffered = 0;
        if self.cfg.fsync_interval > 0 && self.records_since_sync >= self.cfg.fsync_interval {
            self.sync()?;
        }
        Ok(())
    }

    /// Commits the buffer and forces an `fsync`: an explicit durability
    /// point.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if !self.buf.is_empty() {
            self.commit()?;
        }
        let Some(file) = self.file.as_ref() else {
            return Err(WalError::Dead);
        };
        file.sync_data()?;
        self.records_since_sync = 0;
        self.syncs += 1;
        Ok(())
    }

    /// Fault injection: crash *now*, losing the in-memory group buffer
    /// (the mid-group-commit kill). The file keeps only what earlier
    /// commits wrote.
    pub fn kill_now(&mut self) {
        self.buf.clear();
        self.records_buffered = 0;
        self.file = None;
    }

    /// Fault injection: crash once the file would exceed `total_bytes`
    /// (header included) — the torn-write kill. The commit that crosses
    /// the boundary writes a partial group and dies.
    pub fn kill_at_byte(&mut self, total_bytes: u64) {
        self.kill_at = Some(total_bytes);
        if self.bytes_written >= total_bytes {
            self.kill_now();
        }
    }

    /// `true` once a kill hook fired; appends now return
    /// [`WalError::Dead`](crate::WalError::Dead).
    pub fn is_dead(&self) -> bool {
        self.file.is_none()
    }

    /// Bytes durably handed to the OS (file header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Records handed to the OS (excludes the still-buffered group).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Number of `fsync` calls issued.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The segment file path for `id` under `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:06}.log"))
}

/// Parses a segment id out of a `wal-NNNNNN.log` file name.
fn segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// All segment files under `dir`, ascending by id. A missing directory is
/// an empty log.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(segment_id) {
            segments.push((id, entry.path()));
        }
    }
    segments.sort_by_key(|(id, _)| *id);
    Ok(segments)
}

/// Outcome of scanning a whole WAL directory.
#[derive(Debug, Default)]
pub struct DirRecovery {
    /// Every intact record across all segments, in segment-then-log order.
    /// [`WalEvent::Snapshot`] markers are preserved; state reconstruction
    /// applies their superseding semantics.
    pub events: Vec<WalEvent>,
    /// Total corrupt-but-framed records skipped (counted warnings).
    pub records_skipped: usize,
    /// Segments whose tail was torn or frame-damaged.
    pub truncated_segments: usize,
    /// Segment files scanned.
    pub segments: usize,
    /// Total bytes scanned.
    pub bytes_scanned: u64,
}

/// Reads every segment under `dir` tolerantly. Only I/O failures error;
/// corrupt *content* never does (see [`crate::record::recover_bytes`]).
/// A missing or empty directory — and segments holding only a file
/// header — recover to a clean empty log.
pub fn recover_dir(dir: &Path) -> Result<DirRecovery, WalError> {
    let mut out = DirRecovery::default();
    for (_, path) in list_segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let log = recover_bytes(&bytes);
        out.segments += 1;
        out.records_skipped += log.records_skipped;
        out.truncated_segments += usize::from(log.truncated_at.is_some());
        out.bytes_scanned += log.bytes_scanned as u64;
        out.events.extend(log.events);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_ml::ModelKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbp-wal-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sale(i: usize) -> WalEvent {
        WalEvent::Sale {
            kind: ModelKind::LinearRegression,
            ncp: 0.25 + i as f64,
            price: 10.0 + i as f64,
        }
    }

    #[test]
    fn write_and_recover_a_directory() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::create(
            &segment_path(&dir, 1),
            WalConfig {
                group_commit: 4,
                fsync_interval: 0,
            },
        )
        .unwrap();
        for i in 0..10 {
            w.append(&sale(i)).unwrap();
        }
        w.sync().unwrap();
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.events.len(), 10);
        assert_eq!(rec.segments, 1);
        assert_eq!(rec.truncated_segments, 0);
        assert_eq!(w.records_written(), 10);
        assert!(w.syncs() >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_now_loses_only_the_buffered_group() {
        let dir = temp_dir("killnow");
        let mut w = WalWriter::create(
            &segment_path(&dir, 1),
            WalConfig {
                group_commit: 4,
                fsync_interval: 0,
            },
        )
        .unwrap();
        for i in 0..10 {
            w.append(&sale(i)).unwrap();
        }
        // 8 committed (two full groups), 2 buffered: the kill loses 2.
        w.kill_now();
        assert!(w.is_dead());
        assert!(matches!(w.append(&sale(99)), Err(WalError::Dead)));
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.events.len(), 8);
        assert_eq!(rec.truncated_segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_at_byte_leaves_a_torn_recoverable_tail() {
        let dir = temp_dir("killbyte");
        let mut w = WalWriter::create(
            &segment_path(&dir, 1),
            WalConfig {
                group_commit: 1,
                fsync_interval: 0,
            },
        )
        .unwrap();
        // Kill inside the 6th record: 5 survive, the 6th is torn.
        w.kill_at_byte(FILE_HEADER.len() as u64 + 5 * 33 + 10);
        let mut appended = 0;
        for i in 0..10 {
            match w.append(&sale(i)) {
                Ok(()) => appended += 1,
                Err(WalError::Dead) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(appended >= 5 && w.is_dead());
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.truncated_segments, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_concatenate_in_id_order() {
        let dir = temp_dir("segorder");
        for (seg, base) in [(1u64, 0usize), (2, 3), (3, 6)] {
            let mut w = WalWriter::create(&segment_path(&dir, seg), WalConfig::default()).unwrap();
            for i in base..base + 3 {
                w.append(&sale(i)).unwrap();
            }
            w.sync().unwrap();
        }
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.segments, 3);
        let ncps: Vec<f64> = rec
            .events
            .iter()
            .map(|e| match e {
                WalEvent::Sale { ncp, .. } => *ncp,
                _ => f64::NAN,
            })
            .collect();
        let expect: Vec<f64> = (0..9).map(|i| 0.25 + i as f64).collect();
        assert_eq!(ncps, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_a_clean_empty_log() {
        let dir = std::env::temp_dir().join("mbp-wal-does-not-exist-xyzzy");
        let rec = recover_dir(&dir).unwrap();
        assert_eq!(rec.events.len(), 0);
        assert_eq!(rec.segments, 0);
    }
}
