//! Property-based tests for the dataset substrate.

use mbp_data::stats::{kfold, summarize};
use mbp_data::{csv, Dataset, Standardizer};
use mbp_linalg::{Matrix, Vector};
use mbp_randx::seeded_rng;
use proptest::prelude::*;

fn dataset(xs: &[f64], ys: &[f64], d: usize) -> Dataset {
    let n = ys.len().min(xs.len() / d).max(1);
    let x = Matrix::from_vec(n, d, xs[..n * d].to_vec()).unwrap();
    let y = Vector::from_vec(ys[..n].to_vec());
    Dataset::new(x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Train/test split is an exact partition: every row appears exactly
    /// once across the two splits, with the requested proportions.
    #[test]
    fn split_partitions(
        xs in prop::collection::vec(-5.0..5.0f64, 20..80),
        frac in 0.1..0.9f64,
        seed in 0u64..1000,
    ) {
        let d = 2;
        let n = xs.len() / d;
        prop_assume!(n >= 4);
        // Unique targets so rows are identifiable.
        let ys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ds = dataset(&xs, &ys, d);
        let tt = ds.split(frac, &mut seeded_rng(seed));
        let mut seen: Vec<f64> = tt
            .train
            .y
            .as_slice()
            .iter()
            .chain(tt.test.y.as_slice())
            .copied()
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(seen, ys);
        let expected_train = ((n as f64) * frac).round() as usize;
        prop_assert!(tt.train.n().abs_diff(expected_train) <= 1);
    }

    /// Standardization is idempotent: standardizing an already-standardized
    /// dataset changes nothing (within float noise).
    #[test]
    fn standardizer_idempotent(xs in prop::collection::vec(-5.0..5.0f64, 20..60)) {
        let d = 2;
        let n = xs.len() / d;
        prop_assume!(n >= 5);
        let ys = vec![0.0; n];
        let ds = dataset(&xs, &ys, d);
        let once = Standardizer::fit(&ds).apply(&ds);
        let twice = Standardizer::fit(&once).apply(&once);
        for (a, b) in once.x.as_slice().iter().zip(twice.x.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// CSV round-trip preserves every value exactly (f64 Display is
    /// shortest-roundtrip in Rust).
    #[test]
    fn csv_roundtrip_exact(
        xs in prop::collection::vec(-1e6..1e6f64, 4..40),
        ys in prop::collection::vec(-1e6..1e6f64, 2..20),
    ) {
        let d = 2;
        let ds = dataset(&xs, &ys, d);
        let mut buf = Vec::new();
        csv::write_dataset(&ds, &mut buf).unwrap();
        let back = csv::read_dataset(&buf[..]).unwrap();
        prop_assert_eq!(back.x.as_slice(), ds.x.as_slice());
        prop_assert_eq!(back.y.as_slice(), ds.y.as_slice());
    }

    /// k-fold covers every row exactly once across validation folds, and
    /// the summary of the whole equals the demand-weighted recombination.
    #[test]
    fn kfold_is_exact_cover(
        n in 6usize..40,
        k in 2usize..6,
        seed in 0u64..100,
    ) {
        prop_assume!(k <= n);
        let xs: Vec<f64> = (0..n * 2).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ds = dataset(&xs, &ys, 2);
        let folds = kfold(&ds, k, &mut seeded_rng(seed));
        prop_assert_eq!(folds.len(), k);
        let mut val_rows: Vec<f64> = folds
            .iter()
            .flat_map(|f| f.validation.y.as_slice().iter().copied())
            .collect();
        val_rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(val_rows, ys);
        for f in &folds {
            prop_assert_eq!(f.train.n() + f.validation.n(), n);
        }
    }

    /// Summary statistics match direct computation.
    #[test]
    fn summary_matches_direct(
        xs in prop::collection::vec(-10.0..10.0f64, 10..60),
    ) {
        let d = 2;
        let n = xs.len() / d;
        prop_assume!(n >= 3);
        let ys: Vec<f64> = (0..n).map(|i| (i % 2) as f64 * 2.0 - 1.0).collect();
        let ds = dataset(&xs, &ys, d);
        let s = summarize(&ds);
        prop_assert_eq!(s.n, n);
        let direct_mean: f64 = (0..n).map(|i| ds.x.get(i, 0)).sum::<f64>() / n as f64;
        prop_assert!((s.feature_means[0] - direct_mean).abs() < 1e-9);
        // Labels alternate ±1.
        let pos = ys.iter().filter(|&&v| v > 0.0).count() as f64 / n as f64;
        prop_assert_eq!(s.positive_rate, Some(pos));
    }
}
