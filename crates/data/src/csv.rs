//! Minimal CSV I/O for datasets.
//!
//! Real marketplaces ingest seller tables from files; this module reads and
//! writes the simple numeric-CSV dialect the examples use (comma-separated,
//! optional header, last column is the target). It deliberately does not try
//! to be a general CSV parser — quoting and escaping are out of scope for
//! numeric tables.

use crate::Dataset;
use mbp_linalg::{Matrix, Vector};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as `f64`.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending cell text.
        cell: String,
    },
    /// A row had a different number of columns than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Expected column count.
        expected: usize,
        /// Observed column count.
        got: usize,
    },
    /// The input contained no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} columns, got {got}")
            }
            CsvError::Empty => write!(f, "csv contained no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Reads a dataset from CSV text: each row is `x₁,…,x_d,y`.
///
/// A first line that fails numeric parsing is treated as a header and
/// skipped; any later non-numeric cell is an error.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, CsvError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut width: Option<usize> = None;
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = cells.iter().map(|c| c.parse::<f64>()).collect();
        match parsed {
            Ok(vals) => {
                if let Some(w) = width {
                    if vals.len() != w {
                        return Err(CsvError::RaggedRow {
                            line: i + 1,
                            expected: w,
                            got: vals.len(),
                        });
                    }
                } else {
                    width = Some(vals.len());
                }
                rows.push(vals);
            }
            Err(_) => {
                if i == 0 && rows.is_empty() {
                    continue; // header row
                }
                let bad = cells
                    .iter()
                    .find(|c| c.parse::<f64>().is_err())
                    .unwrap_or(&"");
                return Err(CsvError::BadNumber {
                    line: i + 1,
                    cell: (*bad).to_string(),
                });
            }
        }
    }
    let width = width.ok_or(CsvError::Empty)?;
    if width < 2 {
        return Err(CsvError::RaggedRow {
            line: 1,
            expected: 2,
            got: width,
        });
    }
    let n = rows.len();
    let d = width - 1;
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for row in rows {
        data.extend_from_slice(&row[..d]);
        y.push(row[d]);
    }
    Ok(Dataset::new(
        Matrix::from_vec(n, d, data).expect("sized exactly"),
        Vector::from_vec(y),
    ))
}

/// Reads a dataset from a CSV file on disk.
pub fn read_dataset_path(path: &Path) -> Result<Dataset, CsvError> {
    read_dataset(std::fs::File::open(path)?)
}

/// Writes a dataset as CSV (`x₁,…,x_d,y` per row, header `f0..f{d-1},target`).
pub fn write_dataset<W: Write>(ds: &Dataset, mut writer: W) -> Result<(), CsvError> {
    let header: Vec<String> = (0..ds.d())
        .map(|j| format!("f{j}"))
        .chain(std::iter::once("target".to_string()))
        .collect();
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let mut line = String::with_capacity(16 * (ds.d() + 1));
        for v in x {
            line.push_str(&format!("{v}"));
            line.push(',');
        }
        line.push_str(&format!("{y}"));
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ds = Dataset::new(
            Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            Vector::from_vec(vec![0.5, -0.5]),
        );
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.x, ds.x);
        assert_eq!(back.y, ds.y);
    }

    #[test]
    fn header_is_skipped() {
        let text = "a,b,y\n1,2,3\n4,5,6\n";
        let ds = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(ds.n(), 2);
        assert_eq!(ds.d(), 2);
        assert_eq!(ds.y.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn bad_number_mid_file_errors() {
        let text = "1,2,3\n4,oops,6\n";
        match read_dataset(text.as_bytes()) {
            Err(CsvError::BadNumber { line: 2, cell }) => assert_eq!(cell, "oops"),
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn ragged_row_errors() {
        let text = "1,2,3\n4,5\n";
        assert!(matches!(
            read_dataset(text.as_bytes()),
            Err(CsvError::RaggedRow {
                line: 2,
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(read_dataset("".as_bytes()), Err(CsvError::Empty)));
        assert!(matches!(
            read_dataset("just,a,header\n".as_bytes()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn single_column_rejected() {
        assert!(read_dataset("1\n2\n".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_ignored() {
        let text = "\n1,2,3\n\n4,5,6\n\n";
        let ds = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(ds.n(), 2);
    }
}
