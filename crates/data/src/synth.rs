//! Synthetic data generators.
//!
//! `Simulated1` and `Simulated2` follow the paper's Section 6.1 description
//! verbatim; the remaining generators are shape-matched stand-ins for the
//! UCI datasets of Table 3 (see DESIGN.md §4 for the substitution argument).

use crate::Dataset;
use mbp_linalg::{Matrix, Vector};
use mbp_randx::{Distribution, MbpRng, Normal, StandardNormal, UniformRange};
use rand::Rng;

/// Draws a random unit-norm hyperplane in `R^d`.
fn random_hyperplane(d: usize, rng: &mut MbpRng) -> Vector {
    let v: Vector = (0..d).map(|_| StandardNormal.sample(rng)).collect();
    let n = v.norm2();
    if n > 0.0 {
        v.scale(1.0 / n)
    } else {
        Vector::filled(d, 1.0 / (d as f64).sqrt())
    }
}

/// The paper's `Simulated1` regression process: features drawn from a normal
/// distribution, targets the inner product with a hidden hyperplane, plus
/// optional observation noise with standard deviation `noise_sd`.
pub fn simulated1(n: usize, d: usize, noise_sd: f64, rng: &mut MbpRng) -> Dataset {
    let w = random_hyperplane(d, rng).scale(3.0);
    let noise = Normal::new(0.0, noise_sd);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let start = data.len();
        for _ in 0..d {
            data.push(StandardNormal.sample(rng));
        }
        let dot: f64 = data[start..]
            .iter()
            .zip(w.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        y.push(dot + noise.sample(rng));
    }
    Dataset::new(
        Matrix::from_vec(n, d, data).expect("sized exactly"),
        Vector::from_vec(y),
    )
}

/// The paper's `Simulated2` classification process: features normal; the
/// label of a point above the hidden hyperplane is `+1` with probability
/// `flip_keep` (0.95 in the paper) and `−1` otherwise; symmetric below.
///
/// Labels use the `{−1, +1}` convention of the logistic/hinge losses.
pub fn simulated2(n: usize, d: usize, flip_keep: f64, rng: &mut MbpRng) -> Dataset {
    assert!(
        (0.5..=1.0).contains(&flip_keep),
        "flip_keep must be in [0.5, 1], got {flip_keep}"
    );
    let w = random_hyperplane(d, rng);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let start = data.len();
        for _ in 0..d {
            data.push(StandardNormal.sample(rng));
        }
        let dot: f64 = data[start..]
            .iter()
            .zip(w.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let clean = if dot > 0.0 { 1.0 } else { -1.0 };
        let keep = rng.gen_bool(flip_keep);
        y.push(if keep { clean } else { -clean });
    }
    Dataset::new(
        Matrix::from_vec(n, d, data).expect("sized exactly"),
        Vector::from_vec(y),
    )
}

/// A generic dense regression process used as the stand-in for the UCI
/// regression sets (YearMSD, CASP): correlated-ish features (a mix of normal
/// and uniform columns to break perfect isotropy), a hidden linear signal
/// with decaying coefficients, heteroscedastic noise.
pub fn regression_standin(n: usize, d: usize, noise_sd: f64, rng: &mut MbpRng) -> Dataset {
    let coeffs: Vector = (0..d)
        .map(|j| {
            let decay = 1.0 / (1.0 + j as f64).sqrt();
            decay * StandardNormal.sample(rng) * 2.0
        })
        .collect();
    let u = UniformRange::new(-1.7, 1.7);
    let noise = Normal::new(0.0, noise_sd);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let start = data.len();
        for j in 0..d {
            // Alternate column families so the Gram matrix is not a scaled
            // identity — exercises the general SPD path of the trainers.
            let v = if j % 3 == 0 {
                u.sample(rng)
            } else {
                StandardNormal.sample(rng)
            };
            data.push(v);
        }
        let dot: f64 = data[start..]
            .iter()
            .zip(coeffs.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        // Heteroscedastic: noise grows with signal magnitude, as in audio /
        // physical-measurement regressions.
        y.push(dot + noise.sample(rng) * (1.0 + 0.1 * dot.abs()));
    }
    Dataset::new(
        Matrix::from_vec(n, d, data).expect("sized exactly"),
        Vector::from_vec(y),
    )
}

/// A generic binary classification process standing in for the UCI
/// classification sets (CovType binarized, SUSY): a nonlinear score (linear
/// part plus a quadratic correction on a few features) thresholded with
/// logistic label noise, so the Bayes classifier is *not* exactly linear —
/// linear models reach good-but-not-perfect accuracy, as on the real data.
pub fn classification_standin(n: usize, d: usize, label_noise: f64, rng: &mut MbpRng) -> Dataset {
    assert!(
        (0.0..0.5).contains(&label_noise),
        "label_noise must be in [0, 0.5), got {label_noise}"
    );
    let w = random_hyperplane(d, rng).scale(2.0);
    let quad_terms = d.min(3);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let start = data.len();
        for _ in 0..d {
            data.push(StandardNormal.sample(rng));
        }
        let row = &data[start..];
        let mut score: f64 = row.iter().zip(w.as_slice()).map(|(a, b)| a * b).sum();
        for item in row.iter().take(quad_terms) {
            score += 0.3 * (item * item - 1.0);
        }
        let p = 1.0 / (1.0 + (-score).exp());
        let p = p * (1.0 - 2.0 * label_noise) + label_noise;
        y.push(if rng.gen_bool(p.clamp(0.0, 1.0)) {
            1.0
        } else {
            -1.0
        });
    }
    Dataset::new(
        Matrix::from_vec(n, d, data).expect("sized exactly"),
        Vector::from_vec(y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_randx::seeded_rng;

    #[test]
    fn simulated1_shapes_and_signal() {
        let mut rng = seeded_rng(21);
        let ds = simulated1(500, 8, 0.1, &mut rng);
        assert_eq!(ds.n(), 500);
        assert_eq!(ds.d(), 8);
        // Targets should have variance well above the noise floor: there is a
        // real linear signal.
        let var = {
            let m = ds.y.mean();
            ds.y.map(|v| (v - m) * (v - m)).mean()
        };
        assert!(var > 0.5, "target variance {var} too small — no signal?");
    }

    #[test]
    fn simulated2_labels_are_plus_minus_one() {
        let mut rng = seeded_rng(22);
        let ds = simulated2(400, 5, 0.95, &mut rng);
        assert!(ds.y.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        // Roughly balanced classes (hyperplane through the origin).
        let pos = ds.y.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(pos > 100 && pos < 300, "pos count {pos}");
    }

    #[test]
    fn simulated2_flip_rate_matches() {
        // With flip_keep = 1.0 the labels are exactly the halfspace sign, so
        // the hidden hyperplane achieves zero training error for a linear
        // separator; sanity-check by re-deriving the separator sign pattern.
        let mut rng = seeded_rng(23);
        let ds = simulated2(300, 4, 1.0, &mut rng);
        assert!(ds.y.as_slice().iter().all(|&v| v.abs() == 1.0));
    }

    #[test]
    fn regression_standin_is_learnable() {
        let mut rng = seeded_rng(24);
        let ds = regression_standin(1000, 10, 0.5, &mut rng);
        assert_eq!(ds.d(), 10);
        assert!(ds.y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn classification_standin_balanced_and_noisy() {
        let mut rng = seeded_rng(25);
        let ds = classification_standin(2000, 6, 0.05, &mut rng);
        let pos = ds.y.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(pos > 600 && pos < 1400, "pos {pos}");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = simulated1(50, 4, 0.1, &mut seeded_rng(31));
        let b = simulated1(50, 4, 0.1, &mut seeded_rng(31));
        assert_eq!(a.y.as_slice(), b.y.as_slice());
        assert_eq!(a.x.as_slice(), b.x.as_slice());
    }

    #[test]
    #[should_panic(expected = "flip_keep")]
    fn simulated2_rejects_bad_flip() {
        simulated2(10, 2, 0.3, &mut seeded_rng(0));
    }
}
