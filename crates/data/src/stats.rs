//! Dataset summaries and k-fold splitting.
//!
//! Sellers describe listings with summary statistics (buyers decide what to
//! buy without seeing rows), and brokers validate model quality with cross
//! validation before putting a model type on the menu.

use crate::Dataset;
use mbp_randx::MbpRng;
use rand::seq::SliceRandom;

/// Per-column summary of a dataset's features and target.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Number of examples.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Per-feature means.
    pub feature_means: Vec<f64>,
    /// Per-feature standard deviations.
    pub feature_sds: Vec<f64>,
    /// Target mean.
    pub target_mean: f64,
    /// Target standard deviation.
    pub target_sd: f64,
    /// Fraction of `+1` targets when the target is a `{−1, +1}` label;
    /// `None` for non-binary targets.
    pub positive_rate: Option<f64>,
}

/// Computes a [`DatasetSummary`].
pub fn summarize(ds: &Dataset) -> DatasetSummary {
    let n = ds.n();
    let d = ds.d();
    let nf = n.max(1) as f64;
    let mut means = vec![0.0; d];
    for i in 0..n {
        for (m, v) in means.iter_mut().zip(ds.x.row(i)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= nf;
    }
    let mut vars = vec![0.0; d];
    for i in 0..n {
        for ((v, m), x) in vars.iter_mut().zip(&means).zip(ds.x.row(i)) {
            let c = x - m;
            *v += c * c;
        }
    }
    let sds: Vec<f64> = vars.into_iter().map(|v| (v / nf).sqrt()).collect();
    let target_mean = ds.y.mean();
    let target_sd =
        ds.y.map(|v| (v - target_mean) * (v - target_mean))
            .mean()
            .sqrt();
    // LINT-ALLOW(float): labels are exact ±1.0 by construction when binary.
    let binary = ds.y.as_slice().iter().all(|&v| v == 1.0 || v == -1.0);
    let positive_rate =
        (binary && n > 0).then(|| ds.y.as_slice().iter().filter(|&&v| v > 0.0).count() as f64 / nf);
    DatasetSummary {
        n,
        d,
        feature_means: means,
        feature_sds: sds,
        target_mean,
        target_sd,
        positive_rate,
    }
}

/// One fold of a k-fold split.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training portion (all rows outside the fold).
    pub train: Dataset,
    /// Validation portion (the fold itself).
    pub validation: Dataset,
}

/// Splits `ds` into `k` folds after a seeded shuffle. Fold sizes differ by
/// at most one row; every row appears in exactly one validation set.
///
/// # Panics
/// Panics unless `2 ≤ k ≤ n`.
pub fn kfold(ds: &Dataset, k: usize, rng: &mut MbpRng) -> Vec<Fold> {
    let n = ds.n();
    assert!(k >= 2 && k <= n, "need 2 <= k <= n (k = {k}, n = {n})");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val_idx = &idx[start..start + size];
        let train_idx: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push(Fold {
            train: ds.select(&train_idx),
            validation: ds.select(val_idx),
        });
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_linalg::{Matrix, Vector};
    use mbp_randx::seeded_rng;

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| (i + j) as f64);
        let y = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        Dataset::new(x, y)
    }

    #[test]
    fn summary_basics() {
        let ds = toy(10);
        let s = summarize(&ds);
        assert_eq!(s.n, 10);
        assert_eq!(s.d, 2);
        assert!((s.feature_means[0] - 4.5).abs() < 1e-12);
        assert!((s.feature_means[1] - 5.5).abs() < 1e-12);
        assert_eq!(s.positive_rate, Some(0.5));
        assert!((s.target_mean - 0.0).abs() < 1e-12);
        assert!((s.target_sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_non_binary_has_no_positive_rate() {
        let x = Matrix::zeros(3, 1);
        let y = Vector::from_vec(vec![0.5, 1.0, 2.0]);
        let s = summarize(&Dataset::new(x, y));
        assert_eq!(s.positive_rate, None);
    }

    #[test]
    fn kfold_partitions_exactly() {
        let ds = toy(23);
        let mut rng = seeded_rng(5);
        let folds = kfold(&ds, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let total_val: usize = folds.iter().map(|f| f.validation.n()).sum();
        assert_eq!(total_val, 23);
        for f in &folds {
            assert_eq!(f.train.n() + f.validation.n(), 23);
            // Sizes differ by at most one.
            assert!((4..=5).contains(&f.validation.n()));
        }
    }

    #[test]
    fn kfold_is_deterministic() {
        let ds = toy(12);
        let a = kfold(&ds, 3, &mut seeded_rng(1));
        let b = kfold(&ds, 3, &mut seeded_rng(1));
        assert_eq!(a[0].validation.y.as_slice(), b[0].validation.y.as_slice());
    }

    #[test]
    #[should_panic(expected = "2 <= k <= n")]
    fn kfold_rejects_k_of_one() {
        kfold(&toy(5), 1, &mut seeded_rng(0));
    }
}
