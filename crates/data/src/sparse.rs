//! Sparse datasets for high-dimensional embedding workloads.
//!
//! The paper's Example 3: "a standard word embedding approach that maps
//! each Twitter message to a (sparse) vector in a high dimensional space
//! `R^d`". This module provides the sparse counterpart of [`Dataset`]: rows
//! are [`SparseVector`]s, hypotheses stay dense. The generator synthesizes
//! hashed bag-of-words messages with a topic signal, standing in for the
//! GNIP feed the paper licenses (see DESIGN.md §4).

use crate::Dataset;
use mbp_linalg::{Matrix, SparseVector, Vector};
use mbp_randx::{Distribution, MbpRng, StandardNormal};
use rand::Rng;

/// A sparse labeled dataset: one [`SparseVector`] per example.
#[derive(Debug, Clone)]
pub struct SparseDataset {
    dim: usize,
    rows: Vec<SparseVector>,
    /// Targets (`{−1, +1}` for classification).
    pub y: Vector,
}

impl SparseDataset {
    /// Creates a sparse dataset, validating row dimensions.
    ///
    /// # Panics
    /// Panics on ragged input (row dim ≠ `dim`, or `rows.len() ≠ y.len()`).
    pub fn new(dim: usize, rows: Vec<SparseVector>, y: Vector) -> Self {
        assert_eq!(rows.len(), y.len(), "rows and targets must align");
        assert!(
            rows.iter().all(|r| r.dim() == dim),
            "all rows must share the ambient dimension"
        );
        SparseDataset { dim, rows, y }
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Ambient feature dimension `d`.
    pub fn d(&self) -> usize {
        self.dim
    }

    /// The example at `i` as `(sparse features, target)`.
    pub fn example(&self, i: usize) -> (&SparseVector, f64) {
        (&self.rows[i], self.y[i])
    }

    /// Average non-zeros per row.
    pub fn avg_nnz(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(SparseVector::nnz).sum::<usize>() as f64 / self.rows.len() as f64
    }

    /// Densifies into a [`Dataset`] (for cross-checking against the dense
    /// trainers on small instances; defeats the purpose at scale).
    pub fn to_dense(&self) -> Dataset {
        let mut data = Vec::with_capacity(self.n() * self.dim);
        for r in &self.rows {
            data.extend_from_slice(r.to_dense().as_slice());
        }
        Dataset::new(
            Matrix::from_vec(self.n(), self.dim, data).expect("sized exactly"),
            self.y.clone(),
        )
    }

    /// Splits into train/test with a seeded shuffle.
    ///
    /// # Panics
    /// Panics unless `0 < train_frac < 1`.
    pub fn split(&self, train_frac: f64, rng: &mut MbpRng) -> (SparseDataset, SparseDataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        use rand::seq::SliceRandom;
        let mut idx: Vec<usize> = (0..self.n()).collect();
        idx.shuffle(rng);
        let n_train = ((self.n() as f64) * train_frac).round() as usize;
        let n_train = n_train.clamp(1, self.n().saturating_sub(1).max(1));
        let take = |ids: &[usize]| {
            SparseDataset::new(
                self.dim,
                ids.iter().map(|&i| self.rows[i].clone()).collect(),
                ids.iter().map(|&i| self.y[i]).collect(),
            )
        };
        let (tr, te) = idx.split_at(n_train.min(self.n()));
        (take(tr), take(te))
    }
}

/// Synthesizes hashed bag-of-words "messages" with a linear topic signal:
/// each message activates `nnz` of `d` hashed token buckets with positive
/// weights; a hidden subset of tokens is "about the company", and the label
/// is `+1` with high probability when enough of them fire.
///
/// # Panics
/// Panics when `nnz` is zero or exceeds `d`, or `label_noise ∉ [0, 0.5)`.
pub fn sparse_text_standin(
    n: usize,
    d: usize,
    nnz: usize,
    label_noise: f64,
    rng: &mut MbpRng,
) -> SparseDataset {
    assert!(nnz > 0 && nnz <= d, "need 0 < nnz <= d");
    assert!(
        (0.0..0.5).contains(&label_noise),
        "label_noise must be in [0, 0.5)"
    );
    // A hidden dense topic direction over token buckets; only its sign
    // pattern matters for which tokens are "about the company".
    let topic: Vec<f64> = (0..d).map(|_| StandardNormal.sample(rng)).collect();
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        // Sample nnz distinct buckets (rejection; nnz << d in practice).
        let mut idx: Vec<u32> = Vec::with_capacity(nnz);
        while idx.len() < nnz {
            let i = rng.gen_range(0..d as u32);
            if !idx.contains(&i) {
                idx.push(i);
            }
        }
        let entries: Vec<(u32, f64)> = idx
            .into_iter()
            .map(|i| (i, 1.0 + rng.gen_range(0.0..1.0))) // tf-style weight
            .collect();
        let score: f64 = entries.iter().map(|&(i, v)| v * topic[i as usize]).sum();
        let clean = if score > 0.0 { 1.0 } else { -1.0 };
        let flip = rng.gen_bool(label_noise);
        y.push(if flip { -clean } else { clean });
        rows.push(SparseVector::new(d, entries).expect("valid construction"));
    }
    SparseDataset::new(d, rows, Vector::from_vec(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_randx::seeded_rng;

    #[test]
    fn generator_shapes() {
        let mut rng = seeded_rng(51);
        let ds = sparse_text_standin(200, 1000, 12, 0.05, &mut rng);
        assert_eq!(ds.n(), 200);
        assert_eq!(ds.d(), 1000);
        assert!((ds.avg_nnz() - 12.0).abs() < 1e-9);
        assert!(ds.y.as_slice().iter().all(|&v| v.abs() == 1.0));
    }

    #[test]
    fn densify_roundtrip() {
        let mut rng = seeded_rng(52);
        let ds = sparse_text_standin(20, 30, 5, 0.0, &mut rng);
        let dense = ds.to_dense();
        assert_eq!(dense.n(), 20);
        for i in 0..20 {
            let (sp, ys) = ds.example(i);
            let (row, yd) = dense.example(i);
            assert_eq!(ys, yd);
            let nnz_dense = row.iter().filter(|&&v| v != 0.0).count();
            assert_eq!(nnz_dense, sp.nnz());
        }
    }

    #[test]
    fn split_partitions() {
        let mut rng = seeded_rng(53);
        let ds = sparse_text_standin(100, 50, 4, 0.1, &mut rng);
        let (tr, te) = ds.split(0.8, &mut rng);
        assert_eq!(tr.n() + te.n(), 100);
        assert_eq!(tr.n(), 80);
        assert_eq!(tr.d(), 50);
    }

    #[test]
    #[should_panic(expected = "nnz")]
    fn generator_rejects_oversized_nnz() {
        sparse_text_standin(5, 3, 4, 0.0, &mut seeded_rng(0));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn ragged_rejected() {
        SparseDataset::new(3, vec![], Vector::zeros(1));
    }
}
