//! The Table 3 dataset catalog.
//!
//! Table 3 of the paper lists six datasets (three regression, three
//! classification) with their train/test sizes and feature counts. This
//! module reproduces that catalog and exposes a single [`load`] entry point
//! that materializes a (scaled) synthetic instance of each.

use crate::{synth, Standardizer, TrainTest};
use mbp_randx::{seeded_rng, MbpRng};

/// The learning task of a catalog dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Real-valued target; linear regression in the paper.
    Regression,
    /// Binary `{−1, +1}` target; logistic regression in the paper.
    Classification,
}

/// One row of Table 3: a named dataset with its paper-reported sizes.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name as printed in Table 3.
    pub name: &'static str,
    /// Task (regression vs classification).
    pub task: Task,
    /// Paper's train-set size `n₁`.
    pub paper_n_train: usize,
    /// Paper's test-set size `n₂`.
    pub paper_n_test: usize,
    /// Feature count `d`.
    pub d: usize,
}

impl DatasetSpec {
    /// Paper's total size `n₀ = n₁ + n₂`.
    pub fn paper_n_total(&self) -> usize {
        self.paper_n_train + self.paper_n_test
    }
}

/// The six datasets of Table 3, in paper order.
pub const TABLE3: [DatasetSpec; 6] = [
    DatasetSpec {
        name: "Simulated1",
        task: Task::Regression,
        paper_n_train: 7_500_000,
        paper_n_test: 2_500_000,
        d: 20,
    },
    DatasetSpec {
        name: "YearMSD",
        task: Task::Regression,
        paper_n_train: 386_509,
        paper_n_test: 128_836,
        d: 90,
    },
    DatasetSpec {
        name: "CASP",
        task: Task::Regression,
        paper_n_train: 34_298,
        paper_n_test: 11_433,
        d: 9,
    },
    DatasetSpec {
        name: "Simulated2",
        task: Task::Classification,
        paper_n_train: 7_500_000,
        paper_n_test: 2_500_000,
        d: 20,
    },
    DatasetSpec {
        name: "CovType",
        task: Task::Classification,
        paper_n_train: 435_759,
        paper_n_test: 145_253,
        d: 54,
    },
    DatasetSpec {
        name: "SUSY",
        task: Task::Classification,
        paper_n_train: 3_750_000,
        paper_n_test: 1_250_000,
        d: 18,
    },
];

/// Looks a spec up by (case-insensitive) name.
pub fn find(name: &str) -> Option<DatasetSpec> {
    TABLE3
        .iter()
        .copied()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Materializes a synthetic instance of `spec`.
///
/// `scale` multiplies the paper's sizes (`scale = 1.0` reproduces Table 3
/// exactly; the default harness uses small scales so figures regenerate in
/// seconds on a laptop). The result is standardized (fit on train) and split
/// with the paper's n₁/n₂ proportions. The generator routing:
///
/// * `Simulated1` / `Simulated2` use the paper's own processes;
/// * other regression rows use [`synth::regression_standin`];
/// * other classification rows use [`synth::classification_standin`].
pub fn load(spec: &DatasetSpec, scale: f64, seed: u64) -> TrainTest {
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let _span = mbp_obs::span("mbp.data.catalog.load");
    let n_total = ((spec.paper_n_total() as f64) * scale).round().max(20.0) as usize;
    mbp_obs::event(
        mbp_obs::Verbosity::Info,
        "mbp.data.catalog",
        "materializing dataset",
        &[
            ("name", spec.name.to_string()),
            ("rows", n_total.to_string()),
            ("d", spec.d.to_string()),
        ],
    );
    let mut rng: MbpRng = seeded_rng(seed ^ fxhash(spec.name));
    let ds = match (spec.task, spec.name) {
        (Task::Regression, "Simulated1") => synth::simulated1(n_total, spec.d, 1.0, &mut rng),
        (Task::Classification, "Simulated2") => synth::simulated2(n_total, spec.d, 0.95, &mut rng),
        (Task::Regression, _) => synth::regression_standin(n_total, spec.d, 1.0, &mut rng),
        (Task::Classification, _) => synth::classification_standin(n_total, spec.d, 0.05, &mut rng),
    };
    let frac = spec.paper_n_train as f64 / spec.paper_n_total() as f64;
    let tt = ds.split(frac, &mut rng);
    Standardizer::fit_apply(&tt)
}

/// Tiny FNV-style string hash for mixing dataset names into seeds.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper_numbers() {
        assert_eq!(TABLE3.len(), 6);
        let year = find("YearMSD").unwrap();
        assert_eq!(year.d, 90);
        assert_eq!(year.paper_n_train, 386_509);
        let susy = find("susy").unwrap();
        assert_eq!(susy.paper_n_test, 1_250_000);
        assert_eq!(susy.task, Task::Classification);
    }

    #[test]
    fn find_unknown_is_none() {
        assert!(find("MNIST").is_none());
    }

    #[test]
    fn load_scales_and_splits() {
        let spec = find("CASP").unwrap();
        let tt = load(&spec, 0.01, 7);
        let (n1, n2) = tt.sizes();
        let total = n1 + n2;
        assert!((400..=520).contains(&total), "total {total}");
        // Split proportion ~ paper's 75/25.
        let frac = n1 as f64 / total as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
        assert_eq!(tt.d(), 9);
    }

    #[test]
    fn load_is_deterministic() {
        let spec = find("Simulated1").unwrap();
        let a = load(&spec, 0.0001, 3);
        let b = load(&spec, 0.0001, 3);
        assert_eq!(a.train.y.as_slice(), b.train.y.as_slice());
    }

    #[test]
    fn classification_rows_have_sign_labels() {
        for name in ["Simulated2", "CovType", "SUSY"] {
            let spec = find(name).unwrap();
            let tt = load(&spec, 0.0002, 5);
            assert!(
                tt.train.y.as_slice().iter().all(|&v| v == 1.0 || v == -1.0),
                "{name} labels not in {{-1, +1}}"
            );
        }
    }
}
