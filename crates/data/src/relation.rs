//! A minimal relational layer: named-column tables feeding the market.
//!
//! The paper prices "machine learning over relational data" (title &
//! Section 1): sellers hold relations (Bloomberg feeds, GNIP audiences),
//! buyers pick a schema — features and a target — and the broker trains on
//! the resulting projection. [`Relation`] provides exactly the operations
//! that flow needs: typed named columns, selection, projection, equi-join,
//! and conversion to a trainable [`Dataset`].
//!
//! Feature *selection across listings* is deliberately not supported: the
//! paper's Section 3.4 shows that arbitrage-freeness across different
//! feature sets is an open problem, so each listing fixes one feature set
//! and the market prices only noise levels within it.

use crate::Dataset;
use mbp_linalg::{Matrix, Vector};
use std::collections::HashMap;
use std::fmt;

/// Errors from relational operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// Two columns with the same name would result.
    DuplicateColumn(String),
    /// Column lengths disagree.
    Ragged {
        /// Expected length.
        expected: usize,
        /// Observed length.
        got: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            RelationError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            RelationError::Ragged { expected, got } => {
                write!(f, "ragged column: expected {expected} rows, got {got}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

/// A named-column table of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    names: Vec<String>,
    /// Column-major storage: `columns[j][i]` is row `i` of column `j`.
    columns: Vec<Vec<f64>>,
}

impl Relation {
    /// Builds a relation from `(name, column)` pairs.
    pub fn new(cols: Vec<(&str, Vec<f64>)>) -> Result<Self, RelationError> {
        let mut names = Vec::with_capacity(cols.len());
        let mut columns = Vec::with_capacity(cols.len());
        let n = cols.first().map_or(0, |(_, c)| c.len());
        for (name, col) in cols {
            if names.iter().any(|x: &String| x == name) {
                return Err(RelationError::DuplicateColumn(name.to_string()));
            }
            if col.len() != n {
                return Err(RelationError::Ragged {
                    expected: n,
                    got: col.len(),
                });
            }
            names.push(name.to_string());
            columns.push(col);
        }
        Ok(Relation { names, columns })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column names in order.
    pub fn schema(&self) -> &[String] {
        &self.names
    }

    fn col_index(&self, name: &str) -> Result<usize, RelationError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// Borrows a column by name.
    pub fn column(&self, name: &str) -> Result<&[f64], RelationError> {
        Ok(&self.columns[self.col_index(name)?])
    }

    /// Projection: keeps the named columns, in the given order.
    pub fn project(&self, keep: &[&str]) -> Result<Relation, RelationError> {
        let mut names = Vec::with_capacity(keep.len());
        let mut columns = Vec::with_capacity(keep.len());
        for &name in keep {
            if names.iter().any(|x: &String| x == name) {
                return Err(RelationError::DuplicateColumn(name.to_string()));
            }
            let j = self.col_index(name)?;
            names.push(name.to_string());
            columns.push(self.columns[j].clone());
        }
        Ok(Relation { names, columns })
    }

    /// Selection: keeps rows where `predicate(column value)` holds on the
    /// named column.
    pub fn filter(
        &self,
        column: &str,
        predicate: impl Fn(f64) -> bool,
    ) -> Result<Relation, RelationError> {
        let j = self.col_index(column)?;
        let keep: Vec<usize> = self.columns[j]
            .iter()
            .enumerate()
            .filter(|&(_, &v)| predicate(v))
            .map(|(i, _)| i)
            .collect();
        let columns = self
            .columns
            .iter()
            .map(|col| keep.iter().map(|&i| col[i]).collect())
            .collect();
        Ok(Relation {
            names: self.names.clone(),
            columns,
        })
    }

    /// Inner equi-join on the named key columns. Right-side non-key columns
    /// are appended; a duplicate non-key name is an error. Keys are matched
    /// by exact `f64` bit value (keys are identifiers, not measurements).
    pub fn join(
        &self,
        other: &Relation,
        self_key: &str,
        other_key: &str,
    ) -> Result<Relation, RelationError> {
        let lk = self.col_index(self_key)?;
        let rk = other.col_index(other_key)?;
        // Right-side lookup: key bits → row indices.
        let mut lookup: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &v) in other.columns[rk].iter().enumerate() {
            lookup.entry(v.to_bits()).or_default().push(i);
        }
        // Output schema: all left columns + right non-key columns.
        let mut names = self.names.clone();
        let mut right_cols: Vec<usize> = Vec::new();
        for (j, name) in other.names.iter().enumerate() {
            if j == rk {
                continue;
            }
            if names.iter().any(|x| x == name) {
                return Err(RelationError::DuplicateColumn(name.clone()));
            }
            names.push(name.clone());
            right_cols.push(j);
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for li in 0..self.n_rows() {
            let key = self.columns[lk][li].to_bits();
            let Some(matches) = lookup.get(&key) else {
                continue;
            };
            for &ri in matches {
                for (j, col) in self.columns.iter().enumerate() {
                    columns[j].push(col[li]);
                }
                for (out_j, &rj) in right_cols.iter().enumerate() {
                    columns[self.columns.len() + out_j].push(other.columns[rj][ri]);
                }
            }
        }
        Ok(Relation { names, columns })
    }

    /// Materializes a trainable dataset from named feature columns and a
    /// target column — the buyer's schema choice in Figure 1.
    pub fn to_dataset(&self, features: &[&str], target: &str) -> Result<Dataset, RelationError> {
        let feat_idx: Vec<usize> = features
            .iter()
            .map(|&f| self.col_index(f))
            .collect::<Result<_, _>>()?;
        let t = self.col_index(target)?;
        let n = self.n_rows();
        let d = feat_idx.len();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            for &j in &feat_idx {
                data.push(self.columns[j][i]);
            }
        }
        Ok(Dataset::new(
            Matrix::from_vec(n, d, data).expect("sized exactly"),
            Vector::from_vec(self.columns[t].clone()),
        ))
    }
}

/// Reads a relation from headered CSV: the first row names the columns,
/// every later row is numeric.
pub fn read_relation<R: std::io::Read>(reader: R) -> Result<Relation, crate::csv::CsvError> {
    use std::io::BufRead;
    let buf = std::io::BufReader::new(reader);
    let mut lines = buf.lines();
    let header = loop {
        match lines.next() {
            None => return Err(crate::csv::CsvError::Empty),
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
        }
    };
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (i, line) in lines.enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() {
            return Err(crate::csv::CsvError::RaggedRow {
                line: i + 2,
                expected: names.len(),
                got: cells.len(),
            });
        }
        for (col, cell) in columns.iter_mut().zip(&cells) {
            let v: f64 = cell.parse().map_err(|_| crate::csv::CsvError::BadNumber {
                line: i + 2,
                cell: (*cell).to_string(),
            })?;
            col.push(v);
        }
    }
    let pairs: Vec<(&str, Vec<f64>)> = names.iter().map(String::as_str).zip(columns).collect();
    Relation::new(pairs).map_err(|e| match e {
        RelationError::DuplicateColumn(c) => crate::csv::CsvError::BadNumber {
            line: 1,
            cell: format!("duplicate column name {c:?}"),
        },
        other => crate::csv::CsvError::BadNumber {
            line: 1,
            cell: other.to_string(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Relation {
        Relation::new(vec![
            ("id", vec![1.0, 2.0, 3.0, 4.0]),
            ("age", vec![34.0, 28.0, 45.0, 52.0]),
            ("height", vec![1.7, 1.8, 1.6, 1.75]),
        ])
        .unwrap()
    }

    fn incomes() -> Relation {
        Relation::new(vec![
            ("person", vec![2.0, 3.0, 4.0, 9.0]),
            ("income", vec![52_000.0, 61_000.0, 48_000.0, 99_000.0]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Relation::new(vec![("a", vec![1.0]), ("a", vec![2.0])]),
            Err(RelationError::DuplicateColumn(_))
        ));
        assert!(matches!(
            Relation::new(vec![("a", vec![1.0]), ("b", vec![])]),
            Err(RelationError::Ragged {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn project_and_filter() {
        let r = people();
        let p = r.project(&["age", "id"]).unwrap();
        assert_eq!(p.schema(), &["age".to_string(), "id".to_string()]);
        assert_eq!(p.column("age").unwrap(), &[34.0, 28.0, 45.0, 52.0]);
        let f = r.filter("age", |a| a >= 40.0).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.column("id").unwrap(), &[3.0, 4.0]);
        assert!(r.project(&["nope"]).is_err());
        assert!(r.filter("nope", |_| true).is_err());
    }

    #[test]
    fn join_matches_keys() {
        let joined = people().join(&incomes(), "id", "person").unwrap();
        // ids 2, 3, 4 match; 1 and 9 don't.
        assert_eq!(joined.n_rows(), 3);
        assert_eq!(
            joined.schema(),
            &["id", "age", "height", "income"].map(String::from)
        );
        assert_eq!(
            joined.column("income").unwrap(),
            &[52_000.0, 61_000.0, 48_000.0]
        );
        assert_eq!(joined.column("age").unwrap(), &[28.0, 45.0, 52.0]);
    }

    #[test]
    fn join_duplicate_non_key_rejected() {
        let left = people();
        let right = Relation::new(vec![
            ("person", vec![1.0]),
            ("age", vec![99.0]), // clashes with left's age
        ])
        .unwrap();
        assert!(matches!(
            left.join(&right, "id", "person"),
            Err(RelationError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn join_handles_duplicate_keys_as_cross_product() {
        let left = Relation::new(vec![("k", vec![1.0, 1.0]), ("a", vec![10.0, 20.0])]).unwrap();
        let right = Relation::new(vec![("k", vec![1.0, 1.0]), ("b", vec![7.0, 8.0])]).unwrap();
        let j = left.join(&right, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 4);
    }

    #[test]
    fn to_dataset_selects_schema() {
        let joined = people().join(&incomes(), "id", "person").unwrap();
        let ds = joined.to_dataset(&["age", "height"], "income").unwrap();
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.d(), 2);
        assert_eq!(ds.x.row(0), &[28.0, 1.8]);
        assert_eq!(ds.y.as_slice(), &[52_000.0, 61_000.0, 48_000.0]);
        assert!(joined.to_dataset(&["age"], "nope").is_err());
    }

    #[test]
    fn read_relation_from_headered_csv() {
        let text = "id,age,income\n1,34,52000\n2,28,61000\n";
        let r = read_relation(text.as_bytes()).unwrap();
        assert_eq!(r.schema(), &["id", "age", "income"].map(String::from));
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.column("age").unwrap(), &[34.0, 28.0]);
        // Malformed inputs surface line-accurate errors.
        assert!(read_relation("".as_bytes()).is_err());
        assert!(read_relation("a,b\n1\n".as_bytes()).is_err());
        assert!(read_relation("a,b\n1,x\n".as_bytes()).is_err());
        assert!(read_relation("a,a\n1,2\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_join_produces_empty_relation() {
        let left = people();
        let right = Relation::new(vec![("person", vec![77.0]), ("income", vec![1.0])]).unwrap();
        let j = left.join(&right, "id", "person").unwrap();
        assert_eq!(j.n_rows(), 0);
        let ds = j.to_dataset(&["age"], "income").unwrap();
        assert_eq!(ds.n(), 0);
    }
}
