//! Relational dataset substrate for the MBP marketplace.
//!
//! The seller's asset in the paper is a relational dataset `D = (D_train,
//! D_test)` of labeled examples `(x, y)` (Section 3.1). This crate provides:
//!
//! * [`Dataset`] / [`TrainTest`] — the in-memory table of examples and the
//!   paper's 75/25 train/test split, with seeded shuffling and feature
//!   standardization;
//! * [`synth`] — synthetic generators, including the paper's `Simulated1`
//!   (regression) and `Simulated2` (classification) processes and
//!   shape-matched stand-ins for the UCI datasets of Table 3;
//! * [`catalog`] — the Table 3 catalog: per-dataset task, paper sizes, and
//!   our scaled default sizes, with a single [`catalog::load`] entry point;
//! * [`csv`] — a minimal CSV reader/writer so buyers can bring real tables;
//! * [`stats`] — listing summaries and k-fold splits;
//! * [`sparse`] — sparse datasets for the Example 3 embedding workloads;
//! * [`relation`] — named-column tables with project/filter/join, feeding
//!   the "ML over relational data" flow of Figure 1.
//!
//! # Substitution note
//! The paper evaluates on UCI datasets (YearMSD, CASP, CovType, SUSY) that we
//! do not redistribute. The generators in [`synth`] reproduce each dataset's
//! *shape* — task, feature count, and a comparable label process — which is
//! all that Figures 6–10 exercise (they depend on convexity/monotonicity of
//! errors under isotropic noise, not on the exact rows). See DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
mod dataset;
pub mod relation;
pub mod sparse;
pub mod stats;
pub mod synth;

pub use dataset::{Dataset, Standardizer, TrainTest};
