use mbp_linalg::{Matrix, Vector};
use mbp_randx::MbpRng;
use rand::seq::SliceRandom;

/// A table of labeled examples: feature matrix `x` (one example per row) and
/// target vector `y`.
///
/// For regression `y` is real-valued; for binary classification `y ∈ {−1, +1}`
/// (the convention the paper's logistic/hinge losses use).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × d` feature matrix.
    pub x: Matrix,
    /// Length-`n` target vector.
    pub y: Vector,
}

impl Dataset {
    /// Creates a dataset, checking that `x` and `y` agree on `n`.
    ///
    /// # Panics
    /// Panics when `x.rows() != y.len()` — constructing a ragged dataset is a
    /// programming error.
    pub fn new(x: Matrix, y: Vector) -> Self {
        assert_eq!(
            x.rows(),
            y.len(),
            "dataset is ragged: {} feature rows vs {} targets",
            x.rows(),
            y.len()
        );
        Dataset { x, y }
    }

    /// Number of examples `n`.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of features `d`.
    pub fn d(&self) -> usize {
        self.x.cols()
    }

    /// Returns the example at `i` as `(features, target)`.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.x.row(i), self.y[i])
    }

    /// Returns a new dataset containing the rows selected by `idx`.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        let d = self.d();
        let mut data = Vec::with_capacity(idx.len() * d);
        let mut y = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(self.x.row(i));
            y.push(self.y[i]);
        }
        Dataset::new(
            Matrix::from_vec(idx.len(), d, data).expect("selection preserves width"),
            Vector::from_vec(y),
        )
    }

    /// Splits into train/test with the given train fraction, shuffling with
    /// `rng`. Matches the paper's 75/25 convention when `train_frac = 0.75`.
    ///
    /// # Panics
    /// Panics unless `0 < train_frac < 1`.
    pub fn split(&self, train_frac: f64, rng: &mut MbpRng) -> TrainTest {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1), got {train_frac}"
        );
        let n = self.n();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_train = n_train.clamp(1, n.saturating_sub(1).max(1));
        let (tr, te) = idx.split_at(n_train.min(n));
        TrainTest {
            train: self.select(tr),
            test: self.select(te),
        }
    }
}

/// The paper's `D = (D_train, D_test)` pair (Table 1: `n₁`/`n₂` samples).
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// The train split `D_train` (the loss `λ` is evaluated here).
    pub train: Dataset,
    /// The test split `D_test` (the buyer-facing error `ε` defaults to here).
    pub test: Dataset,
}

impl TrainTest {
    /// Number of features `d` (identical across splits).
    pub fn d(&self) -> usize {
        self.train.d()
    }

    /// `(n₁, n₂)`: train and test sizes.
    pub fn sizes(&self) -> (usize, usize) {
        (self.train.n(), self.test.n())
    }
}

/// Per-feature affine standardization fitted on a training split.
///
/// Maps feature `j` to `(x_j − mean_j) / sd_j`, guarding `sd_j = 0` (constant
/// columns pass through centered but unscaled). Standardizing with train-set
/// statistics and applying them to the test set avoids leakage.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    sds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on `data`'s feature columns.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.n().max(1) as f64;
        let d = data.d();
        let mut means = vec![0.0; d];
        for i in 0..data.n() {
            for (m, v) in means.iter_mut().zip(data.x.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for i in 0..data.n() {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(data.x.row(i)) {
                let c = x - m;
                *v += c * c;
            }
        }
        let sds = vars
            .into_iter()
            .map(|v| {
                let sd = (v / n).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, sds }
    }

    /// Applies the fitted transform, returning a standardized copy.
    pub fn apply(&self, data: &Dataset) -> Dataset {
        assert_eq!(
            data.d(),
            self.means.len(),
            "standardizer fitted on d={} applied to d={}",
            self.means.len(),
            data.d()
        );
        let x = Matrix::from_fn(data.n(), data.d(), |i, j| {
            (data.x.get(i, j) - self.means[j]) / self.sds[j]
        });
        Dataset::new(x, data.y.clone())
    }

    /// Fits on `tt.train` and applies to both splits.
    pub fn fit_apply(tt: &TrainTest) -> TrainTest {
        let s = Standardizer::fit(&tt.train);
        TrainTest {
            train: s.apply(&tt.train),
            test: s.apply(&tt.test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_randx::seeded_rng;

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let y = (0..n).map(|i| i as f64).collect();
        Dataset::new(x, y)
    }

    #[test]
    fn split_partitions_rows() {
        let ds = toy(100);
        let mut rng = seeded_rng(1);
        let tt = ds.split(0.75, &mut rng);
        assert_eq!(tt.sizes(), (75, 25));
        assert_eq!(tt.d(), 2);
        // Each original target appears exactly once across the two splits.
        let mut seen: Vec<f64> = tt
            .train
            .y
            .as_slice()
            .iter()
            .chain(tt.test.y.as_slice())
            .copied()
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let ds = toy(40);
        let a = ds.split(0.5, &mut seeded_rng(9));
        let b = ds.split(0.5, &mut seeded_rng(9));
        assert_eq!(a.train.y.as_slice(), b.train.y.as_slice());
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn split_rejects_bad_fraction() {
        toy(10).split(1.0, &mut seeded_rng(0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn new_rejects_ragged() {
        Dataset::new(Matrix::zeros(3, 2), Vector::zeros(2));
    }

    #[test]
    fn select_keeps_pairs_together() {
        let ds = toy(5);
        let sel = ds.select(&[4, 0]);
        assert_eq!(sel.y.as_slice(), &[4.0, 0.0]);
        assert_eq!(sel.x.row(0), &[8.0, 9.0]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let ds = toy(50);
        let s = Standardizer::fit(&ds);
        let out = s.apply(&ds);
        for j in 0..2 {
            let col = out.x.col(j).unwrap();
            assert!(col.mean().abs() < 1e-10);
            let var = col.map(|v| v * v).mean();
            assert!((var - 1.0).abs() < 1e-10, "var {var}");
        }
    }

    #[test]
    fn standardizer_constant_column_is_safe() {
        let x = Matrix::from_fn(10, 1, |_, _| 3.0);
        let ds = Dataset::new(x, Vector::zeros(10));
        let out = Standardizer::fit(&ds).apply(&ds);
        assert!(out.x.as_slice().iter().all(|v| v.abs() < 1e-12));
        assert!(out.x.as_slice().iter().all(|v| v.is_finite()));
    }
}
