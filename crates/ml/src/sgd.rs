//! Mini-batch stochastic gradient descent.
//!
//! The broker's one-time training cost matters at the paper's full Table 3
//! scale (10⁷ rows): full-batch methods sweep the entire dataset per step,
//! while SGD reaches sale-quality optima in a few epochs. This trainer is
//! deterministic given its seed (shuffling uses the workspace's seeded RNG),
//! so retrained optimal models are reproducible — a requirement for a
//! market where `h*` anchors every price.

use crate::loss::Objective;
use crate::train::FitReport;
use mbp_data::Dataset;
use mbp_linalg::Vector;
use mbp_randx::{seeded_rng, MbpRng};
use rand::seq::SliceRandom;

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Initial step size.
    pub step: f64,
    /// Multiplicative step decay applied after each epoch.
    pub decay: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 30,
            batch_size: 64,
            step: 0.5,
            decay: 0.85,
            seed: 0,
        }
    }
}

impl SgdConfig {
    fn validate(&self) {
        assert!(self.epochs > 0, "need at least one epoch");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(
            self.step > 0.0 && self.step.is_finite(),
            "step must be positive"
        );
        assert!(
            self.decay > 0.0 && self.decay <= 1.0,
            "decay must be in (0, 1]"
        );
    }
}

/// Trains `obj` on `ds` with mini-batch SGD.
///
/// Gradients are computed on mini-batch *views* (row subsets materialized
/// per batch); the ridge term of `obj` applies to every batch, matching the
/// full-batch objective in expectation.
pub fn sgd(obj: &impl Objective, ds: &Dataset, cfg: SgdConfig) -> FitReport {
    cfg.validate();
    let n = ds.n();
    let mut h = Vector::zeros(ds.d());
    if n == 0 {
        return FitReport {
            objective: obj.value(&h, ds),
            grad_norm: 0.0,
            weights: h,
            iterations: 0,
            converged: true,
        };
    }
    let _span = mbp_obs::span("mbp.ml.sgd");
    let batch = cfg.batch_size.min(n);
    let mut rng: MbpRng = seeded_rng(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut step = cfg.step;
    let mut iterations = 0;
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            let view = ds.select(chunk);
            let g = obj.gradient(&h, &view);
            h.axpy(-step, &g).expect("same dimension");
            iterations += 1;
        }
        step *= cfg.decay;
        mbp_obs::inc("mbp.ml.sgd.epochs");
        // Per-epoch diagnostics go through the event log (never stdout):
        // the library stays silent unless a front-end drains the events.
        mbp_obs::event(
            mbp_obs::Verbosity::Debug,
            "mbp.ml.sgd",
            "epoch complete",
            &[
                ("epoch", (epoch + 1).to_string()),
                ("step", format!("{step:.6}")),
                ("iterations", iterations.to_string()),
            ],
        );
    }
    let g = obj.gradient(&h, ds);
    let grad_norm = g.norm2();
    mbp_obs::gauge_set("mbp.ml.sgd.grad_norm", grad_norm);
    FitReport {
        objective: obj.value(&h, ds),
        converged: grad_norm.is_finite(),
        grad_norm,
        weights: h,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LogisticLoss, SquaredLoss};
    use crate::train::ridge_closed_form;
    use mbp_data::synth;

    #[test]
    fn sgd_approaches_closed_form_on_ridge() {
        let mut rng = seeded_rng(61);
        let ds = synth::simulated1(2000, 5, 0.3, &mut rng);
        let exact = ridge_closed_form(&ds, 0.1).unwrap();
        let fit = sgd(
            &SquaredLoss::ridge(0.1),
            &ds,
            SgdConfig {
                epochs: 60,
                batch_size: 32,
                step: 0.2,
                decay: 0.9,
                seed: 1,
            },
        );
        let diff = fit.weights.sub(&exact).unwrap().norm2() / exact.norm2();
        assert!(diff < 0.05, "relative distance to optimum {diff}");
    }

    #[test]
    fn sgd_trains_usable_classifier() {
        let mut rng = seeded_rng(62);
        let ds = synth::simulated2(2000, 6, 0.97, &mut rng);
        let fit = sgd(&LogisticLoss::ridge(1e-3), &ds, SgdConfig::default());
        let err = crate::metrics::TestError::ZeroOne.evaluate(&fit.weights, &ds);
        assert!(err < 0.12, "training 0/1 error {err}");
    }

    #[test]
    fn sgd_is_seed_deterministic() {
        let mut rng = seeded_rng(63);
        let ds = synth::simulated1(300, 4, 0.5, &mut rng);
        let cfg = SgdConfig::default();
        let a = sgd(&SquaredLoss::plain(), &ds, cfg);
        let b = sgd(&SquaredLoss::plain(), &ds, cfg);
        assert_eq!(a.weights, b.weights);
        let c = sgd(&SquaredLoss::plain(), &ds, SgdConfig { seed: 99, ..cfg });
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn batch_size_larger_than_dataset_is_full_batch() {
        let mut rng = seeded_rng(64);
        let ds = synth::simulated1(50, 3, 0.2, &mut rng);
        let fit = sgd(
            &SquaredLoss::plain(),
            &ds,
            SgdConfig {
                batch_size: 10_000,
                epochs: 5,
                ..SgdConfig::default()
            },
        );
        assert_eq!(fit.iterations, 5); // one step per epoch
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn bad_decay_panics() {
        let ds = synth::simulated1(10, 2, 0.1, &mut seeded_rng(0));
        sgd(
            &SquaredLoss::plain(),
            &ds,
            SgdConfig {
                decay: 1.5,
                ..SgdConfig::default()
            },
        );
    }
}
