//! Trainers that compute the optimal model instance `h*_λ(D)`.
//!
//! Training the optimal model is the broker's one-time cost in the paper
//! (Section 1: "the broker first trains the optimal model instance, which is
//! a one-time cost"). Three trainers cover the menu:
//!
//! * [`ridge_closed_form`] — exact normal-equations solution for
//!   least-squares / ridge regression via Cholesky;
//! * [`newton_logistic`] — damped Newton for L2 logistic regression
//!   (quadratic local convergence, a handful of `d × d` solves);
//! * [`gradient_descent`] — backtracking-line-search gradient descent for
//!   any [`Objective`], used for the smoothed-hinge SVM and as a generic
//!   fallback.

use crate::loss::{LogisticLoss, Objective, SquaredLoss};
use mbp_data::Dataset;
use mbp_linalg::{Cholesky, Matrix, Vector};
use std::collections::HashMap;

/// Report returned by iterative trainers.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// The optimal hypothesis found.
    pub weights: Vector,
    /// Final objective value.
    pub objective: f64,
    /// Final gradient norm (first-order optimality residual).
    pub grad_norm: f64,
    /// Number of outer iterations used.
    pub iterations: usize,
    /// `true` when `grad_norm ≤ tol` was reached before the iteration cap.
    pub converged: bool,
}

/// Configuration for the iterative trainers.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Gradient-norm convergence tolerance.
    pub tol: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_iters: 500,
            tol: 1e-8,
        }
    }
}

/// Cached normal-equations state for one dataset: the averaged Gram matrix
/// `XᵀX/n`, the moment vector `Xᵀy/n`, and one Cholesky factor per ridge
/// value seen so far.
///
/// Building the solver pays the `O(n·d²)` Gram pass exactly once; every
/// subsequent [`RidgeSolver::solve`] for a *new* ridge is one `O(d³)`
/// factorization of the cached Gram (never a refit from the data), and a
/// *repeated* ridge is two `O(d²)` triangular solves against the cached
/// factor. Results are bit-identical to [`ridge_closed_form`] — the same
/// operations in the same order — so cached and uncached training are
/// interchangeable in deterministic pipelines.
pub struct RidgeSolver {
    /// `XᵀX/n`, unridged.
    gram: Matrix,
    /// `Xᵀy/n`.
    xty: Vector,
    /// Cholesky factors of `XᵀX/n + μI`, keyed by the bits of μ.
    factors: HashMap<u64, Cholesky>,
}

impl RidgeSolver {
    /// Computes the Gram/moment state for `ds` (the one-time cost).
    pub fn new(ds: &Dataset) -> Result<Self, mbp_linalg::LinalgError> {
        let _span = mbp_obs::span("mbp.ml.ridge.gram");
        let n = ds.n().max(1) as f64;
        let gram = ds.x.gram();
        // Scale to the averaged objective so mu means the same thing as in
        // `SquaredLoss::ridge`.
        let d = gram.rows();
        let mut scaled = Matrix::zeros(d, d);
        for i in 0..d {
            for j in 0..d {
                scaled.set(i, j, gram.get(i, j) / n);
            }
        }
        let xty = ds.x.matvec_t(&ds.y)?.scale(1.0 / n);
        Ok(RidgeSolver {
            gram: scaled,
            xty,
            factors: HashMap::new(),
        })
    }

    /// `true` when a factor for ridge `mu` is already cached (the next
    /// [`RidgeSolver::solve`] will skip the factorization).
    pub fn has_factor(&self, mu: f64) -> bool {
        self.factors.contains_key(&mu.to_bits())
    }

    /// Number of distinct ridge factors cached.
    pub fn factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Solves `(XᵀX/n + μI) h = Xᵀy/n`, factoring at most once per μ.
    pub fn solve(&mut self, mu: f64) -> Result<Vector, mbp_linalg::LinalgError> {
        assert!(mu >= 0.0 && mu.is_finite(), "mu must be >= 0, got {mu}");
        let factor = match self.factors.entry(mu.to_bits()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut ridged = self.gram.clone();
                ridged.add_diagonal(mu)?;
                e.insert(Cholesky::factor(&ridged)?)
            }
        };
        factor.solve(&self.xty)
    }
}

/// Exact ridge regression: solves `(XᵀX/n + μI) h = Xᵀy/n`.
///
/// With `mu = 0` this is ordinary least squares and requires `XᵀX` to be
/// numerically positive definite (any duplicate/constant column will surface
/// as [`mbp_linalg::LinalgError::NotPositiveDefinite`]).
///
/// One-shot convenience over [`RidgeSolver`]; callers solving the same
/// dataset at several ridge values should hold a solver instead.
pub fn ridge_closed_form(ds: &Dataset, mu: f64) -> Result<Vector, mbp_linalg::LinalgError> {
    assert!(mu >= 0.0 && mu.is_finite(), "mu must be >= 0, got {mu}");
    let _span = mbp_obs::span("mbp.ml.ridge.train");
    RidgeSolver::new(ds)?.solve(mu)
}

/// Backtracking-line-search gradient descent on any [`Objective`].
///
/// Uses Armijo backtracking with a *strict* sufficient-decrease constant
/// (`c = 0.25`, halving) from an adaptive initial step. A loose constant
/// (the textbook `1e-4`) accepts wildly overshooting steps whose actual
/// decrease is negligible, which stalls convergence on ill-conditioned
/// quadratics; `c = 0.25` forces each accepted step to realize a constant
/// fraction of the ideal decrease, restoring the linear rate. Deterministic:
/// no randomness is involved, so retraining the optimal model for the same
/// dataset yields bit-identical weights.
pub fn gradient_descent(obj: &impl Objective, ds: &Dataset, cfg: TrainConfig) -> FitReport {
    let d = ds.d();
    let mut h = Vector::zeros(d);
    let mut value = obj.value(&h, ds);
    let mut step = 1.0;
    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let g = obj.gradient(&h, ds);
        let grad_norm = g.norm2();
        if grad_norm <= cfg.tol {
            iterations = it;
            break;
        }
        // Backtracking from a slightly optimistic step (grow 2x per iter).
        step = f64::min(step * 2.0, 1e6);
        let g2 = grad_norm * grad_norm;
        let mut accepted = false;
        for _ in 0..60 {
            let mut trial = h.clone();
            trial.axpy(-step, &g).expect("same dim");
            let tv = obj.value(&trial, ds);
            if tv <= value - 0.25 * step * g2 {
                h = trial;
                value = tv;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // Step collapsed below resolution: we are at numerical optimum.
            break;
        }
    }
    let g = obj.gradient(&h, ds);
    mbp_obs::counter_add("mbp.ml.gd.iterations", iterations as u64);
    FitReport {
        grad_norm: g.norm2(),
        converged: g.norm2() <= cfg.tol,
        weights: h,
        objective: value,
        iterations,
    }
}

/// Damped Newton's method for L2 logistic regression.
///
/// Each step solves `(∇²λ) p = ∇λ` by Cholesky and backtracks on the
/// objective. Requires `mu > 0` or well-spread data for the Hessian to be
/// positive definite; falls back to a gradient step when factorization
/// fails.
pub fn newton_logistic(loss: &LogisticLoss, ds: &Dataset, cfg: TrainConfig) -> FitReport {
    let d = ds.d();
    let mut h = Vector::zeros(d);
    let mut value = loss.value(&h, ds);
    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let g = loss.gradient(&h, ds);
        if g.norm2() <= cfg.tol {
            iterations = it;
            break;
        }
        let hess = loss.hessian(&h, ds);
        let dir = match Cholesky::factor(&hess).and_then(|ch| ch.solve(&g)) {
            Ok(p) => p,
            Err(_) => g.clone(), // gradient fallback
        };
        // Backtracking on the Newton direction.
        let slope = g.dot(&dir).expect("same dim");
        let mut step = 1.0;
        let mut moved = false;
        for _ in 0..50 {
            let mut trial = h.clone();
            trial.axpy(-step, &dir).expect("same dim");
            let tv = loss.value(&trial, ds);
            if tv <= value - 1e-4 * step * slope {
                h = trial;
                value = tv;
                moved = true;
                break;
            }
            step *= 0.5;
        }
        if !moved {
            break;
        }
    }
    let g = loss.gradient(&h, ds);
    mbp_obs::counter_add("mbp.ml.newton.iterations", iterations as u64);
    FitReport {
        grad_norm: g.norm2(),
        converged: g.norm2() <= cfg.tol,
        weights: h,
        objective: value,
        iterations,
    }
}

/// Trains least squares and checks the closed form against gradient descent
/// — exposed for diagnostics and tests.
pub fn least_squares_cross_check(ds: &Dataset, mu: f64, cfg: TrainConfig) -> (Vector, FitReport) {
    let closed = ridge_closed_form(ds, mu).expect("closed-form ridge failed");
    let gd = gradient_descent(&SquaredLoss::ridge(mu), ds, cfg);
    (closed, gd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::SmoothedHingeLoss;
    use mbp_data::synth;
    use mbp_randx::seeded_rng;

    #[test]
    fn ridge_recovers_noiseless_signal() {
        let mut rng = seeded_rng(41);
        let ds = synth::simulated1(400, 6, 0.0, &mut rng);
        let w = ridge_closed_form(&ds, 0.0).unwrap();
        // Residual should be ~0 since targets are exactly linear.
        let loss = SquaredLoss::plain().value(&w, &ds);
        assert!(loss < 1e-15, "loss {loss}");
    }

    /// The cached solver is bit-identical to the one-shot closed form and
    /// factors each ridge exactly once.
    #[test]
    fn ridge_solver_caches_factors_and_matches_closed_form() {
        let mut rng = seeded_rng(48);
        let ds = synth::simulated1(350, 5, 0.4, &mut rng);
        let mut solver = RidgeSolver::new(&ds).unwrap();
        assert_eq!(solver.factor_count(), 0);
        for &mu in &[0.0, 0.1, 1.0] {
            assert!(!solver.has_factor(mu));
            let cached = solver.solve(mu).unwrap();
            assert!(solver.has_factor(mu));
            let oneshot = ridge_closed_form(&ds, mu).unwrap();
            assert_eq!(cached, oneshot, "cached vs one-shot at mu={mu}");
            // Re-solving reuses the factor.
            assert_eq!(solver.solve(mu).unwrap(), cached);
        }
        assert_eq!(solver.factor_count(), 3);
    }

    #[test]
    fn closed_form_matches_gradient_descent() {
        let mut rng = seeded_rng(42);
        let ds = synth::simulated1(300, 5, 0.3, &mut rng);
        let (closed, gd) = least_squares_cross_check(
            &ds,
            0.1,
            TrainConfig {
                max_iters: 5000,
                tol: 1e-8,
            },
        );
        assert!(gd.converged, "gd stalled at grad norm {}", gd.grad_norm);
        let diff = closed.sub(&gd.weights).unwrap().norm2();
        assert!(diff < 1e-6, "closed vs gd differ by {diff}");
    }

    #[test]
    fn newton_matches_gradient_descent_on_logistic() {
        let mut rng = seeded_rng(43);
        let ds = synth::simulated2(400, 4, 0.9, &mut rng);
        let loss = LogisticLoss::ridge(0.05);
        let cfg = TrainConfig {
            max_iters: 3000,
            tol: 1e-9,
        };
        let newton = newton_logistic(&loss, &ds, cfg);
        let gd = gradient_descent(&loss, &ds, cfg);
        assert!(newton.converged);
        let diff = newton.weights.sub(&gd.weights).unwrap().norm2();
        assert!(diff < 1e-5, "newton vs gd differ by {diff}");
        // Newton should need far fewer iterations.
        assert!(newton.iterations < gd.iterations || gd.iterations < 20);
    }

    #[test]
    fn newton_converges_fast() {
        let mut rng = seeded_rng(44);
        let ds = synth::simulated2(500, 6, 0.95, &mut rng);
        let report = newton_logistic(&LogisticLoss::ridge(0.1), &ds, TrainConfig::default());
        assert!(report.converged);
        assert!(report.iterations <= 30, "took {}", report.iterations);
    }

    #[test]
    fn svm_training_separates_separable_data() {
        let mut rng = seeded_rng(45);
        let ds = synth::simulated2(300, 4, 1.0, &mut rng); // noiseless labels
        let loss = SmoothedHingeLoss::new(0.01, 0.5);
        let fit = gradient_descent(
            &loss,
            &ds,
            TrainConfig {
                max_iters: 2000,
                tol: 1e-7,
            },
        );
        // Training accuracy should be near-perfect.
        let mut errs = 0;
        for i in 0..ds.n() {
            let (x, y) = ds.example(i);
            let pred = if crate::loss::dot(fit.weights.as_slice(), x) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if pred != y {
                errs += 1;
            }
        }
        assert!(errs * 20 < ds.n(), "too many training errors: {errs}");
    }

    #[test]
    fn gradient_descent_monotone_decrease() {
        let mut rng = seeded_rng(46);
        let ds = synth::simulated1(100, 3, 0.5, &mut rng);
        let obj = SquaredLoss::ridge(0.2);
        let fit = gradient_descent(&obj, &ds, TrainConfig::default());
        let at_zero = obj.value(&Vector::zeros(3), &ds);
        assert!(fit.objective <= at_zero + 1e-12);
    }

    #[test]
    fn trainer_is_deterministic() {
        let mut rng = seeded_rng(47);
        let ds = synth::simulated2(200, 3, 0.9, &mut rng);
        let loss = LogisticLoss::ridge(0.1);
        let a = newton_logistic(&loss, &ds, TrainConfig::default());
        let b = newton_logistic(&loss, &ds, TrainConfig::default());
        assert_eq!(a.weights, b.weights);
    }
}
