//! From-scratch ML training substrate for the MBP marketplace.
//!
//! The broker's menu `M` in the paper (Table 2) is: least-squares linear
//! regression, L2-regularized logistic regression, and the L2 linear SVM —
//! all linear hypotheses `h ∈ R^d` with strictly convex training losses `λ`.
//! This crate implements those losses, the trainers that find the optimal
//! model instance `h*_λ(D) = argmin_h λ(h, D)`, and the buyer-facing test
//! error functions `ε`:
//!
//! * [`SquaredLoss`], [`LogisticLoss`], [`SmoothedHingeLoss`] — training
//!   objectives implementing [`Objective`] (value + gradient, optional ridge);
//! * [`train`] — closed-form ridge regression (Cholesky), backtracking
//!   gradient descent for any [`Objective`], and Newton's method for
//!   logistic regression; [`sgd`] — deterministic mini-batch SGD for the
//!   full Table 3 dataset scale;
//! * [`metrics`] — test errors: square loss, logistic loss, and 0/1
//!   misclassification rate (the three panels of Figure 6).
//!
//! The SVM note: the paper's Table 2 prints the hinge as `max(1, −y·wᵀx)`,
//! an evident typo for the standard hinge `max(0, 1 − y·wᵀx)`. We implement
//! a quadratically smoothed (Huberized) hinge so the objective is
//! differentiable and strictly convex with its L2 term, matching the paper's
//! "strictly convex λ" scope (Section 3.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loss;
pub mod metrics;
mod model;
pub mod persist;
pub mod sgd;
pub mod sparse;
pub mod train;

pub use loss::{LogisticLoss, Objective, SmoothedHingeLoss, SquaredLoss};
pub use model::{LinearModel, ModelKind};
