//! TSV persistence for model instances.
//!
//! A sold model must survive the marketplace session: buyers store the
//! instance and load it into their own pipelines. The format is a tiny
//! self-describing TSV (no external serialization dependency):
//!
//! ```text
//! mbp-model <TAB> v1
//! kind <TAB> linreg
//! dim <TAB> 3
//! w <TAB> 0.5 <TAB> -1.25 <TAB> 3.0
//! ```

use crate::{LinearModel, ModelKind};
use mbp_linalg::Vector;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not an mbp model file, or is malformed.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model io error: {e}"),
            PersistError::Format(msg) => write!(f, "bad model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn kind_tag(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::LinearRegression => "linreg",
        ModelKind::LogisticRegression => "logreg",
        ModelKind::LinearSvm => "svm",
    }
}

fn kind_from_tag(tag: &str) -> Option<ModelKind> {
    match tag {
        "linreg" => Some(ModelKind::LinearRegression),
        "logreg" => Some(ModelKind::LogisticRegression),
        "svm" => Some(ModelKind::LinearSvm),
        _ => None,
    }
}

/// Writes a model instance as TSV.
pub fn write_model<W: Write>(model: &LinearModel, mut w: W) -> Result<(), PersistError> {
    writeln!(w, "mbp-model\tv1")?;
    writeln!(w, "kind\t{}", kind_tag(model.kind()))?;
    writeln!(w, "dim\t{}", model.dim())?;
    let weights: Vec<String> = model
        .weights()
        .as_slice()
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    writeln!(w, "w\t{}", weights.join("\t"))?;
    Ok(())
}

/// Reads a model instance from TSV written by [`write_model`].
pub fn read_model<R: Read>(r: R) -> Result<LinearModel, PersistError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| PersistError::Format("empty file".into()))??;
    if header.trim() != "mbp-model\tv1" {
        return Err(PersistError::Format(format!(
            "unexpected header {header:?} (want `mbp-model\\tv1`)"
        )));
    }
    let mut kind = None;
    let mut dim = None;
    let mut weights: Option<Vec<f64>> = None;
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        match parts.next() {
            Some("kind") => {
                let tag = parts
                    .next()
                    .ok_or_else(|| PersistError::Format("kind line missing value".into()))?;
                kind =
                    Some(kind_from_tag(tag).ok_or_else(|| {
                        PersistError::Format(format!("unknown model kind {tag:?}"))
                    })?);
            }
            Some("dim") => {
                let v = parts
                    .next()
                    .ok_or_else(|| PersistError::Format("dim line missing value".into()))?;
                dim = Some(
                    v.parse::<usize>()
                        .map_err(|_| PersistError::Format(format!("bad dimension {v:?}")))?,
                );
            }
            Some("w") => {
                let ws: Result<Vec<f64>, _> = parts.map(|p| p.parse::<f64>()).collect();
                weights = Some(ws.map_err(|e| PersistError::Format(format!("bad weight: {e}")))?);
            }
            Some(other) => return Err(PersistError::Format(format!("unknown field {other:?}"))),
            None => {}
        }
    }
    let kind = kind.ok_or_else(|| PersistError::Format("missing kind".into()))?;
    let dim = dim.ok_or_else(|| PersistError::Format("missing dim".into()))?;
    let weights = weights.ok_or_else(|| PersistError::Format("missing weights".into()))?;
    if weights.len() != dim {
        return Err(PersistError::Format(format!(
            "dim says {dim} but {} weights present",
            weights.len()
        )));
    }
    Ok(LinearModel::new(kind, Vector::from_vec(weights)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            ModelKind::LinearRegression,
            ModelKind::LogisticRegression,
            ModelKind::LinearSvm,
        ] {
            let model = LinearModel::new(kind, Vector::from_vec(vec![0.5, -1.25, 3.0]));
            let mut buf = Vec::new();
            write_model(&model, &mut buf).unwrap();
            let back = read_model(&buf[..]).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    fn roundtrip_preserves_full_precision() {
        let w = vec![1.0 / 3.0, std::f64::consts::SQRT_2, -1e-17];
        let model = LinearModel::new(ModelKind::LinearRegression, Vector::from_vec(w.clone()));
        let mut buf = Vec::new();
        write_model(&model, &mut buf).unwrap();
        let back = read_model(&buf[..]).unwrap();
        assert_eq!(back.weights().as_slice(), &w[..]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_model("".as_bytes()).is_err());
        assert!(read_model("not-a-model\tv1\n".as_bytes()).is_err());
        assert!(read_model("mbp-model\tv1\nkind\tmagic\n".as_bytes()).is_err());
        let missing_w = "mbp-model\tv1\nkind\tlinreg\ndim\t2\n";
        assert!(read_model(missing_w.as_bytes()).is_err());
        let wrong_dim = "mbp-model\tv1\nkind\tlinreg\ndim\t3\nw\t1.0\t2.0\n";
        assert!(read_model(wrong_dim.as_bytes()).is_err());
    }
}
