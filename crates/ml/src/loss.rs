use mbp_data::Dataset;
use mbp_linalg::{Matrix, Vector};

/// A differentiable training objective `λ(h, D)` over linear hypotheses.
///
/// All objectives are averaged over examples (the paper's Table 2 footnote)
/// and carry an optional L2 ridge term `(μ/2)‖h‖²`. With `μ > 0` every
/// objective here is strictly convex, which is the paper's stated scope
/// (Section 3.4) and what Theorem 4 needs.
pub trait Objective {
    /// Objective value at `h`.
    fn value(&self, h: &Vector, ds: &Dataset) -> f64;

    /// Gradient `∇_h λ(h, D)`.
    fn gradient(&self, h: &Vector, ds: &Dataset) -> Vector;

    /// The ridge coefficient `μ` (0 when unregularized).
    fn ridge(&self) -> f64;
}

/// Examples per parallel chunk in loss/gradient accumulation. Datasets
/// spanning fewer than two chunks keep the original sequential loops, so
/// small-data numerics are bit-identical to the serial implementation.
pub(crate) const EXAMPLE_GRAIN: usize = 1024;

fn par_enabled(n: usize) -> bool {
    n > EXAMPLE_GRAIN && mbp_par::max_threads() > 1
}

/// Sum of `term(i)` over all examples. Large datasets reduce fixed chunks in
/// chunk-index order (deterministic at every thread count ≥ 2); small ones
/// run the plain left-to-right sum.
fn accumulate_scalar(span: &'static str, n: usize, term: impl Fn(usize) -> f64 + Sync) -> f64 {
    if par_enabled(n) {
        let _span = mbp_obs::span(span);
        mbp_par::par_map_chunks(n, EXAMPLE_GRAIN, |r| r.map(&term).sum::<f64>())
            .into_iter()
            .fold(0.0, |a, b| a + b)
    } else {
        (0..n).map(term).sum()
    }
}

/// Dense accumulator of per-example updates into a `d`-vector. Large
/// datasets build one partial per fixed chunk and merge the partials in
/// chunk-index order; small ones apply the updates sequentially.
fn accumulate_dense(
    span: &'static str,
    d: usize,
    n: usize,
    add_example: impl Fn(&mut [f64], usize) + Sync,
) -> Vec<f64> {
    if par_enabled(n) {
        let _span = mbp_obs::span(span);
        let partials = mbp_par::par_map_chunks(n, EXAMPLE_GRAIN, |r| {
            let mut acc = vec![0.0; d];
            for i in r {
                add_example(&mut acc, i);
            }
            acc
        });
        let mut out = vec![0.0; d];
        for acc in partials {
            for (o, a) in out.iter_mut().zip(&acc) {
                *o += a;
            }
        }
        out
    } else {
        let mut out = vec![0.0; d];
        for i in 0..n {
            add_example(&mut out, i);
        }
        out
    }
}

fn ridge_value(mu: f64, h: &Vector) -> f64 {
    if mu > 0.0 {
        0.5 * mu * h.norm2_squared()
    } else {
        0.0
    }
}

fn add_ridge_grad(mu: f64, h: &Vector, grad: &mut Vector) {
    if mu > 0.0 {
        grad.axpy(mu, h).expect("same dimension");
    }
}

/// Least-squares loss `(1/2n) Σ (hᵀx − y)² [+ (μ/2)‖h‖²]` — linear
/// regression, the first row of the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct SquaredLoss {
    mu: f64,
}

impl SquaredLoss {
    /// Unregularized least squares.
    pub fn plain() -> Self {
        SquaredLoss { mu: 0.0 }
    }

    /// Ridge regression with coefficient `mu ≥ 0`.
    pub fn ridge(mu: f64) -> Self {
        assert!(
            mu >= 0.0 && mu.is_finite(),
            "ridge mu must be >= 0, got {mu}"
        );
        SquaredLoss { mu }
    }
}

impl Objective for SquaredLoss {
    fn value(&self, h: &Vector, ds: &Dataset) -> f64 {
        let n = ds.n().max(1) as f64;
        let sum = accumulate_scalar("mbp.ml.loss.value.par", ds.n(), |i| {
            let (x, y) = ds.example(i);
            let r = dot(h.as_slice(), x) - y;
            r * r
        });
        sum / (2.0 * n) + ridge_value(self.mu, h)
    }

    fn gradient(&self, h: &Vector, ds: &Dataset) -> Vector {
        let n = ds.n().max(1) as f64;
        let sums = accumulate_dense("mbp.ml.loss.grad.par", h.len(), ds.n(), |acc, i| {
            let (x, y) = ds.example(i);
            let r = dot(h.as_slice(), x) - y;
            for (gj, xj) in acc.iter_mut().zip(x) {
                *gj += r * xj;
            }
        });
        let mut g = Vector::from_vec(sums);
        g.scale_in_place(1.0 / n);
        add_ridge_grad(self.mu, h, &mut g);
        g
    }

    fn ridge(&self) -> f64 {
        self.mu
    }
}

/// Logistic loss `(1/n) Σ log(1 + e^{−y·hᵀx}) [+ (μ/2)‖h‖²]` with labels
/// `y ∈ {−1, +1}` — logistic regression, the second row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct LogisticLoss {
    mu: f64,
}

impl LogisticLoss {
    /// Unregularized logistic loss.
    pub fn plain() -> Self {
        LogisticLoss { mu: 0.0 }
    }

    /// L2-regularized logistic loss with coefficient `mu ≥ 0`.
    pub fn ridge(mu: f64) -> Self {
        assert!(
            mu >= 0.0 && mu.is_finite(),
            "ridge mu must be >= 0, got {mu}"
        );
        LogisticLoss { mu }
    }

    /// The Hessian `∇²λ = (1/n) Xᵀ S X + μI` with `Sᵢᵢ = σ(mᵢ)(1 − σ(mᵢ))`,
    /// used by the Newton trainer.
    // Indexed loops keep the symmetric rank-1 update readable.
    #[allow(clippy::needless_range_loop)]
    pub fn hessian(&self, h: &Vector, ds: &Dataset) -> Matrix {
        let n = ds.n().max(1) as f64;
        let d = h.len();
        let upper = accumulate_dense("mbp.ml.loss.hessian.par", d * d, ds.n(), |acc, i| {
            let (x, y) = ds.example(i);
            let m = y * dot(h.as_slice(), x);
            let s = sigmoid(m);
            let w = s * (1.0 - s) / n;
            // LINT-ALLOW(float): exact-zero weight from sigmoid underflow.
            if w == 0.0 {
                return;
            }
            for j in 0..d {
                let xj = x[j];
                // LINT-ALLOW(float): exact-zero skip exploits input sparsity.
                if xj == 0.0 {
                    continue;
                }
                for k in j..d {
                    acc[j * d + k] += w * xj * x[k];
                }
            }
        });
        let mut hess = Matrix::from_vec(d, d, upper).expect("square buffer");
        for j in 0..d {
            for k in (j + 1)..d {
                hess.set(k, j, hess.get(j, k));
            }
        }
        if self.mu > 0.0 {
            hess.add_diagonal(self.mu).expect("square");
        }
        hess
    }
}

impl Objective for LogisticLoss {
    fn value(&self, h: &Vector, ds: &Dataset) -> f64 {
        let n = ds.n().max(1) as f64;
        let sum = accumulate_scalar("mbp.ml.loss.value.par", ds.n(), |i| {
            let (x, y) = ds.example(i);
            log1p_exp(-y * dot(h.as_slice(), x))
        });
        sum / n + ridge_value(self.mu, h)
    }

    fn gradient(&self, h: &Vector, ds: &Dataset) -> Vector {
        let n = ds.n().max(1) as f64;
        let sums = accumulate_dense("mbp.ml.loss.grad.par", h.len(), ds.n(), |acc, i| {
            let (x, y) = ds.example(i);
            let m = y * dot(h.as_slice(), x);
            // d/dm log(1+e^{-m}) = -σ(-m); chain rule brings y·x.
            let coeff = -y * sigmoid(-m);
            for (gj, xj) in acc.iter_mut().zip(x) {
                *gj += coeff * xj;
            }
        });
        let mut g = Vector::from_vec(sums);
        g.scale_in_place(1.0 / n);
        add_ridge_grad(self.mu, h, &mut g);
        g
    }

    fn ridge(&self) -> f64 {
        self.mu
    }
}

/// Quadratically smoothed hinge loss (Huberized SVM) with mandatory L2 term:
/// `(1/n) Σ ℓ(y·hᵀx) + (μ/2)‖h‖²` where
///
/// ```text
///        ⎧ 0                 m ≥ 1
/// ℓ(m) = ⎨ (1 − m)²/(2γ)     1 − γ < m < 1
///        ⎩ 1 − m − γ/2       m ≤ 1 − γ
/// ```
///
/// As `γ → 0` this converges to the standard hinge; the smoothing keeps the
/// objective differentiable so one gradient-descent trainer serves all
/// three menu models.
#[derive(Debug, Clone, Copy)]
pub struct SmoothedHingeLoss {
    mu: f64,
    gamma: f64,
}

impl SmoothedHingeLoss {
    /// Creates the loss. The paper's L2 SVM requires `mu > 0`; `gamma`
    /// controls the smoothing window (default idiom: `0.5`).
    pub fn new(mu: f64, gamma: f64) -> Self {
        assert!(
            mu > 0.0 && mu.is_finite(),
            "L2 SVM requires mu > 0, got {mu}"
        );
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "smoothing gamma must be > 0, got {gamma}"
        );
        SmoothedHingeLoss { mu, gamma }
    }

    fn phi(&self, m: f64) -> f64 {
        if m >= 1.0 {
            0.0
        } else if m > 1.0 - self.gamma {
            let t = 1.0 - m;
            t * t / (2.0 * self.gamma)
        } else {
            1.0 - m - self.gamma / 2.0
        }
    }

    fn dphi(&self, m: f64) -> f64 {
        if m >= 1.0 {
            0.0
        } else if m > 1.0 - self.gamma {
            (m - 1.0) / self.gamma
        } else {
            -1.0
        }
    }
}

impl Objective for SmoothedHingeLoss {
    fn value(&self, h: &Vector, ds: &Dataset) -> f64 {
        let n = ds.n().max(1) as f64;
        let sum = accumulate_scalar("mbp.ml.loss.value.par", ds.n(), |i| {
            let (x, y) = ds.example(i);
            self.phi(y * dot(h.as_slice(), x))
        });
        sum / n + ridge_value(self.mu, h)
    }

    fn gradient(&self, h: &Vector, ds: &Dataset) -> Vector {
        let n = ds.n().max(1) as f64;
        let sums = accumulate_dense("mbp.ml.loss.grad.par", h.len(), ds.n(), |acc, i| {
            let (x, y) = ds.example(i);
            let coeff = y * self.dphi(y * dot(h.as_slice(), x));
            // LINT-ALLOW(float): exact-zero gradient coefficient skip.
            if coeff == 0.0 {
                return;
            }
            for (gj, xj) in acc.iter_mut().zip(x) {
                *gj += coeff * xj;
            }
        });
        let mut g = Vector::from_vec(sums);
        g.scale_in_place(1.0 / n);
        add_ridge_grad(self.mu, h, &mut g);
        g
    }

    fn ridge(&self) -> f64 {
        self.mu
    }
}

/// Numerically stable `log(1 + e^t)`.
pub(crate) fn log1p_exp(t: f64) -> f64 {
    if t > 30.0 {
        t
    } else if t < -30.0 {
        t.exp()
    } else {
        t.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid.
pub(crate) fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_linalg::Matrix;

    fn tiny_reg() -> Dataset {
        // y = 2x exactly.
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let y = Vector::from_vec(vec![2.0, 4.0, 6.0]);
        Dataset::new(x, y)
    }

    fn tiny_clf() -> Dataset {
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.5, 2.0, -0.3, -1.0, 0.2, -2.0, -0.7]).unwrap();
        let y = Vector::from_vec(vec![1.0, 1.0, -1.0, -1.0]);
        Dataset::new(x, y)
    }

    /// Central-difference check of a gradient.
    fn check_gradient(obj: &impl Objective, h: &Vector, ds: &Dataset) {
        let g = obj.gradient(h, ds);
        let eps = 1e-6;
        for j in 0..h.len() {
            let mut hp = h.clone();
            hp[j] += eps;
            let mut hm = h.clone();
            hm[j] -= eps;
            let fd = (obj.value(&hp, ds) - obj.value(&hm, ds)) / (2.0 * eps);
            assert!(
                (fd - g[j]).abs() < 1e-5 * (1.0 + fd.abs()),
                "coord {j}: finite diff {fd} vs grad {}",
                g[j]
            );
        }
    }

    #[test]
    fn squared_loss_zero_at_truth() {
        let ds = tiny_reg();
        let loss = SquaredLoss::plain();
        assert!(loss.value(&Vector::from_vec(vec![2.0]), &ds).abs() < 1e-12);
        assert!(loss.value(&Vector::from_vec(vec![1.0]), &ds) > 0.0);
    }

    #[test]
    fn squared_gradient_matches_finite_difference() {
        let ds = tiny_reg();
        check_gradient(&SquaredLoss::ridge(0.3), &Vector::from_vec(vec![0.7]), &ds);
    }

    #[test]
    fn logistic_gradient_matches_finite_difference() {
        let ds = tiny_clf();
        check_gradient(
            &LogisticLoss::ridge(0.1),
            &Vector::from_vec(vec![0.4, -0.2]),
            &ds,
        );
    }

    #[test]
    fn hinge_gradient_matches_finite_difference() {
        let ds = tiny_clf();
        check_gradient(
            &SmoothedHingeLoss::new(0.2, 0.5),
            &Vector::from_vec(vec![0.4, -0.2]),
            &ds,
        );
    }

    #[test]
    fn logistic_hessian_matches_gradient_differences() {
        let ds = tiny_clf();
        let loss = LogisticLoss::ridge(0.1);
        let h = Vector::from_vec(vec![0.3, 0.6]);
        let hess = loss.hessian(&h, &ds);
        let eps = 1e-6;
        for j in 0..2 {
            let mut hp = h.clone();
            hp[j] += eps;
            let mut hm = h.clone();
            hm[j] -= eps;
            let gp = loss.gradient(&hp, &ds);
            let gm = loss.gradient(&hm, &ds);
            for k in 0..2 {
                let fd = (gp[k] - gm[k]) / (2.0 * eps);
                assert!(
                    (fd - hess.get(k, j)).abs() < 1e-5,
                    "H[{k}][{j}]: fd {fd} vs {}",
                    hess.get(k, j)
                );
            }
        }
    }

    #[test]
    fn smoothed_hinge_piecewise_values() {
        let l = SmoothedHingeLoss::new(1.0, 0.5);
        assert_eq!(l.phi(2.0), 0.0); // well classified
        assert!((l.phi(0.75) - 0.0625).abs() < 1e-12); // quadratic zone
        assert!((l.phi(-1.0) - (2.0 - 0.25)).abs() < 1e-12); // linear zone
    }

    #[test]
    fn stable_helpers() {
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-9);
        assert!(log1p_exp(-100.0) < 1e-40);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    /// A classification dataset large enough to cross `EXAMPLE_GRAIN`.
    fn big_clf(n: usize, d: usize) -> Dataset {
        let x = Matrix::from_fn(n, d, |i, j| ((i * d + j) as f64 * 0.61).sin());
        let y = Vector::from_vec(
            (0..n)
                .map(|i| {
                    if (i as f64 * 0.37).cos() > 0.0 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect(),
        );
        Dataset::new(x, y)
    }

    #[test]
    fn parallel_gradients_are_deterministic_across_thread_counts() {
        let ds = big_clf(3000, 6);
        let h = Vector::from_vec(vec![0.3, -0.2, 0.15, 0.0, -0.4, 0.25]);
        let loss = LogisticLoss::ridge(0.05);
        let g2 = mbp_par::with_threads(2, || loss.gradient(&h, &ds));
        let g4 = mbp_par::with_threads(4, || loss.gradient(&h, &ds));
        assert_eq!(g2.as_slice(), g4.as_slice());
        let serial = mbp_par::with_threads(1, || loss.gradient(&h, &ds));
        for (s, p) in serial.as_slice().iter().zip(g2.as_slice()) {
            assert!((s - p).abs() <= 1e-12 * s.abs().max(1.0), "{s} vs {p}");
        }
        let v2 = mbp_par::with_threads(2, || loss.value(&h, &ds));
        let v4 = mbp_par::with_threads(4, || loss.value(&h, &ds));
        assert_eq!(v2.to_bits(), v4.to_bits());
        let hess2 = mbp_par::with_threads(2, || loss.hessian(&h, &ds));
        let hess4 = mbp_par::with_threads(4, || loss.hessian(&h, &ds));
        assert_eq!(hess2.as_slice(), hess4.as_slice());
    }

    #[test]
    fn ridge_increases_value_away_from_origin() {
        let ds = tiny_reg();
        let h = Vector::from_vec(vec![2.0]);
        let plain = SquaredLoss::plain().value(&h, &ds);
        let ridged = SquaredLoss::ridge(1.0).value(&h, &ds);
        assert!((ridged - plain - 2.0).abs() < 1e-12); // (1/2)·1·‖2‖² = 2
    }
}
