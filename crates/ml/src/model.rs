use crate::loss::dot;
use mbp_linalg::Vector;

/// Which paper-menu model a hypothesis belongs to (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Least-squares linear regression.
    LinearRegression,
    /// L2-regularized logistic regression.
    LogisticRegression,
    /// L2 linear SVM (smoothed hinge).
    LinearSvm,
}

impl ModelKind {
    /// Human-readable name matching the paper's Table 2 rows.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LinearRegression => "Lin. reg.",
            ModelKind::LogisticRegression => "Log. reg.",
            ModelKind::LinearSvm => "L2 Lin. SVM",
        }
    }

    /// `true` for the classification models.
    pub fn is_classifier(&self) -> bool {
        !matches!(self, ModelKind::LinearRegression)
    }
}

/// A concrete model instance: a hypothesis `h ∈ R^d` tagged with its kind.
///
/// This is the artifact the broker sells. For regression,
/// [`LinearModel::predict`] returns the real-valued score; for
/// classification, [`LinearModel::classify`] thresholds it at zero into a
/// `{−1, +1}` label.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    kind: ModelKind,
    weights: Vector,
}

impl LinearModel {
    /// Wraps a weight vector as a model instance.
    pub fn new(kind: ModelKind, weights: Vector) -> Self {
        LinearModel { kind, weights }
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The hypothesis vector `h`.
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// Mutable access to the hypothesis vector, for noise mechanisms that
    /// write the release `ĥ = h* + w` in place without reallocating.
    pub fn weights_mut(&mut self) -> &mut Vector {
        &mut self.weights
    }

    /// Number of features `d`.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Raw linear score `hᵀx`.
    ///
    /// # Panics
    /// Panics when `x.len() != self.dim()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.dim(),
            "feature vector has {} entries, model expects {}",
            x.len(),
            self.dim()
        );
        dot(self.weights.as_slice(), x)
    }

    /// Classification label `sign(hᵀx) ∈ {−1, +1}` (ties go to `+1`,
    /// matching the paper's `wᵀx > 0` convention with non-strict fallback).
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.predict(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Probability estimate `σ(hᵀx)` for logistic models.
    pub fn probability(&self, x: &[f64]) -> f64 {
        crate::loss::sigmoid(self.predict(x))
    }

    /// Returns a copy with the weights replaced (used by noise mechanisms to
    /// build the released instance `ĥ = h* + w`).
    pub fn with_weights(&self, weights: Vector) -> LinearModel {
        assert_eq!(weights.len(), self.dim(), "weight dimension changed");
        LinearModel {
            kind: self.kind,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_is_dot_product() {
        let m = LinearModel::new(
            ModelKind::LinearRegression,
            Vector::from_vec(vec![1.0, -2.0]),
        );
        assert_eq!(m.predict(&[3.0, 1.0]), 1.0);
    }

    #[test]
    fn classify_signs() {
        let m = LinearModel::new(ModelKind::LinearSvm, Vector::from_vec(vec![1.0]));
        assert_eq!(m.classify(&[2.0]), 1.0);
        assert_eq!(m.classify(&[-2.0]), -1.0);
        assert_eq!(m.classify(&[0.0]), 1.0);
    }

    #[test]
    fn probability_is_sigmoid() {
        let m = LinearModel::new(ModelKind::LogisticRegression, Vector::from_vec(vec![0.0]));
        assert!((m.probability(&[5.0]) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "feature vector")]
    fn predict_checks_dim() {
        let m = LinearModel::new(ModelKind::LinearRegression, Vector::zeros(2));
        m.predict(&[1.0]);
    }

    #[test]
    fn kind_metadata() {
        assert!(ModelKind::LogisticRegression.is_classifier());
        assert!(!ModelKind::LinearRegression.is_classifier());
        assert_eq!(ModelKind::LinearSvm.name(), "L2 Lin. SVM");
    }
}
