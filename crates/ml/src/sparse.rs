//! Sparse logistic regression (the paper's Example 3 workload).
//!
//! Hypotheses are dense (`h ∈ R^d`), example rows are sparse; the gradient
//! of the data term touches only the non-zeros of the batch, so one epoch
//! costs `O(Σ nnz)` instead of `O(n·d)`. The L2 ridge term is applied
//! densely once per step, which keeps the trainer exactly equivalent to
//! the dense objective (no lazy-regularization approximation).

use crate::loss::{log1p_exp, sigmoid};
use crate::train::FitReport;
use mbp_data::sparse::SparseDataset;
use mbp_linalg::Vector;
use mbp_randx::{seeded_rng, MbpRng};
use rand::seq::SliceRandom;

/// Configuration for the sparse SGD trainer.
#[derive(Debug, Clone, Copy)]
pub struct SparseSgdConfig {
    /// Passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial step size.
    pub step: f64,
    /// Per-epoch multiplicative step decay.
    pub decay: f64,
    /// Ridge coefficient `μ ≥ 0`.
    pub ridge: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SparseSgdConfig {
    fn default() -> Self {
        SparseSgdConfig {
            epochs: 20,
            batch_size: 64,
            step: 0.5,
            decay: 0.85,
            ridge: 1e-4,
            seed: 0,
        }
    }
}

/// Averaged logistic loss `(1/n) Σ log(1 + e^{−y·hᵀx}) + (μ/2)‖h‖²` on a
/// sparse dataset.
pub fn logistic_loss_sparse(h: &Vector, ds: &SparseDataset, ridge: f64) -> f64 {
    let n = ds.n().max(1) as f64;
    let mut sum = 0.0;
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let m = x.dot_dense(h).expect("dimension checked at construction");
        sum += log1p_exp(-y * m);
    }
    sum / n + 0.5 * ridge * h.norm2_squared()
}

/// Full gradient of [`logistic_loss_sparse`] (used for optimality checks;
/// the trainer itself works on mini-batches).
pub fn logistic_gradient_sparse(h: &Vector, ds: &SparseDataset, ridge: f64) -> Vector {
    let n = ds.n().max(1) as f64;
    let mut g = Vector::zeros(h.len());
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let m = y * x.dot_dense(h).expect("dimension checked");
        let coeff = -y * sigmoid(-m) / n;
        x.axpy_into(coeff, &mut g).expect("dimension checked");
    }
    if ridge > 0.0 {
        g.axpy(ridge, h).expect("same dimension");
    }
    g
}

/// Trains sparse logistic regression with mini-batch SGD.
///
/// # Panics
/// Panics on invalid config (zero epochs/batch, non-positive step, decay
/// outside `(0, 1]`, negative ridge).
pub fn sgd_logistic_sparse(ds: &SparseDataset, cfg: SparseSgdConfig) -> FitReport {
    assert!(cfg.epochs > 0 && cfg.batch_size > 0, "empty schedule");
    assert!(
        cfg.step > 0.0 && cfg.step.is_finite(),
        "step must be positive"
    );
    assert!(
        cfg.decay > 0.0 && cfg.decay <= 1.0,
        "decay must be in (0, 1]"
    );
    assert!(cfg.ridge >= 0.0, "ridge must be >= 0");
    let n = ds.n();
    let d = ds.d();
    let mut h = Vector::zeros(d);
    if n == 0 {
        return FitReport {
            objective: 0.0,
            grad_norm: 0.0,
            weights: h,
            iterations: 0,
            converged: true,
        };
    }
    let mut rng: MbpRng = seeded_rng(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut step = cfg.step;
    let mut iterations = 0;
    let batch = cfg.batch_size.min(n);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            // Data-term gradient over the batch: touches only batch nnz.
            let scale = 1.0 / chunk.len() as f64;
            let mut g = Vector::zeros(d);
            for &i in chunk {
                let (x, y) = ds.example(i);
                let m = y * x.dot_dense(&h).expect("dimension checked");
                let coeff = -y * sigmoid(-m) * scale;
                x.axpy_into(coeff, &mut g).expect("dimension checked");
            }
            if cfg.ridge > 0.0 {
                g.axpy(cfg.ridge, &h).expect("same dimension");
            }
            h.axpy(-step, &g).expect("same dimension");
            iterations += 1;
        }
        step *= cfg.decay;
    }
    let grad = logistic_gradient_sparse(&h, ds, cfg.ridge);
    let grad_norm = grad.norm2();
    FitReport {
        objective: logistic_loss_sparse(&h, ds, cfg.ridge),
        converged: grad_norm.is_finite(),
        grad_norm,
        weights: h,
        iterations,
    }
}

/// 0/1 misclassification rate of a dense hypothesis on a sparse dataset.
pub fn zero_one_error_sparse(h: &Vector, ds: &SparseDataset) -> f64 {
    let n = ds.n().max(1) as f64;
    let mut errs = 0usize;
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let pred = if x.dot_dense(h).expect("dimension checked") >= 0.0 {
            1.0
        } else {
            -1.0
        };
        if pred != y {
            errs += 1;
        }
    }
    errs as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{newton_logistic, TrainConfig};
    use crate::LogisticLoss;
    use mbp_data::sparse::sparse_text_standin;

    #[test]
    fn sparse_loss_matches_dense_on_densified_data() {
        let mut rng = seeded_rng(71);
        let sp = sparse_text_standin(150, 40, 6, 0.05, &mut rng);
        let dense = sp.to_dense();
        let h: Vector = (0..40).map(|i| ((i * 7) % 5) as f64 * 0.1 - 0.2).collect();
        let ridge = 0.05;
        let sparse_val = logistic_loss_sparse(&h, &sp, ridge);
        let dense_val = {
            use crate::Objective;
            LogisticLoss::ridge(ridge).value(&h, &dense)
        };
        assert!((sparse_val - dense_val).abs() < 1e-10);
        let gs = logistic_gradient_sparse(&h, &sp, ridge);
        let gd = {
            use crate::Objective;
            LogisticLoss::ridge(ridge).gradient(&h, &dense)
        };
        let diff = gs.sub(&gd).unwrap().norm2();
        assert!(diff < 1e-10, "gradient mismatch {diff}");
    }

    #[test]
    fn sparse_sgd_matches_dense_newton() {
        let mut rng = seeded_rng(72);
        let sp = sparse_text_standin(800, 30, 5, 0.03, &mut rng);
        let fit = sgd_logistic_sparse(
            &sp,
            SparseSgdConfig {
                epochs: 60,
                batch_size: 32,
                step: 0.8,
                decay: 0.93,
                ridge: 1e-2,
                seed: 3,
            },
        );
        let newton = newton_logistic(
            &LogisticLoss::ridge(1e-2),
            &sp.to_dense(),
            TrainConfig::default(),
        );
        // SGD should be close in objective (not exactly equal).
        assert!(
            fit.objective < newton.objective * 1.05 + 1e-6,
            "sgd {} vs newton {}",
            fit.objective,
            newton.objective
        );
    }

    #[test]
    fn sparse_classifier_learns_signal() {
        let mut rng = seeded_rng(73);
        let sp = sparse_text_standin(2000, 500, 10, 0.02, &mut rng);
        let (train, test) = sp.split(0.75, &mut rng);
        let fit = sgd_logistic_sparse(&train, SparseSgdConfig::default());
        let err = zero_one_error_sparse(&fit.weights, &test);
        assert!(err < 0.35, "test 0/1 error {err}");
        // Much better than chance.
        assert!(err < 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = seeded_rng(74);
        let sp = sparse_text_standin(100, 20, 4, 0.1, &mut rng);
        let a = sgd_logistic_sparse(&sp, SparseSgdConfig::default());
        let b = sgd_logistic_sparse(&sp, SparseSgdConfig::default());
        assert_eq!(a.weights, b.weights);
    }
}
