//! Buyer-facing test error functions `ε(h, D)`.
//!
//! The paper's Table 2 lists the `ε` choices per model: the training loss
//! itself (square loss for regression, logistic loss for classification) and
//! the 0/1 misclassification rate. These are the three row-panels of
//! Figure 6. The *model-space* square loss `ε_s(h) = ‖h − h*‖²` (Section
//! 4.1) is the canonical strictly convex error that makes `E[ε_s] = δ` exact
//! (Lemma 3); it lives here too since it is just another error function.

use crate::loss::{dot, log1p_exp};
use mbp_data::Dataset;
use mbp_linalg::Vector;

/// The buyer-selectable error function `ε` (Table 2, lower half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestError {
    /// Mean squared residual `(1/2n) Σ (hᵀx − y)²` (regression).
    SquareLoss,
    /// Mean logistic loss `(1/n) Σ log(1 + e^{−y hᵀx})` (classification).
    LogisticLoss,
    /// Misclassification rate `(1/n) Σ 1[y ≠ sign(hᵀx)]` (classification).
    ZeroOne,
}

impl TestError {
    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            TestError::SquareLoss => "square loss",
            TestError::LogisticLoss => "logistic loss",
            TestError::ZeroOne => "0-1 loss",
        }
    }

    /// `true` for errors that are convex in the hypothesis `h` (Theorem 4
    /// applies); the 0/1 loss is not convex, which is exactly the case the
    /// paper studies empirically in Figure 6.
    pub fn is_convex(&self) -> bool {
        !matches!(self, TestError::ZeroOne)
    }

    /// Evaluates the error of hypothesis `h` on `ds`.
    pub fn evaluate(&self, h: &Vector, ds: &Dataset) -> f64 {
        let n = ds.n().max(1) as f64;
        match self {
            TestError::SquareLoss => {
                let mut sum = 0.0;
                for i in 0..ds.n() {
                    let (x, y) = ds.example(i);
                    let r = dot(h.as_slice(), x) - y;
                    sum += r * r;
                }
                sum / (2.0 * n)
            }
            TestError::LogisticLoss => {
                let mut sum = 0.0;
                for i in 0..ds.n() {
                    let (x, y) = ds.example(i);
                    sum += log1p_exp(-y * dot(h.as_slice(), x));
                }
                sum / n
            }
            TestError::ZeroOne => {
                let mut errs = 0usize;
                for i in 0..ds.n() {
                    let (x, y) = ds.example(i);
                    let pred = if dot(h.as_slice(), x) >= 0.0 {
                        1.0
                    } else {
                        -1.0
                    };
                    if pred != y {
                        errs += 1;
                    }
                }
                errs as f64 / n
            }
        }
    }
}

/// A full evaluation report for a model instance on a dataset — what a
/// buyer inspects after a purchase (beyond the single error number the
/// market prices on).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalReport {
    /// Regression metrics.
    Regression {
        /// Mean squared error (unhalved, for familiarity).
        mse: f64,
        /// Root mean squared error.
        rmse: f64,
        /// Coefficient of determination `R²` (can be negative for models
        /// worse than predicting the mean).
        r2: f64,
    },
    /// Binary-classification metrics with labels in `{−1, +1}`.
    Classification {
        /// Fraction classified correctly.
        accuracy: f64,
        /// True positives / false positives / true negatives / false
        /// negatives.
        confusion: [usize; 4],
        /// Precision `tp / (tp + fp)` (1.0 when no positives predicted).
        precision: f64,
        /// Recall `tp / (tp + fn)` (1.0 when no positive labels).
        recall: f64,
        /// Harmonic mean of precision and recall.
        f1: f64,
    },
}

/// Evaluates a hypothesis as a regressor.
pub fn evaluate_regression(h: &Vector, ds: &Dataset) -> EvalReport {
    let n = ds.n().max(1) as f64;
    let mut sse = 0.0;
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let r = dot(h.as_slice(), x) - y;
        sse += r * r;
    }
    let mean_y = ds.y.mean();
    let sst: f64 =
        ds.y.as_slice()
            .iter()
            .map(|y| (y - mean_y) * (y - mean_y))
            .sum();
    let mse = sse / n;
    EvalReport::Regression {
        mse,
        rmse: mse.sqrt(),
        r2: if sst > 0.0 { 1.0 - sse / sst } else { 0.0 },
    }
}

/// Evaluates a hypothesis as a `{−1, +1}` classifier (threshold at 0).
pub fn evaluate_classification(h: &Vector, ds: &Dataset) -> EvalReport {
    let (mut tp, mut fp, mut tn, mut fng) = (0usize, 0usize, 0usize, 0usize);
    for i in 0..ds.n() {
        let (x, y) = ds.example(i);
        let pred = dot(h.as_slice(), x) >= 0.0;
        let actual = y > 0.0;
        match (pred, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, false) => tn += 1,
            (false, true) => fng += 1,
        }
    }
    let n = ds.n().max(1) as f64;
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        1.0
    };
    let recall = if tp + fng > 0 {
        tp as f64 / (tp + fng) as f64
    } else {
        1.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    EvalReport::Classification {
        accuracy: (tp + tn) as f64 / n,
        confusion: [tp, fp, tn, fng],
        precision,
        recall,
        f1,
    }
}

/// The paper's model-space square loss `ε_s(h) = ‖h − h*‖²` (Section 4.1).
///
/// Under the Gaussian mechanism, `E[ε_s(ĥ_δ)] = δ` exactly (Lemma 3), so
/// this error needs no empirical transformation at all.
pub fn model_space_square_loss(h: &Vector, h_star: &Vector) -> f64 {
    h.sub(h_star)
        .expect("hypotheses have equal dimension")
        .norm2_squared()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_linalg::Matrix;

    fn clf() -> Dataset {
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, -1.0, -2.0]).unwrap();
        let y = Vector::from_vec(vec![1.0, 1.0, -1.0, 1.0]); // last is misfit
        Dataset::new(x, y)
    }

    #[test]
    fn zero_one_counts_mistakes() {
        let ds = clf();
        let h = Vector::from_vec(vec![1.0]);
        assert!((TestError::ZeroOne.evaluate(&h, &ds) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn square_loss_zero_on_perfect_fit() {
        let x = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![3.0, 6.0]);
        let ds = Dataset::new(x, y);
        let h = Vector::from_vec(vec![3.0]);
        assert_eq!(TestError::SquareLoss.evaluate(&h, &ds), 0.0);
    }

    #[test]
    fn logistic_loss_decreases_with_margin() {
        // On a consistently labeled dataset, scaling the separator up
        // increases every margin and strictly lowers the logistic loss.
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, -1.5]).unwrap();
        let y = Vector::from_vec(vec![1.0, 1.0, -1.0]);
        let ds = Dataset::new(x, y);
        let small = TestError::LogisticLoss.evaluate(&Vector::from_vec(vec![0.1]), &ds);
        let big = TestError::LogisticLoss.evaluate(&Vector::from_vec(vec![5.0]), &ds);
        assert!(big < small);
    }

    #[test]
    fn model_space_loss_is_squared_distance() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![4.0, 6.0]);
        assert_eq!(model_space_square_loss(&a, &b), 25.0);
        assert_eq!(model_space_square_loss(&a, &a), 0.0);
    }

    #[test]
    fn convexity_flags() {
        assert!(TestError::SquareLoss.is_convex());
        assert!(TestError::LogisticLoss.is_convex());
        assert!(!TestError::ZeroOne.is_convex());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TestError::ZeroOne.name(), "0-1 loss");
    }

    #[test]
    fn regression_report_on_perfect_fit() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let y = Vector::from_vec(vec![2.0, 4.0, 6.0]);
        let ds = Dataset::new(x, y);
        let EvalReport::Regression { mse, rmse, r2 } =
            evaluate_regression(&Vector::from_vec(vec![2.0]), &ds)
        else {
            panic!("wrong variant")
        };
        assert_eq!(mse, 0.0);
        assert_eq!(rmse, 0.0);
        assert_eq!(r2, 1.0);
    }

    #[test]
    fn regression_r2_negative_for_bad_model() {
        let x = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let y = Vector::from_vec(vec![1.0, -1.0]);
        let ds = Dataset::new(x, y);
        // Slope 10 is far worse than predicting the mean (0).
        let EvalReport::Regression { r2, .. } =
            evaluate_regression(&Vector::from_vec(vec![10.0]), &ds)
        else {
            panic!("wrong variant")
        };
        assert!(r2 < 0.0);
    }

    #[test]
    fn classification_report_confusion_counts() {
        let ds = clf(); // predictions with h = 1: (+,+,−,−); labels (+,+,−,+)
        let EvalReport::Classification {
            accuracy,
            confusion,
            precision,
            recall,
            f1,
        } = evaluate_classification(&Vector::from_vec(vec![1.0]), &ds)
        else {
            panic!("wrong variant")
        };
        assert_eq!(confusion, [2, 0, 1, 1]);
        assert!((accuracy - 0.75).abs() < 1e-12);
        assert_eq!(precision, 1.0);
        assert!((recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn classification_degenerate_no_positive_predictions() {
        let x = Matrix::from_vec(2, 1, vec![-1.0, -2.0]).unwrap();
        let y = Vector::from_vec(vec![-1.0, -1.0]);
        let ds = Dataset::new(x, y);
        let EvalReport::Classification {
            precision, recall, ..
        } = evaluate_classification(&Vector::from_vec(vec![1.0]), &ds)
        else {
            panic!("wrong variant")
        };
        assert_eq!(precision, 1.0); // no predicted positives
        assert_eq!(recall, 1.0); // no actual positives
    }
}
