//! Property-based tests for the ML substrate: gradients agree with finite
//! differences on random data, trainers only ever decrease their
//! objectives, and the closed form solves the normal equations.

use mbp_data::Dataset;
use mbp_linalg::{Matrix, Vector};
use mbp_ml::train::{gradient_descent, ridge_closed_form, TrainConfig};
use mbp_ml::{LogisticLoss, Objective, SmoothedHingeLoss, SquaredLoss};
use proptest::prelude::*;

fn dataset(xs: &[f64], ys: &[f64], d: usize) -> Dataset {
    let n = ys.len().min(xs.len() / d);
    let x = Matrix::from_vec(n, d, xs[..n * d].to_vec()).unwrap();
    let y = Vector::from_vec(ys[..n].to_vec());
    Dataset::new(x, y)
}

fn sign_labels(ys: &[f64]) -> Vec<f64> {
    ys.iter()
        .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
        .collect()
}

fn check_gradient(obj: &impl Objective, h: &Vector, ds: &Dataset) -> Result<(), TestCaseError> {
    let g = obj.gradient(h, ds);
    let eps = 1e-6;
    for j in 0..h.len() {
        let mut hp = h.clone();
        hp[j] += eps;
        let mut hm = h.clone();
        hm[j] -= eps;
        let fd = (obj.value(&hp, ds) - obj.value(&hm, ds)) / (2.0 * eps);
        prop_assert!(
            (fd - g[j]).abs() < 1e-4 * (1.0 + fd.abs()),
            "coord {}: fd {} vs grad {}",
            j,
            fd,
            g[j]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three losses have correct gradients at random points on random
    /// data.
    #[test]
    fn gradients_match_finite_differences(
        xs in prop::collection::vec(-2.0..2.0f64, 12..40),
        ys in prop::collection::vec(-3.0..3.0f64, 4..10),
        hs in prop::collection::vec(-1.5..1.5f64, 3),
        mu in 0.0..1.0f64,
    ) {
        let d = 3;
        let reg = dataset(&xs, &ys, d);
        let h = Vector::from_vec(hs.clone());
        check_gradient(&SquaredLoss::ridge(mu), &h, &reg)?;
        let clf = Dataset::new(reg.x.clone(), Vector::from_vec(sign_labels(reg.y.as_slice())));
        check_gradient(&LogisticLoss::ridge(mu), &h, &clf)?;
        check_gradient(&SmoothedHingeLoss::new(mu.max(1e-3), 0.5), &h, &clf)?;
    }

    /// The closed-form ridge solution zeroes the gradient of the averaged
    /// objective (first-order optimality).
    #[test]
    fn closed_form_is_stationary(
        xs in prop::collection::vec(-2.0..2.0f64, 30..60),
        ys in prop::collection::vec(-3.0..3.0f64, 10..20),
        mu in 0.01..1.0f64,
    ) {
        let d = 3;
        let ds = dataset(&xs, &ys, d);
        prop_assume!(ds.n() >= 5);
        let w = ridge_closed_form(&ds, mu).unwrap();
        let g = SquaredLoss::ridge(mu).gradient(&w, &ds);
        prop_assert!(g.norm2() < 1e-8, "gradient norm {}", g.norm2());
    }

    /// Gradient descent never increases the objective relative to the zero
    /// start, and with enough iterations is near-stationary on the strongly
    /// convex ridge objective.
    #[test]
    fn gd_decreases_objective(
        xs in prop::collection::vec(-2.0..2.0f64, 12..40),
        ys in prop::collection::vec(-3.0..3.0f64, 4..10),
    ) {
        let d = 3;
        let ds = dataset(&xs, &ys, d);
        let obj = SquaredLoss::ridge(0.1);
        let fit = gradient_descent(&obj, &ds, TrainConfig { max_iters: 300, tol: 1e-9 });
        let at_zero = obj.value(&Vector::zeros(d), &ds);
        prop_assert!(fit.objective <= at_zero + 1e-12);
        // Near-stationary relative to the starting gradient (backtracking
        // can stall at float resolution on ill-conditioned draws).
        let g0 = obj.gradient(&Vector::zeros(d), &ds).norm2();
        prop_assert!(
            fit.grad_norm < 1e-3 * (1.0 + g0),
            "grad norm {} (initial {})",
            fit.grad_norm,
            g0
        );
    }

    /// Ridge shrinks: larger μ gives a (weakly) smaller norm solution.
    #[test]
    fn ridge_path_shrinks_norms(
        xs in prop::collection::vec(-2.0..2.0f64, 30..60),
        ys in prop::collection::vec(-3.0..3.0f64, 10..20),
    ) {
        let d = 3;
        let ds = dataset(&xs, &ys, d);
        prop_assume!(ds.n() >= 5);
        let mut last = f64::INFINITY;
        for mu in [0.01, 0.1, 1.0, 10.0] {
            let w = ridge_closed_form(&ds, mu).unwrap();
            let norm = w.norm2();
            prop_assert!(norm <= last + 1e-9, "norm grew along ridge path");
            last = norm;
        }
    }
}
