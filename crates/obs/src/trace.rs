//! Causal request tracing: trace/span ids, cross-thread context
//! propagation, and per-phase latency attribution.
//!
//! Every traced request (a quote, buy, publish, or attack) opens a
//! [`trace_root`] that allocates a fresh `TraceId`, pushes itself as the
//! thread's current span context, and — via the `mbp-par` task hook — has
//! that context follow work submitted to pool workers, so spans opened
//! inside a `par_map` chunk parent to the request that spawned them.
//! Within a request, [`phase_for`] guards attribute wall time to the
//! canonical serve-path phases (lookup, φ-inversion, noise, ledger,
//! lock-wait) in labeled log-bucket histograms keyed by
//! `(listing, mechanism, phase)`; [`phase`] opens an unlabeled structural
//! child span anywhere. Completed spans land in the flight-recorder ring
//! (see the `recorder` module).
//!
//! Ids are allocated from process-global counters that [`crate::reset`]
//! rewinds, so a single-threaded run re-executed from the same seed
//! produces the identical id sequence; at higher thread counts id
//! *assignment order* may differ, which is why tree comparisons go through
//! [`canonical_tree`] (names, labels, and structure only).
//!
//! Label strings are interned once into a process-lifetime table (bounded
//! at [`MAX_INTERNED`] entries; overflow collapses to `"-"`), and the
//! labeled-histogram handles for a `(listing, mechanism)` pair are cached
//! per thread, so steady-state tracing costs two clock reads plus a few
//! relaxed atomics per span.

use crate::recorder::{self, RawSpan, SpanData};
use crate::registry::{self, Histogram};
use parking_lot::RwLock;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Maximum interned label/name strings; further strings collapse to `"-"`.
pub const MAX_INTERNED: usize = 4096;

/// Labeled histogram recording whole-request latency per
/// `(listing, mechanism)`.
pub const REQUEST_METRIC: &str = "mbp.trace.request.seconds";

/// Labeled histogram recording per-phase latency per
/// `(listing, mechanism, phase)`.
pub const PHASE_METRIC: &str = "mbp.trace.phase.seconds";

// --- string interner ---------------------------------------------------

#[derive(Default)]
struct Interner {
    ids: BTreeMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            ids: BTreeMap::new(),
            names: vec![Box::from("-")], // id 0: unknown/overflow
        })
    })
}

/// Interns `s`, returning its stable id (0 when the table is full or `s`
/// is `"-"`). The table intentionally survives [`crate::reset`] so cached
/// ids in ring slots and thread-local series caches never dangle.
pub(crate) fn intern(s: &str) -> u32 {
    if s == "-" {
        return 0;
    }
    if let Some(&id) = interner().read().ids.get(s) {
        return id;
    }
    let mut t = interner().write();
    if let Some(&id) = t.ids.get(s) {
        return id;
    }
    if t.names.len() >= MAX_INTERNED {
        return 0;
    }
    let id = t.names.len() as u32;
    t.names.push(Box::from(s));
    t.ids.insert(Box::from(s), id);
    id
}

/// Resolves an interned id back to its string (`"-"` for unknown ids).
pub(crate) fn intern_name(id: u32) -> String {
    let t = interner().read();
    t.names
        .get(id as usize)
        .map_or_else(|| "-".to_string(), |n| n.to_string())
}

// --- ids, context, anchor ----------------------------------------------

static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(0);
static RESET_EPOCH: AtomicU64 = AtomicU64::new(0);

fn next_trace() -> u32 {
    (NEXT_TRACE.fetch_add(1, Ordering::Relaxed) as u32).wrapping_add(1)
}

fn next_span() -> u32 {
    (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) as u32).wrapping_add(1)
}

thread_local! {
    /// Packed `(trace << 32) | span` context of the innermost open span on
    /// this thread (0 = none). Propagated across `mbp-par` spawns.
    static CONTEXT: Cell<u64> = const { Cell::new(0) };
}

fn pack(trace: u32, span: u32) -> u64 {
    (trace as u64) << 32 | span as u64
}

/// The process trace-time anchor: span start offsets are measured from it.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

fn nanos_since_anchor(t: Instant) -> u64 {
    t.saturating_duration_since(anchor()).as_nanos() as u64
}

thread_local! {
    /// One-shot replay-seed hint for the next [`trace_root_hinted`] call on
    /// this thread (0 = none pending).
    static REQUEST_SEED: Cell<u64> = const { Cell::new(0) };
}

/// Attaches `seed` as the replay seed of the next hinted trace root opened
/// on this thread. Callers that derive a request's RNG from a known seed
/// (simulation shards, the CLI trace driver, tests) call this right before
/// entering the broker, so slow-request exemplars carry the seed needed to
/// replay them. No-op when tracing is off.
pub fn set_request_seed(seed: u64) {
    if crate::is_tracing() {
        REQUEST_SEED.with(|c| c.set(seed));
    }
}

/// Takes (and clears) this thread's pending request-seed hint.
pub fn take_request_seed() -> u64 {
    REQUEST_SEED.with(|c| c.replace(0))
}

fn hook_capture() -> u64 {
    CONTEXT.with(|c| c.get())
}

fn hook_enter(t: u64) -> u64 {
    CONTEXT.with(|c| c.replace(t))
}

fn hook_exit(p: u64) {
    CONTEXT.with(|c| c.set(p));
}

/// Installs the `mbp-par` task hook that carries span contexts onto pool
/// workers. Idempotent; called when tracing is first enabled.
pub(crate) fn install_par_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        mbp_par::set_task_hook(mbp_par::TaskHook {
            capture: hook_capture,
            enter: hook_enter,
            exit: hook_exit,
        });
    });
}

/// Rewinds the id counters and invalidates thread-local series caches.
/// Part of [`crate::reset`]; quiesce tracing first.
pub(crate) fn reset() {
    NEXT_TRACE.store(0, Ordering::SeqCst);
    NEXT_SPAN.store(0, Ordering::SeqCst);
    RESET_EPOCH.fetch_add(1, Ordering::SeqCst);
}

// --- phases and the per-thread series cache ----------------------------

/// The canonical serve-path phases attributed by [`phase_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Menu / listing lookup.
    Lookup,
    /// φ-inversion: mapping an error target to a noise-control parameter.
    PhiInversion,
    /// Mechanism noise generation and application.
    Noise,
    /// Ledger append (or stripe append in the concurrent broker).
    Ledger,
    /// Time spent waiting on contended broker locks.
    LockWait,
}

impl Phase {
    /// All phases, in attribution order.
    pub const ALL: [Phase; 5] = [
        Phase::Lookup,
        Phase::PhiInversion,
        Phase::Noise,
        Phase::Ledger,
        Phase::LockWait,
    ];

    /// The phase's label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Lookup => "lookup",
            Phase::PhiInversion => "phi_inversion",
            Phase::Noise => "noise",
            Phase::Ledger => "ledger",
            Phase::LockWait => "lock_wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Lookup => 0,
            Phase::PhiInversion => 1,
            Phase::Noise => 2,
            Phase::Ledger => 3,
            Phase::LockWait => 4,
        }
    }
}

fn phase_name_ids() -> &'static [u32; 5] {
    static IDS: OnceLock<[u32; 5]> = OnceLock::new();
    IDS.get_or_init(|| Phase::ALL.map(|p| intern(p.as_str())))
}

/// Interned name id of `p` (0, the unknown-name id, if the table and the
/// enum ever disagree in length).
fn phase_name_id(p: Phase) -> u32 {
    phase_name_ids().get(p.index()).copied().unwrap_or(0)
}

/// Pre-resolved histogram handles for one `(listing, mechanism)` pair.
struct Series {
    listing_id: u32,
    mech_id: u32,
    total: Arc<Histogram>,
    phases: [Arc<Histogram>; 5],
}

thread_local! {
    /// `(reset epoch, (listing_id << 32 | mech_id) -> handles)`.
    static SERIES_CACHE: RefCell<(u64, BTreeMap<u64, Rc<Series>>)> =
        const { RefCell::new((0, BTreeMap::new())) };
}

fn resolve_series(listing: &str, mechanism: &str) -> Rc<Series> {
    let listing_id = intern(listing);
    let mech_id = intern(mechanism);
    let key = pack(listing_id, mech_id);
    let epoch = RESET_EPOCH.load(Ordering::Relaxed);
    SERIES_CACHE.with(|cache| {
        // Re-entrant resolve (a histogram callback opening its own span)
        // would hit a live borrow; skip the cache rather than abort — the
        // handles are merely memoized, correctness never depends on them.
        let Ok(mut cache) = cache.try_borrow_mut() else {
            return build_series(listing_id, mech_id);
        };
        if cache.0 != epoch {
            // The registry was reset; cached Arcs point at detached
            // histograms. Drop them and re-resolve lazily.
            cache.0 = epoch;
            cache.1.clear();
        }
        if let Some(s) = cache.1.get(&key) {
            return Rc::clone(s);
        }
        let s = build_series(listing_id, mech_id);
        cache.1.insert(key, Rc::clone(&s));
        s
    })
}

/// Resolves the `(listing, mechanism)` histogram handles uncached.
fn build_series(listing_id: u32, mech_id: u32) -> Rc<Series> {
    let l = intern_name(listing_id);
    let m = intern_name(mech_id);
    let total = registry::labeled_histogram(REQUEST_METRIC, &[("listing", &l), ("mechanism", &m)]);
    let phases = Phase::ALL.map(|p| {
        registry::labeled_histogram(
            PHASE_METRIC,
            &[("listing", &l), ("mechanism", &m), ("phase", p.as_str())],
        )
    });
    Rc::new(Series {
        listing_id,
        mech_id,
        total,
        phases,
    })
}

// --- RAII guards -------------------------------------------------------

struct RootInner {
    prev: u64,
    trace: u32,
    span: u32,
    name_id: u32,
    seed: u64,
    series: Rc<Series>,
    start: Instant,
}

/// RAII guard for a traced request. Created by [`trace_root`]; completing
/// (dropping) it records the root span, updates the request histogram, and
/// captures a tail-latency exemplar when the slow threshold is crossed.
pub struct TraceRoot {
    inner: Option<RootInner>,
}

impl TraceRoot {
    /// This request's trace id (`None` when tracing is disabled).
    pub fn trace_id(&self) -> Option<u32> {
        self.inner.as_ref().map(|i| i.trace)
    }

    /// Opens a labeled phase guard under this root, reusing its resolved
    /// `(listing, mechanism)` series.
    pub fn phase(&self, p: Phase) -> PhaseGuard {
        match &self.inner {
            None => PhaseGuard { inner: None },
            Some(root) => {
                let span = next_span();
                let prev = CONTEXT.with(|c| c.replace(pack(root.trace, span)));
                PhaseGuard {
                    inner: Some(PhaseInner {
                        prev,
                        trace: root.trace,
                        span,
                        parent: prev as u32,
                        name_id: phase_name_id(p),
                        series_phase: Some((Rc::clone(&root.series), p.index())),
                        start: Instant::now(),
                    }),
                }
            }
        }
    }
}

impl Drop for TraceRoot {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur = inner.start.elapsed();
        CONTEXT.with(|c| c.set(inner.prev));
        inner.series.total.observe(dur.as_secs_f64());
        let raw = RawSpan {
            trace: inner.trace,
            span: inner.span,
            parent: 0,
            name: inner.name_id,
            listing: inner.series.listing_id,
            mechanism: inner.series.mech_id,
            seed: inner.seed,
            start_nanos: nanos_since_anchor(inner.start),
            dur_nanos: dur.as_nanos() as u64,
        };
        recorder::record(&raw);
        if raw.dur_nanos >= recorder::slow_threshold_nanos() {
            recorder::capture_exemplar(&raw);
        }
    }
}

/// Opens a trace root for one request. `listing`/`mechanism` label the
/// request's latency attribution (`"-"` when not applicable); `seed` is
/// the request's deterministic seed, retained on the root record so slow
/// exemplars can be replayed. Inert (one branch) when tracing is off.
pub fn trace_root(name: &'static str, listing: &str, mechanism: &str, seed: u64) -> TraceRoot {
    if !crate::is_tracing() {
        return TraceRoot { inner: None };
    }
    let series = resolve_series(listing, mechanism);
    let trace = next_trace();
    let span = next_span();
    let prev = CONTEXT.with(|c| c.replace(pack(trace, span)));
    TraceRoot {
        inner: Some(RootInner {
            prev,
            trace,
            span,
            name_id: intern(name),
            seed,
            series,
            start: Instant::now(),
        }),
    }
}

/// Opens a trace root whose replay seed is this thread's pending
/// request-seed hint (see [`set_request_seed`]). This is the form the
/// broker's serve paths use: the broker only sees an opaque `&mut MbpRng`,
/// so the seed rides in out-of-band from whoever derived the RNG. Inert
/// (one branch, the hint untouched) when tracing is off.
pub fn trace_root_hinted(name: &'static str, listing: &str, mechanism: &str) -> TraceRoot {
    if !crate::is_tracing() {
        return TraceRoot { inner: None };
    }
    trace_root(name, listing, mechanism, take_request_seed())
}

struct PhaseInner {
    prev: u64,
    trace: u32,
    span: u32,
    parent: u32,
    name_id: u32,
    series_phase: Option<(Rc<Series>, usize)>,
    start: Instant,
}

/// RAII guard for a child span. Dropping it records the span into the
/// flight-recorder ring and, for labeled guards, the phase histogram.
pub struct PhaseGuard {
    inner: Option<PhaseInner>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur = inner.start.elapsed();
        CONTEXT.with(|c| c.set(inner.prev));
        let mut labels = (0u32, 0u32);
        if let Some((series, idx)) = &inner.series_phase {
            if let Some(h) = series.phases.get(*idx) {
                h.observe(dur.as_secs_f64());
            }
            labels = (series.listing_id, series.mech_id);
        }
        recorder::record(&RawSpan {
            trace: inner.trace,
            span: inner.span,
            parent: inner.parent,
            name: inner.name_id,
            listing: labels.0,
            mechanism: labels.1,
            seed: 0,
            start_nanos: nanos_since_anchor(inner.start),
            dur_nanos: dur.as_nanos() as u64,
        });
    }
}

fn open_phase(name_id: u32, series_phase: Option<(Rc<Series>, usize)>) -> PhaseGuard {
    if !crate::is_tracing() {
        return PhaseGuard { inner: None };
    }
    let ctx = CONTEXT.with(|c| c.get());
    let trace = (ctx >> 32) as u32;
    let span = next_span();
    let prev = CONTEXT.with(|c| c.replace(pack(trace, span)));
    PhaseGuard {
        inner: Some(PhaseInner {
            prev,
            trace,
            span,
            parent: ctx as u32,
            name_id,
            series_phase,
            start: Instant::now(),
        }),
    }
}

/// Opens an unlabeled structural child span named `name` under the current
/// context (which may live on another thread's request, carried here by
/// the `mbp-par` hook). Inert when tracing is off.
pub fn phase(name: &'static str) -> PhaseGuard {
    if !crate::is_tracing() {
        return PhaseGuard { inner: None };
    }
    open_phase(intern(name), None)
}

/// Opens a labeled phase span attributing its wall time to the
/// `(listing, mechanism, phase)` histogram series. Inert when tracing is
/// off.
pub fn phase_for(p: Phase, listing: &str, mechanism: &str) -> PhaseGuard {
    if !crate::is_tracing() {
        return PhaseGuard { inner: None };
    }
    let series = resolve_series(listing, mechanism);
    open_phase(phase_name_id(p), Some((series, p.index())))
}

// --- canonical trees ---------------------------------------------------

/// Renders the span tree of `trace` in a canonical, timing- and
/// id-independent form: each span as `name(listing,mechanism)` with its
/// children rendered recursively, sorted lexicographically. Two runs of
/// the same request produce equal canonical trees regardless of thread
/// count or id assignment order.
pub fn canonical_tree(spans: &[SpanData], trace: u32) -> String {
    let in_trace: Vec<&SpanData> = spans.iter().filter(|s| s.trace == trace).collect();
    let ids: std::collections::BTreeSet<u32> = in_trace.iter().map(|s| s.span).collect();
    let mut by_parent: BTreeMap<u32, Vec<&SpanData>> = BTreeMap::new();
    let mut roots: Vec<&SpanData> = Vec::new();
    for s in &in_trace {
        if s.parent != 0 && ids.contains(&s.parent) && s.parent != s.span {
            by_parent.entry(s.parent).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    fn render(s: &SpanData, by_parent: &BTreeMap<u32, Vec<&SpanData>>, depth: usize) -> String {
        let label = format!("{}({},{})", s.name, s.listing, s.mechanism);
        if depth >= 64 {
            return label; // defensive: a garbled ring must not recurse away
        }
        let mut kids: Vec<String> = by_parent
            .get(&s.span)
            .map(|v| v.iter().map(|c| render(c, by_parent, depth + 1)).collect())
            .unwrap_or_default();
        if kids.is_empty() {
            label
        } else {
            kids.sort();
            format!("{label}[{}]", kids.join(","))
        }
    }
    let mut rendered: Vec<String> = roots.iter().map(|r| render(r, &by_parent, 0)).collect();
    rendered.sort();
    rendered.join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm() {
        crate::reset();
        crate::enable();
        crate::set_tracing(true);
    }

    fn disarm() {
        crate::set_tracing(false);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = crate::test_support::serial();
        crate::reset();
        crate::disable();
        crate::set_tracing(false);
        {
            let root = trace_root("quote", "l1", "gaussian", 7);
            assert_eq!(root.trace_id(), None);
            let _p = root.phase(Phase::Lookup);
            let _q = phase("free");
        }
        assert!(crate::recorder_snapshot().is_empty());
        assert!(crate::snapshot().is_empty());
    }

    #[test]
    fn root_and_phases_record_spans_and_labeled_histograms() {
        let _g = crate::test_support::serial();
        arm();
        {
            let root = trace_root("quote", "l1", "gaussian", 42);
            {
                let _p = root.phase(Phase::Lookup);
            }
            {
                let _p = root.phase(Phase::Noise);
            }
        }
        let spans = crate::recorder_snapshot();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "quote").expect("root");
        assert_eq!(root.seed, 42);
        assert_eq!(root.parent, 0);
        assert_eq!(root.listing, "l1");
        for phase_name in ["lookup", "noise"] {
            let p = spans.iter().find(|s| s.name == phase_name).expect("phase");
            assert_eq!(p.parent, root.span);
            assert_eq!(p.trace, root.trace);
        }
        let snap = crate::snapshot();
        let total = snap
            .labeled(
                REQUEST_METRIC,
                &[("listing", "l1"), ("mechanism", "gaussian")],
            )
            .expect("request series");
        assert_eq!(total.hist.count, 1);
        let lookup = snap
            .labeled(
                PHASE_METRIC,
                &[
                    ("listing", "l1"),
                    ("mechanism", "gaussian"),
                    ("phase", "lookup"),
                ],
            )
            .expect("phase series");
        assert_eq!(lookup.hist.count, 1);
        disarm();
    }

    #[test]
    fn span_tree_is_identical_across_thread_counts() {
        let _g = crate::test_support::serial();
        let tree_at = |threads: usize| {
            arm();
            let tid = {
                let root = trace_root("par_map", "l9", "gaussian", 11);
                mbp_par::with_threads(threads, || {
                    let _out = mbp_par::par_map(64, 4, |i| {
                        let _p = phase("work");
                        i * 2
                    });
                });
                root.trace_id().expect("tracing armed")
            };
            let t = canonical_tree(&crate::recorder_snapshot(), tid);
            disarm();
            t
        };
        let one = tree_at(1);
        let four = tree_at(4);
        assert_eq!(one, four);
        // 64 work phases, all parented to the root.
        assert_eq!(one.matches("work").count(), 64);
        assert!(one.starts_with("par_map(l9,gaussian)["));
    }

    #[test]
    fn ring_is_deterministic_single_threaded() {
        let _g = crate::test_support::serial();
        let run = || {
            arm();
            mbp_par::with_threads(1, || {
                for req in 0..5u64 {
                    let root = trace_root("quote", "l1", "gaussian", req);
                    let _p = root.phase(Phase::Lookup);
                }
            });
            let spans: Vec<(u64, u32, u32, u32, String)> = crate::recorder_snapshot()
                .iter()
                .map(|s| (s.idx, s.trace, s.span, s.parent, s.name.clone()))
                .collect();
            disarm();
            spans
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slow_roots_become_exemplars_and_replay_identically() {
        let _g = crate::test_support::serial();
        arm();
        crate::set_slow_threshold_micros(0); // every root is "slow"
        let run_request = |seed: u64| {
            let root = trace_root("quote", "l1", "gaussian", seed);
            {
                let _p = root.phase(Phase::Lookup);
            }
            {
                let _p = root.phase(Phase::Noise);
            }
            {
                let _p = root.phase(Phase::Ledger);
            }
        };
        run_request(1234);
        let exs = crate::exemplars();
        assert_eq!(exs.len(), 1);
        let ex = &exs[0];
        assert_eq!(ex.root.seed, 1234);
        assert_eq!(ex.children.len(), 3);
        let mut captured: Vec<SpanData> = ex.children.clone();
        captured.push(ex.root.clone());
        let captured_tree = canonical_tree(&captured, ex.root.trace);

        // Replay: reset and re-run the request from the exemplar's seed.
        crate::reset();
        crate::set_slow_threshold_micros(u64::MAX / 1000);
        run_request(exs[0].root.seed);
        let spans = crate::recorder_snapshot();
        let root = spans.iter().find(|s| s.name == "quote").expect("root");
        assert_eq!(root.seed, 1234);
        let replay_tree = canonical_tree(&spans, root.trace);
        assert_eq!(captured_tree, replay_tree);
        disarm();
    }
}
