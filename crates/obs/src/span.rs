//! RAII span timers. A [`span`] measures wall time from creation to drop,
//! recording it into the histogram `<name>.seconds`. Spans nest: each
//! thread keeps a stack of open span names, and every span drop emits a
//! `Trace`-level event carrying its full `parent>child` path, so draining
//! events at `--trace` reconstructs the trace tree.

use crate::Verbosity;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Timer guard returned by [`span`]; records on drop.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `name` (e.g. `"mbp.core.buy"`). When recording is
/// disabled this is a single atomic load and the returned guard is inert.
pub fn span(name: &'static str) -> Span {
    if !crate::is_enabled() {
        return Span { name, start: None };
    }
    // `try_borrow_mut` fails only on re-entry (a span opened from inside
    // the drop path while the stack is borrowed); return an inert guard
    // then — instrumentation must never abort the thread it observes.
    let pushed = STACK.with(|s| s.try_borrow_mut().map(|mut stack| stack.push(name)).is_ok());
    if !pushed {
        return Span { name, start: None };
    }
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let secs = start.elapsed().as_secs_f64();
        // A `start: Some` span always pushed, so the pop below stays
        // balanced; the fallible borrow mirrors `span()` for re-entrancy.
        let path = STACK.with(|s| match s.try_borrow_mut() {
            Ok(mut stack) => {
                let path = stack.join(">");
                stack.pop();
                path
            }
            Err(_) => String::new(),
        });
        // observe()/event() re-check the enabled flag, so disabling midway
        // through a span only skips the record — the stack stays balanced.
        crate::observe(&format!("{}.seconds", self.name), secs);
        crate::event(
            Verbosity::Trace,
            self.name,
            "span",
            &[("path", path), ("secs", format!("{secs:.9}"))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn span_records_histogram_and_trace_event() {
        let _g = test_support::serial();
        crate::reset();
        crate::enable();
        crate::set_verbosity(Verbosity::Trace);
        {
            let _outer = span("mbp.test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("mbp.test.inner");
            }
        }
        let snap = crate::snapshot();
        let outer = snap.histogram("mbp.test.outer.seconds").expect("outer");
        assert_eq!(outer.count, 1);
        assert!(outer.sum >= 0.002, "outer span too short: {}", outer.sum);
        assert_eq!(snap.histogram("mbp.test.inner.seconds").unwrap().count, 1);

        let events = crate::drain_events();
        let paths: Vec<&str> = events
            .iter()
            .filter(|e| e.message == "span")
            .map(|e| {
                e.fields
                    .iter()
                    .find(|(k, _)| k == "path")
                    .unwrap()
                    .1
                    .as_str()
            })
            .collect();
        assert!(
            paths.contains(&"mbp.test.outer>mbp.test.inner"),
            "{paths:?}"
        );
        assert!(paths.contains(&"mbp.test.outer"), "{paths:?}");
        crate::set_verbosity(Verbosity::Info);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_span_is_inert_and_stack_balanced() {
        let _g = test_support::serial();
        crate::reset();
        crate::disable();
        {
            let _s = span("mbp.test.noop");
        }
        assert!(crate::snapshot().is_empty());
        // A subsequent enabled span sees an empty stack (path == own name).
        crate::enable();
        crate::set_verbosity(Verbosity::Trace);
        {
            let _s = span("mbp.test.solo");
        }
        let events = crate::drain_events();
        let path = &events
            .iter()
            .find(|e| e.message == "span")
            .unwrap()
            .fields
            .iter()
            .find(|(k, _)| k == "path")
            .unwrap()
            .1;
        assert_eq!(path, "mbp.test.solo");
        crate::set_verbosity(Verbosity::Info);
        crate::disable();
        crate::reset();
    }
}
