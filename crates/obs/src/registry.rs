//! The global metrics registry: counters, gauges, and log-bucketed
//! histograms, all updated with relaxed atomics behind a read-mostly map.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Total histogram buckets: one underflow, 48 log-spaced (four per decade
/// across 1e-9 .. 1e3), one overflow.
pub const BUCKETS: usize = 50;

/// Maximum distinct label sets per labeled metric name. Once a metric has
/// this many series, further label combinations collapse into a single
/// overflow series whose label values are all [`OVERFLOW_LABEL`], bounding
/// registry cardinality no matter how many listings a market carries.
pub const MAX_LABEL_SETS: usize = 64;

/// Label value used for the collapsed overflow series.
pub const OVERFLOW_LABEL: &str = "<other>";

const LOG_BUCKETS: usize = BUCKETS - 2;
const LOW: f64 = 1e-9;
const HIGH: f64 = 1e3;
const PER_DECADE: f64 = 4.0;

#[derive(Debug, Default)]
pub(crate) struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn add(&self, n: u64) {
        // fetch_add on AtomicU64 wraps, which is the behaviour we document.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
pub(crate) struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub(crate) fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn add(&self, d: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

pub(crate) struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Bucket index for an observed value. Buckets are half-open `[lo, hi)`;
/// the small epsilon in index space (~1e-6 of a bucket, i.e. a relative
/// value error around 6e-7) keeps exact decade boundaries like `1e-6` from
/// falling one bucket low due to `log10` rounding.
pub(crate) fn bucket_index(v: f64) -> usize {
    if v < LOW {
        return 0;
    }
    if v >= HIGH {
        return BUCKETS - 1;
    }
    let pos = ((v.log10() - LOW.log10()) * PER_DECADE + 1e-6).floor() as isize;
    (pos.clamp(0, LOG_BUCKETS as isize - 1) + 1) as usize
}

/// Lower/upper bounds of bucket `i`. The underflow bucket spans `[0, 1e-9)`
/// and the overflow bucket `[1e3, +inf)`.
pub(crate) fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, LOW)
    } else if i == BUCKETS - 1 {
        (HIGH, f64::INFINITY)
    } else {
        let exp = |k: usize| 10f64.powf(LOW.log10() + (k as f64 - 1.0) / PER_DECADE);
        (exp(i), exp(i + 1))
    }
}

impl Histogram {
    pub(crate) fn observe(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        // `bucket_index` clamps into range; `get` keeps the accessor total
        // so a future bucket-layout change cannot abort a serve thread.
        if let Some(slot) = self.counts.get(bucket_index(v)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&self.sum_bits, |s| s + v);
        cas_f64(&self.min_bits, |m| m.min(v));
        cas_f64(&self.max_bits, |m| m.max(v));
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let q = |p: f64| quantile(&counts, count, min, max, p);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

fn cas_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Quantile estimate by linear interpolation inside the bucket where the
/// cumulative count crosses `q * count`, clamped to the observed range.
fn quantile(counts: &[u64], count: u64, min: f64, max: f64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let target = q * count as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let prev = cum as f64;
        cum += c;
        if cum as f64 >= target {
            let (lo, hi) = bucket_bounds(i);
            let hi = if hi.is_finite() { hi } else { max.max(lo) };
            let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
            return Some((lo + frac * (hi - lo)).clamp(min, max));
        }
    }
    Some(max)
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter `(name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value)` pairs.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
    /// Labeled histogram series, sorted by `(name, labels)`.
    pub labeled: Vec<LabeledSeriesSnapshot>,
}

impl Snapshot {
    /// True when no metric of any kind has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.labeled.is_empty()
    }

    /// Value of the counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Summary of the labeled series `name` with exactly `labels`, if
    /// registered. Label order must match the recording site's order.
    pub fn labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LabeledSeriesSnapshot> {
        self.labeled.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (ek, ev))| k == ek && v == ev)
        })
    }
}

/// One series of a labeled histogram: the base metric name, the label
/// key/value pairs identifying the series, and its histogram summary.
#[derive(Debug, Clone)]
pub struct LabeledSeriesSnapshot {
    /// Base metric name (without labels).
    pub name: String,
    /// Label `(key, value)` pairs in recording-site order.
    pub labels: Vec<(String, String)>,
    /// Histogram summary for this series.
    pub hist: HistogramSnapshot,
}

/// Summary of one histogram: totals, observed range, and interpolated
/// quantiles (`None` when the histogram is empty).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 90th percentile.
    pub p90: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

// BTreeMap keeps registration storage name-ordered, so snapshots and
// exports are deterministic by construction (hash-order iteration here
// would reorder JSON/Prometheus output run to run).
type LabeledFamily = BTreeMap<Vec<(String, String)>, Arc<Histogram>>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    labeled: BTreeMap<String, LabeledFamily>,
}

fn registry() -> &'static RwLock<Inner> {
    static REGISTRY: OnceLock<RwLock<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Inner::default()))
}

macro_rules! getter {
    ($fn_name:ident, $field:ident, $ty:ty) => {
        pub(crate) fn $fn_name(name: &str) -> Arc<$ty> {
            if let Some(m) = registry().read().$field.get(name) {
                return m.clone();
            }
            registry()
                .write()
                .$field
                .entry(name.to_string())
                .or_default()
                .clone()
        }
    };
}

getter!(counter, counters, Counter);
getter!(gauge, gauges, Gauge);
getter!(histogram, histograms, Histogram);

/// Handle to the labeled histogram series `name{labels}`. Callers are
/// expected to cache the returned `Arc` (the trace layer resolves a series
/// once per `(listing, mechanism)` pair, not once per observation): the
/// miss path allocates the key and may take the write lock.
///
/// Cardinality is bounded: past [`MAX_LABEL_SETS`] series for one name,
/// new label combinations all share the collapsed overflow series whose
/// values are [`OVERFLOW_LABEL`].
pub(crate) fn labeled_histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    let key: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    if let Some(series) = registry().read().labeled.get(name) {
        if let Some(h) = series.get(&key) {
            return h.clone();
        }
    }
    let mut inner = registry().write();
    let series = inner.labeled.entry(name.to_string()).or_default();
    if series.contains_key(&key) || series.len() < MAX_LABEL_SETS {
        return series.entry(key).or_default().clone();
    }
    let overflow: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, _)| (k.to_string(), OVERFLOW_LABEL.to_string()))
        .collect();
    series.entry(overflow).or_default().clone()
}

pub(crate) fn snapshot() -> Snapshot {
    let inner = registry().read();
    let counters: Vec<(String, u64)> = inner
        .counters
        .iter()
        .map(|(n, c)| (n.clone(), c.get()))
        .collect();
    let gauges: Vec<(String, f64)> = inner
        .gauges
        .iter()
        .map(|(n, g)| (n.clone(), g.get()))
        .collect();
    let histograms: Vec<HistogramSnapshot> = inner
        .histograms
        .iter()
        .map(|(n, h)| h.snapshot(n))
        .collect();
    let labeled: Vec<LabeledSeriesSnapshot> = inner
        .labeled
        .iter()
        .flat_map(|(n, series)| {
            series.iter().map(|(labels, h)| LabeledSeriesSnapshot {
                name: n.clone(),
                labels: labels.clone(),
                hist: h.snapshot(n),
            })
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        histograms,
        labeled,
    }
}

pub(crate) fn reset() {
    let mut inner = registry().write();
    inner.counters.clear();
    inner.gauges.clear();
    inner.histograms.clear();
    inner.labeled.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open() {
        // Exact decade boundaries land in the bucket whose lower bound they
        // are, despite log10 rounding.
        for (v, expect_lower_bound) in [
            (1e-9, 1e-9),
            (1e-6, 1e-6),
            (1e-3, 1e-3),
            (1.0, 1.0),
            (10.0, 10.0),
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v < hi,
                "{v} mapped to bucket {i} with bounds [{lo}, {hi})"
            );
            assert!(
                (lo - expect_lower_bound).abs() / expect_lower_bound < 1e-9,
                "{v}: bucket lower bound {lo}, expected {expect_lower_bound}"
            );
        }
    }

    #[test]
    fn bucket_index_covers_extremes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(5e-10), 0);
        assert_eq!(bucket_index(1e3), BUCKETS - 1);
        assert_eq!(bucket_index(1e9), BUCKETS - 1);
        // Just below the top of the log range stays out of overflow.
        assert_eq!(bucket_index(999.0), BUCKETS - 2);
    }

    #[test]
    fn buckets_tile_the_range() {
        // Consecutive buckets share a boundary and are monotone.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert!(
                (hi - lo_next).abs() / lo_next.max(1e-300) < 1e-9,
                "gap between bucket {i} (hi={hi}) and {} (lo={lo_next})",
                i + 1
            );
        }
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let h = Histogram::default();
        // 100 identical values in one bucket: every quantile must clamp to
        // the observed point value, not the bucket bounds.
        for _ in 0..100 {
            h.observe(0.0125);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Some(0.0125));
        assert_eq!(s.p99, Some(0.0125));
        assert_eq!(s.min, 0.0125);
        assert_eq!(s.max, 0.0125);
    }

    #[test]
    fn quantiles_order_across_buckets() {
        let h = Histogram::default();
        // Spread across several decades: quantiles must be monotone and lie
        // inside the observed range, with the median near the low mass.
        for _ in 0..90 {
            h.observe(1e-4);
        }
        for _ in 0..10 {
            h.observe(1.0);
        }
        let s = h.snapshot("t");
        let (p50, p90, p99) = (s.p50.unwrap(), s.p90.unwrap(), s.p99.unwrap());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(s.min <= p50 && p99 <= s.max);
        assert!(p50 < 1e-3, "median {p50} should sit in the low cluster");
        assert!(p99 >= 0.5, "p99 {p99} should reach the high cluster");
    }

    #[test]
    fn ignores_non_finite_and_negative() {
        let h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        assert_eq!(h.snapshot("t").count, 0);
        assert_eq!(h.snapshot("t").p50, None);
    }

    #[test]
    fn labeled_series_cardinality_is_bounded() {
        let _g = crate::test_support::serial();
        reset();
        let name = "mbp.test.labeled.seconds";
        for i in 0..MAX_LABEL_SETS + 10 {
            let listing = format!("l{i}");
            let h = labeled_histogram(name, &[("listing", &listing), ("phase", "lookup")]);
            h.observe(0.001);
        }
        let snap = snapshot();
        let series: Vec<_> = snap.labeled.iter().filter(|s| s.name == name).collect();
        assert!(
            series.len() <= MAX_LABEL_SETS + 1,
            "cardinality cap breached: {} series",
            series.len()
        );
        let overflow = snap
            .labeled(
                name,
                &[("listing", OVERFLOW_LABEL), ("phase", OVERFLOW_LABEL)],
            )
            .expect("overflow series exists");
        assert_eq!(overflow.hist.count, 10);
        // Re-resolving an existing series returns the same accumulator.
        let again = labeled_histogram(name, &[("listing", "l0"), ("phase", "lookup")]);
        again.observe(0.002);
        let snap = snapshot();
        let s = snap
            .labeled(name, &[("listing", "l0"), ("phase", "lookup")])
            .expect("series l0");
        assert_eq!(s.hist.count, 2);
        reset();
    }

    #[test]
    fn gauge_add_is_atomic_under_contention() {
        let g = std::sync::Arc::new(Gauge::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 40_000.0);
    }
}
