//! The always-on flight recorder: a fixed-size, lock-free ring of
//! completed span records plus tail-latency exemplars.
//!
//! Completed spans (roots and phases, see [`crate::trace`]) are written
//! into a seqlock-style ring of all-atomic slots: a writer claims a slot
//! with one `fetch_add` on the head counter, bumps the slot's sequence tag
//! to odd, stores the record fields, and bumps the tag back to even.
//! Readers snapshot a slot only when the tag is even and unchanged across
//! the field reads, so a torn slot is skipped rather than misreported.
//! Recording is therefore wait-free for writers and never blocks the serve
//! path; the price is that a reader may miss the handful of slots being
//! rewritten at snapshot time, which is the right trade for a debugging
//! instrument.
//!
//! **Exemplars**: when a root span's duration crosses the configured slow
//! threshold ([`set_slow_threshold_micros`]), its record and every ring
//! span of the same trace (its child tree) are copied into a small bounded
//! exemplar store together with the request seed, so the exact request can
//! be replayed later. The store keeps the slowest [`MAX_EXEMPLARS`] roots.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Number of slots in the flight-recorder ring.
pub const RING_SLOTS: usize = 4096;

/// Maximum retained tail-latency exemplars; once full, a new exemplar
/// evicts the fastest retained root if it is slower.
pub const MAX_EXEMPLARS: usize = 32;

/// One ring slot. `seq` is the seqlock tag (even = stable, odd = being
/// written); `idx` is the 1-based global claim index (0 = never written),
/// which gives snapshots a total completion order.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    idx: AtomicU64,
    /// `trace << 32 | span`.
    ids: AtomicU64,
    /// `parent_span << 32 | interned_name`.
    parent_name: AtomicU64,
    /// `interned_listing << 32 | interned_mechanism`.
    labels: AtomicU64,
    seed: AtomicU64,
    start_nanos: AtomicU64,
    dur_nanos: AtomicU64,
}

static HEAD: AtomicU64 = AtomicU64::new(0);

fn ring() -> &'static [Slot] {
    static RING: OnceLock<Vec<Slot>> = OnceLock::new();
    RING.get_or_init(|| (0..RING_SLOTS).map(|_| Slot::default()).collect())
}

/// A raw completed-span record as produced by the trace layer (ids still
/// interned).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawSpan {
    pub trace: u32,
    pub span: u32,
    pub parent: u32,
    pub name: u32,
    pub listing: u32,
    pub mechanism: u32,
    pub seed: u64,
    pub start_nanos: u64,
    pub dur_nanos: u64,
}

/// Writes one completed span into the ring (wait-free).
pub(crate) fn record(r: &RawSpan) {
    let slots = ring();
    let i = HEAD.fetch_add(1, Ordering::Relaxed);
    let slot = &slots[(i as usize) % RING_SLOTS];
    slot.seq.fetch_add(1, Ordering::AcqRel); // odd: writing
    slot.idx.store(i + 1, Ordering::Relaxed);
    slot.ids
        .store((r.trace as u64) << 32 | r.span as u64, Ordering::Relaxed);
    slot.parent_name
        .store((r.parent as u64) << 32 | r.name as u64, Ordering::Relaxed);
    slot.labels.store(
        (r.listing as u64) << 32 | r.mechanism as u64,
        Ordering::Relaxed,
    );
    slot.seed.store(r.seed, Ordering::Relaxed);
    slot.start_nanos.store(r.start_nanos, Ordering::Relaxed);
    slot.dur_nanos.store(r.dur_nanos, Ordering::Relaxed);
    slot.seq.fetch_add(1, Ordering::Release); // even: stable
}

/// A completed span read out of the ring, with interned ids resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Completion order across the whole ring (1-based, monotone).
    pub idx: u64,
    /// Trace (request) id this span belongs to.
    pub trace: u32,
    /// This span's id, unique within the process since the last reset.
    pub span: u32,
    /// Parent span id (0 for roots).
    pub parent: u32,
    /// Span name (root name or phase name).
    pub name: String,
    /// Listing label ("-" when not applicable).
    pub listing: String,
    /// Mechanism label ("-" when not applicable).
    pub mechanism: String,
    /// Request seed (roots only; 0 otherwise).
    pub seed: u64,
    /// Start offset from the process trace anchor, in nanoseconds.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
}

fn read_slot(slot: &Slot) -> Option<SpanData> {
    let s1 = slot.seq.load(Ordering::Acquire);
    if !s1.is_multiple_of(2) {
        return None; // mid-write
    }
    let idx = slot.idx.load(Ordering::Relaxed);
    if idx == 0 {
        return None; // never written
    }
    let ids = slot.ids.load(Ordering::Relaxed);
    let parent_name = slot.parent_name.load(Ordering::Relaxed);
    let labels = slot.labels.load(Ordering::Relaxed);
    let seed = slot.seed.load(Ordering::Relaxed);
    let start_nanos = slot.start_nanos.load(Ordering::Relaxed);
    let dur_nanos = slot.dur_nanos.load(Ordering::Relaxed);
    let s2 = slot.seq.load(Ordering::Acquire);
    if s1 != s2 {
        return None; // torn: overwritten while reading
    }
    Some(SpanData {
        idx,
        trace: (ids >> 32) as u32,
        span: ids as u32,
        parent: (parent_name >> 32) as u32,
        name: crate::trace::intern_name((parent_name & 0xffff_ffff) as u32),
        listing: crate::trace::intern_name((labels >> 32) as u32),
        mechanism: crate::trace::intern_name(labels as u32),
        seed,
        start_nanos,
        dur_nanos,
    })
}

/// Point-in-time copy of every readable ring slot, in completion order.
pub fn recorder_snapshot() -> Vec<SpanData> {
    let mut out: Vec<SpanData> = ring().iter().filter_map(read_slot).collect();
    out.sort_by_key(|s| s.idx);
    out
}

/// Number of spans ever recorded (including those already overwritten).
pub fn recorded_spans() -> u64 {
    HEAD.load(Ordering::Relaxed)
}

// --- slow-span exemplars ----------------------------------------------

/// A retained tail-latency exemplar: the slow root span, its child tree as
/// captured from the ring at completion time, and the threshold in force.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The slow root span (carries the request seed).
    pub root: SpanData,
    /// Every ring span of the same trace, in completion order.
    pub children: Vec<SpanData>,
    /// The slow threshold (nanoseconds) that this root crossed.
    pub threshold_nanos: u64,
}

static SLOW_NANOS: AtomicU64 = AtomicU64::new(u64::MAX);

fn exemplar_store() -> &'static Mutex<Vec<Exemplar>> {
    static STORE: OnceLock<Mutex<Vec<Exemplar>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sets the slow-span threshold in microseconds. Root spans at or above it
/// are captured as exemplars; `u64::MAX / 1000` or more disables capture.
pub fn set_slow_threshold_micros(us: u64) {
    SLOW_NANOS.store(us.saturating_mul(1000), Ordering::SeqCst);
}

/// The current slow-span threshold in nanoseconds.
pub fn slow_threshold_nanos() -> u64 {
    SLOW_NANOS.load(Ordering::Relaxed)
}

/// Captures an exemplar for a just-completed slow root: copies its child
/// tree out of the ring while it is still warm.
pub(crate) fn capture_exemplar(root_raw: &RawSpan) {
    let spans = recorder_snapshot();
    let children: Vec<SpanData> = spans
        .into_iter()
        .filter(|s| s.trace == root_raw.trace && s.span != root_raw.span)
        .collect();
    let root = SpanData {
        idx: 0,
        trace: root_raw.trace,
        span: root_raw.span,
        parent: root_raw.parent,
        name: crate::trace::intern_name(root_raw.name),
        listing: crate::trace::intern_name(root_raw.listing),
        mechanism: crate::trace::intern_name(root_raw.mechanism),
        seed: root_raw.seed,
        start_nanos: root_raw.start_nanos,
        dur_nanos: root_raw.dur_nanos,
    };
    let ex = Exemplar {
        root,
        children,
        threshold_nanos: slow_threshold_nanos(),
    };
    let mut store = exemplar_store().lock();
    if store.len() < MAX_EXEMPLARS {
        store.push(ex);
        return;
    }
    // Full: evict the fastest retained root if the newcomer is slower.
    if let Some((i, fastest)) = store
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.root.dur_nanos)
    {
        if fastest.root.dur_nanos < ex.root.dur_nanos {
            if let Some(slot) = store.get_mut(i) {
                *slot = ex;
            }
        }
    }
}

/// Point-in-time copy of the retained exemplars.
pub fn exemplars() -> Vec<Exemplar> {
    exemplar_store().lock().clone()
}

/// Installs a panic hook that dumps the tail of the flight recorder to
/// stderr (as JSON lines) before delegating to the previous hook, so a
/// crashing process leaves its last requests behind. Idempotent; only
/// active while tracing is enabled.
pub(crate) fn install_panic_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::is_tracing() {
                let spans = recorder_snapshot();
                let skip = spans.len().saturating_sub(64);
                let tail: Vec<SpanData> = spans.into_iter().skip(skip).collect();
                let dump = crate::export::recorder_to_jsonl(&tail);
                use std::io::Write;
                let _ = writeln!(
                    std::io::stderr(),
                    "mbp-obs flight recorder at panic ({} spans recorded, last {} shown):\n{}",
                    recorded_spans(),
                    tail.len(),
                    dump
                );
            }
            prev(info);
        }));
    });
}

/// Clears the ring, the head counter, and the exemplar store. Callers must
/// quiesce tracing first (as with the metric registry, resetting while
/// writers are active yields a mixed-generation ring, not unsoundness).
pub(crate) fn reset() {
    for slot in ring() {
        slot.seq.store(0, Ordering::SeqCst);
        slot.idx.store(0, Ordering::SeqCst);
    }
    HEAD.store(0, Ordering::SeqCst);
    exemplar_store().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(trace: u32, span: u32, parent: u32, dur: u64) -> RawSpan {
        RawSpan {
            trace,
            span,
            parent,
            name: 0,
            listing: 0,
            mechanism: 0,
            seed: 7,
            start_nanos: 10,
            dur_nanos: dur,
        }
    }

    #[test]
    fn ring_roundtrips_records_in_order() {
        let _g = crate::test_support::serial();
        reset();
        for k in 0..10u32 {
            record(&raw(1, k + 1, 0, k as u64));
        }
        let spans = recorder_snapshot();
        assert_eq!(spans.len(), 10);
        assert!(spans.windows(2).all(|w| w[0].idx < w[1].idx));
        assert_eq!(spans[0].span, 1);
        assert_eq!(spans[9].span, 10);
        assert_eq!(spans[0].seed, 7);
        reset();
        assert!(recorder_snapshot().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_newest_slots() {
        let _g = crate::test_support::serial();
        reset();
        let n = RING_SLOTS as u32 + 100;
        for k in 0..n {
            record(&raw(1, k + 1, 0, 0));
        }
        let spans = recorder_snapshot();
        assert_eq!(spans.len(), RING_SLOTS);
        // The oldest 100 records were overwritten.
        assert!(spans.iter().all(|s| s.span > 100));
        assert_eq!(recorded_spans(), n as u64);
        reset();
    }

    #[test]
    fn exemplar_store_keeps_the_slowest_roots() {
        let _g = crate::test_support::serial();
        reset();
        set_slow_threshold_micros(0);
        for k in 0..(MAX_EXEMPLARS as u32 + 8) {
            capture_exemplar(&raw(100 + k, 1, 0, k as u64 * 1000));
        }
        let exs = exemplars();
        assert_eq!(exs.len(), MAX_EXEMPLARS);
        // The 8 fastest (dur 0..7000) were evicted.
        assert!(exs.iter().all(|e| e.root.dur_nanos >= 8_000));
        set_slow_threshold_micros(u64::MAX / 1000);
        reset();
    }
}
