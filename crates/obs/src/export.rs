//! Exporters: metric snapshots as JSON or Prometheus text, events as
//! JSON lines, and flight-recorder spans as JSON lines or Chrome
//! `trace_event` JSON. All serialization is hand-rolled (no external
//! crates).

use crate::{Event, Snapshot, SpanData};
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number for `v`, or `null` when non-finite (JSON has no NaN/Inf).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_num).unwrap_or_else(|| "null".to_string())
}

/// Renders a snapshot as a JSON object with `counters`, `gauges`, and
/// `histograms` maps. Histograms carry count/sum/min/max/p50/p90/p99.
pub fn to_json(s: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(name));
    }
    out.push_str(if s.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", esc(name), json_num(*v));
    }
    out.push_str(if s.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"histograms\": {");
    for (i, h) in s.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            esc(&h.name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            json_opt(h.p50),
            json_opt(h.p90),
            json_opt(h.p99),
        );
    }
    if s.labeled.is_empty() {
        out.push_str(if s.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
    } else {
        // The `labeled` section is emitted only when labeled series exist,
        // keeping the long-standing three-section golden format intact for
        // consumers that predate labels.
        out.push_str(if s.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"labeled\": {");
        for (i, l) in s.labeled.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let mut flat = String::from(&l.name);
            flat.push('{');
            for (j, (k, v)) in l.labels.iter().enumerate() {
                let jsep = if j == 0 { "" } else { "," };
                let _ = write!(flat, "{jsep}{k}={v}");
            }
            flat.push('}');
            let h = &l.hist;
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                esc(&flat),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_opt(h.p50),
                json_opt(h.p90),
                json_opt(h.p99),
            );
        }
        out.push_str("\n  }\n");
    }
    out.push('}');
    out
}

/// Prometheus metric name: dots and other invalid characters become `_`.
/// A leading digit is prefixed with `_` (names must not start with one).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus label name: like metric names, invalid characters become `_`
/// and a leading digit is prefixed.
fn prom_label_name(name: &str) -> String {
    prom_name(name)
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and line feed must be escaped; everything else
/// (including carriage returns and tabs) passes through verbatim.
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a `{k="v",...}` label block (empty string for no labels), with
/// names sanitized and values escaped.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", prom_label_name(k), prom_label_value(v));
    }
    out.push('}');
    out
}

/// Prometheus sample value (the text format allows NaN and signed Inf).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format: counters
/// and gauges as single samples, histograms as summaries with `quantile`
/// labels plus `_sum` and `_count` series.
pub fn to_prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &s.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", prom_num(*v));
    }
    for h in &s.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            if let Some(v) = v {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", prom_num(v));
            }
        }
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", prom_num(h.sum), h.count);
    }
    let mut last_labeled_name: Option<&str> = None;
    for l in &s.labeled {
        let n = prom_name(&l.name);
        if last_labeled_name != Some(l.name.as_str()) {
            let _ = writeln!(out, "# TYPE {n} summary");
            last_labeled_name = Some(l.name.as_str());
        }
        let h = &l.hist;
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            if let Some(v) = v {
                let q_str = format!("{q}");
                let _ = writeln!(
                    out,
                    "{n}{} {}",
                    prom_labels(&l.labels, Some(("quantile", &q_str))),
                    prom_num(v)
                );
            }
        }
        let labels = prom_labels(&l.labels, None);
        let _ = writeln!(
            out,
            "{n}_sum{labels} {}\n{n}_count{labels} {}",
            prom_num(h.sum),
            h.count
        );
    }
    out
}

/// Renders events as JSON lines (one object per event), the `--trace`
/// drain format.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"unix_micros\": {}, \"level\": \"{}\", \"target\": \"{}\", \
             \"message\": \"{}\", \"fields\": {{",
            e.seq,
            e.unix_micros,
            e.level.as_str(),
            esc(&e.target),
            esc(&e.message),
        );
        for (i, (k, v)) in e.fields.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": \"{}\"", esc(k), esc(v));
        }
        out.push_str("}}\n");
    }
    out
}

/// Renders flight-recorder spans as JSON lines (one object per span), the
/// `mbp-market trace` dump format.
pub fn recorder_to_jsonl(spans: &[SpanData]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = writeln!(
            out,
            "{{\"idx\": {}, \"trace\": {}, \"span\": {}, \"parent\": {}, \"name\": \"{}\", \
             \"listing\": \"{}\", \"mechanism\": \"{}\", \"seed\": {}, \"start_ns\": {}, \
             \"dur_ns\": {}}}",
            s.idx,
            s.trace,
            s.span,
            s.parent,
            esc(&s.name),
            esc(&s.listing),
            esc(&s.mechanism),
            s.seed,
            s.start_nanos,
            s.dur_nanos,
        );
    }
    out
}

/// Renders flight-recorder spans as Chrome `trace_event` JSON (the format
/// `chrome://tracing` / Perfetto load): one complete (`"ph": "X"`) event
/// per span with microsecond timestamps, one track (`tid`) per trace id so
/// each request reads as its own lane.
pub fn recorder_to_chrome_trace(spans: &[SpanData]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n  {{\"name\": \"{}\", \"cat\": \"mbp\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"span\": {}, \"parent\": {}, \
             \"listing\": \"{}\", \"mechanism\": \"{}\", \"seed\": {}}}}}",
            esc(&s.name),
            json_num(s.start_nanos as f64 / 1000.0),
            json_num(s.dur_nanos as f64 / 1000.0),
            s.trace,
            s.span,
            s.parent,
            esc(&s.listing),
            esc(&s.mechanism),
            s.seed,
        );
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, LabeledSeriesSnapshot, Verbosity};

    fn sample_hist(name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.into(),
            count: 12,
            sum: 0.024,
            min: 0.001,
            max: 0.004,
            p50: Some(0.002),
            p90: Some(0.0035),
            p99: Some(0.004),
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("mbp.core.buy.count".into(), 12)],
            gauges: vec![("mbp.core.revenue.total".into(), 34.5)],
            histograms: vec![sample_hist("mbp.core.buy.seconds")],
            labeled: vec![],
        }
    }

    #[test]
    fn json_golden_snippets() {
        let json = to_json(&sample_snapshot());
        assert!(json.contains("\"mbp.core.buy.count\": 12"), "{json}");
        assert!(json.contains("\"mbp.core.revenue.total\": 34.5"), "{json}");
        assert!(
            json.contains("\"mbp.core.buy.seconds\": {\"count\": 12, \"sum\": 0.024"),
            "{json}"
        );
        assert!(json.contains("\"p50\": 0.002"), "{json}");
        // Braces balance — cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn json_empty_snapshot_is_valid() {
        let json = to_json(&Snapshot::default());
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn json_escapes_and_nulls() {
        let s = Snapshot {
            counters: vec![("weird\"name\\".into(), 1)],
            gauges: vec![("g".into(), f64::NAN)],
            histograms: vec![],
            labeled: vec![],
        };
        let json = to_json(&s);
        assert!(json.contains("\"weird\\\"name\\\\\": 1"), "{json}");
        assert!(json.contains("\"g\": null"), "{json}");
    }

    fn labeled_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            labeled: vec![LabeledSeriesSnapshot {
                name: "mbp.trace.phase.seconds".into(),
                labels: vec![
                    ("listing".into(), "weird\"quote".into()),
                    ("mechanism".into(), "back\\slash".into()),
                    ("phase".into(), "multi\nline".into()),
                ],
                hist: sample_hist("mbp.trace.phase.seconds"),
            }],
        }
    }

    #[test]
    fn json_labeled_section_only_when_present() {
        // Absent: the three-section golden shape is untouched.
        let json = to_json(&sample_snapshot());
        assert!(!json.contains("\"labeled\""), "{json}");
        // Present: flattened series keys, JSON-escaped.
        let json = to_json(&labeled_snapshot());
        assert!(json.contains("\"labeled\""), "{json}");
        assert!(
            json.contains("mbp.trace.phase.seconds{listing=weird\\\"quote"),
            "{json}"
        );
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let prom = to_prometheus(&labeled_snapshot());
        // Quotes, backslashes, and newlines in label values are escaped per
        // the text exposition format; each sample stays on one line.
        assert!(prom.contains("listing=\"weird\\\"quote\""), "{prom}");
        assert!(prom.contains("mechanism=\"back\\\\slash\""), "{prom}");
        assert!(prom.contains("phase=\"multi\\nline\""), "{prom}");
        assert!(
            prom.contains("mbp_trace_phase_seconds_count{listing=\"weird\\\"quote\""),
            "{prom}"
        );
        let with_quantile = prom
            .lines()
            .find(|l| l.contains("quantile=\"0.5\""))
            .expect("quantile sample");
        assert!(with_quantile.contains("phase=\"multi\\nline\""), "{prom}");
        assert!(with_quantile.ends_with(" 0.002"), "{with_quantile}");
        // The TYPE header is emitted once for the labeled family.
        assert_eq!(
            prom.matches("# TYPE mbp_trace_phase_seconds summary")
                .count(),
            1,
            "{prom}"
        );
    }

    #[test]
    fn prometheus_names_never_start_with_a_digit() {
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_label_name("0.phase"), "_0_phase");
        assert_eq!(prom_name("mbp.core.buy"), "mbp_core_buy");
    }

    fn sample_spans() -> Vec<SpanData> {
        vec![
            SpanData {
                idx: 1,
                trace: 1,
                span: 2,
                parent: 1,
                name: "lookup".into(),
                listing: "l\"1".into(),
                mechanism: "gaussian".into(),
                seed: 0,
                start_nanos: 1_500,
                dur_nanos: 250,
            },
            SpanData {
                idx: 2,
                trace: 1,
                span: 1,
                parent: 0,
                name: "quote".into(),
                listing: "l\"1".into(),
                mechanism: "gaussian".into(),
                seed: 77,
                start_nanos: 1_000,
                dur_nanos: 2_000,
            },
        ]
    }

    #[test]
    fn recorder_jsonl_one_line_per_span() {
        let jsonl = recorder_to_jsonl(&sample_spans());
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"name\": \"quote\""), "{jsonl}");
        assert!(jsonl.contains("\"seed\": 77"), "{jsonl}");
        assert!(jsonl.contains("\"listing\": \"l\\\"1\""), "{jsonl}");
        assert!(jsonl.contains("\"dur_ns\": 250"), "{jsonl}");
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let json = recorder_to_chrome_trace(&sample_spans());
        assert!(json.starts_with("{\"traceEvents\": ["), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ts\": 1.5"), "{json}");
        assert!(json.contains("\"dur\": 2"), "{json}");
        assert!(json.contains("\"tid\": 1"), "{json}");
        assert!(json.contains("\"displayTimeUnit\": \"ms\""), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        // Empty input still yields a valid document.
        let empty = recorder_to_chrome_trace(&[]);
        assert!(empty.contains("\"traceEvents\": ["), "{empty}");
    }

    #[test]
    fn prometheus_golden_snippets() {
        let prom = to_prometheus(&sample_snapshot());
        assert!(prom.contains("# TYPE mbp_core_buy_count counter"), "{prom}");
        assert!(prom.contains("mbp_core_buy_count 12"), "{prom}");
        assert!(
            prom.contains("# TYPE mbp_core_revenue_total gauge"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE mbp_core_buy_seconds summary"),
            "{prom}"
        );
        assert!(
            prom.contains("mbp_core_buy_seconds{quantile=\"0.5\"} 0.002"),
            "{prom}"
        );
        assert!(prom.contains("mbp_core_buy_seconds_sum 0.024"), "{prom}");
        assert!(prom.contains("mbp_core_buy_seconds_count 12"), "{prom}");
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events = vec![Event {
            seq: 3,
            unix_micros: 1_700_000_000_000_000,
            level: Verbosity::Debug,
            target: "mbp.core.adaptive".into(),
            message: "epoch \"done\"".into(),
            fields: vec![("epoch".into(), "2".into())],
        }];
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"seq\": 3"), "{jsonl}");
        assert!(jsonl.contains("\"level\": \"debug\""), "{jsonl}");
        assert!(
            jsonl.contains("\"message\": \"epoch \\\"done\\\"\""),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"fields\": {\"epoch\": \"2\"}"), "{jsonl}");
    }
}
