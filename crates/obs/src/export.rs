//! Exporters: metric snapshots as JSON or Prometheus text, events as
//! JSON lines. All serialization is hand-rolled (no external crates).

use crate::{Event, Snapshot};
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number for `v`, or `null` when non-finite (JSON has no NaN/Inf).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_num).unwrap_or_else(|| "null".to_string())
}

/// Renders a snapshot as a JSON object with `counters`, `gauges`, and
/// `histograms` maps. Histograms carry count/sum/min/max/p50/p90/p99.
pub fn to_json(s: &Snapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {v}", esc(name));
    }
    out.push_str(if s.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", esc(name), json_num(*v));
    }
    out.push_str(if s.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"histograms\": {");
    for (i, h) in s.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            esc(&h.name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            json_opt(h.p50),
            json_opt(h.p90),
            json_opt(h.p99),
        );
    }
    out.push_str(if s.histograms.is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });
    out.push('}');
    out
}

/// Prometheus metric name: dots and other invalid characters become `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Prometheus sample value (the text format allows NaN and signed Inf).
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format: counters
/// and gauges as single samples, histograms as summaries with `quantile`
/// labels plus `_sum` and `_count` series.
pub fn to_prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &s.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", prom_num(*v));
    }
    for h in &s.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            if let Some(v) = v {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", prom_num(v));
            }
        }
        let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", prom_num(h.sum), h.count);
    }
    out
}

/// Renders events as JSON lines (one object per event), the `--trace`
/// drain format.
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"unix_micros\": {}, \"level\": \"{}\", \"target\": \"{}\", \
             \"message\": \"{}\", \"fields\": {{",
            e.seq,
            e.unix_micros,
            e.level.as_str(),
            esc(&e.target),
            esc(&e.message),
        );
        for (i, (k, v)) in e.fields.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": \"{}\"", esc(k), esc(v));
        }
        out.push_str("}}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, Verbosity};

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("mbp.core.buy.count".into(), 12)],
            gauges: vec![("mbp.core.revenue.total".into(), 34.5)],
            histograms: vec![HistogramSnapshot {
                name: "mbp.core.buy.seconds".into(),
                count: 12,
                sum: 0.024,
                min: 0.001,
                max: 0.004,
                p50: Some(0.002),
                p90: Some(0.0035),
                p99: Some(0.004),
            }],
        }
    }

    #[test]
    fn json_golden_snippets() {
        let json = to_json(&sample_snapshot());
        assert!(json.contains("\"mbp.core.buy.count\": 12"), "{json}");
        assert!(json.contains("\"mbp.core.revenue.total\": 34.5"), "{json}");
        assert!(
            json.contains("\"mbp.core.buy.seconds\": {\"count\": 12, \"sum\": 0.024"),
            "{json}"
        );
        assert!(json.contains("\"p50\": 0.002"), "{json}");
        // Braces balance — cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn json_empty_snapshot_is_valid() {
        let json = to_json(&Snapshot::default());
        assert_eq!(
            json,
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}"
        );
    }

    #[test]
    fn json_escapes_and_nulls() {
        let s = Snapshot {
            counters: vec![("weird\"name\\".into(), 1)],
            gauges: vec![("g".into(), f64::NAN)],
            histograms: vec![],
        };
        let json = to_json(&s);
        assert!(json.contains("\"weird\\\"name\\\\\": 1"), "{json}");
        assert!(json.contains("\"g\": null"), "{json}");
    }

    #[test]
    fn prometheus_golden_snippets() {
        let prom = to_prometheus(&sample_snapshot());
        assert!(prom.contains("# TYPE mbp_core_buy_count counter"), "{prom}");
        assert!(prom.contains("mbp_core_buy_count 12"), "{prom}");
        assert!(
            prom.contains("# TYPE mbp_core_revenue_total gauge"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE mbp_core_buy_seconds summary"),
            "{prom}"
        );
        assert!(
            prom.contains("mbp_core_buy_seconds{quantile=\"0.5\"} 0.002"),
            "{prom}"
        );
        assert!(prom.contains("mbp_core_buy_seconds_sum 0.024"), "{prom}");
        assert!(prom.contains("mbp_core_buy_seconds_count 12"), "{prom}");
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events = vec![Event {
            seq: 3,
            unix_micros: 1_700_000_000_000_000,
            level: Verbosity::Debug,
            target: "mbp.core.adaptive".into(),
            message: "epoch \"done\"".into(),
            fields: vec![("epoch".into(), "2".into())],
        }];
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"seq\": 3"), "{jsonl}");
        assert!(jsonl.contains("\"level\": \"debug\""), "{jsonl}");
        assert!(
            jsonl.contains("\"message\": \"epoch \\\"done\\\"\""),
            "{jsonl}"
        );
        assert!(jsonl.contains("\"fields\": {\"epoch\": \"2\"}"), "{jsonl}");
    }
}
