//! Dependency-free observability for the mbp workspace.
//!
//! Three complementary instruments share one global, process-wide state:
//!
//! * a **metrics registry** ([`inc`], [`counter_add`], [`gauge_set`],
//!   [`gauge_add`], [`observe`]) of named counters, gauges, and fixed-bucket
//!   log-scale histograms with interpolated quantiles;
//! * **spans** ([`span`]) — RAII timers that record wall time into a
//!   `<name>.seconds` histogram and track parent/child nesting per thread;
//! * a **structured event log** ([`event`]) — a bounded ring buffer of
//!   timestamped key=value events, drainable as JSON lines.
//!
//! Everything is off by default. [`enable`] flips a single atomic flag; when
//! disabled, every recording call returns after one relaxed atomic load, so
//! instrumented hot paths (e.g. `Broker::buy`) pay no measurable cost.
//!
//! Metric names follow `mbp.<crate>.<unit>`, e.g. `mbp.core.buy.count`,
//! `mbp.core.buy.seconds`, `mbp.optim.revenue.iterations`. Exporters live in
//! [`export`]: Prometheus text ([`to_prometheus`]), JSON ([`to_json`]), and
//! JSON-lines for events ([`events_to_jsonl`]); a human-readable table
//! renderer lives in `mbp_bench::report`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
pub mod export;
mod recorder;
mod registry;
mod span;
pub mod trace;

pub use events::{
    drain_events, dropped_events, set_verbosity, verbosity, Event, Verbosity, RING_CAPACITY,
};
pub use export::{
    events_to_jsonl, recorder_to_chrome_trace, recorder_to_jsonl, to_json, to_prometheus,
};
pub use recorder::{
    exemplars, recorded_spans, recorder_snapshot, set_slow_threshold_micros, slow_threshold_nanos,
    Exemplar, SpanData, MAX_EXEMPLARS, RING_SLOTS,
};
pub use registry::{
    HistogramSnapshot, LabeledSeriesSnapshot, Snapshot, BUCKETS, MAX_LABEL_SETS, OVERFLOW_LABEL,
};
pub use span::{span, Span};
pub use trace::{
    canonical_tree, phase, phase_for, set_request_seed, trace_root, trace_root_hinted, Phase,
    PhaseGuard, TraceRoot,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);

/// Turns recording on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enables recording (equivalent to `set_enabled(true)`).
pub fn enable() {
    set_enabled(true);
}

/// Disables recording; subsequent calls are single-atomic-load no-ops.
pub fn disable() {
    set_enabled(false);
}

/// Whether recording is currently enabled.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns causal tracing (span contexts, the flight-recorder ring, labeled
/// phase histograms) on or off. Tracing additionally requires recording to
/// be enabled; with tracing off, every `trace_root`/`phase` call is a
/// single relaxed load plus branch. Enabling installs the `mbp-par`
/// context-propagation hook and the panic-time flight-recorder dump
/// (both once per process).
pub fn set_tracing(on: bool) {
    if on {
        trace::install_par_hook();
        recorder::install_panic_hook();
    }
    TRACING.store(on, Ordering::SeqCst);
}

/// Whether causal tracing is currently active (requires [`is_enabled`]).
#[inline(always)]
pub fn is_tracing() -> bool {
    is_enabled() && TRACING.load(Ordering::Relaxed)
}

/// Increments the counter `name` by one.
#[inline]
pub fn inc(name: &str) {
    if is_enabled() {
        registry::counter(name).add(1);
    }
}

/// Adds `n` to the counter `name` (wrapping on `u64` overflow).
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if is_enabled() {
        registry::counter(name).add(n);
    }
}

/// Sets the gauge `name` to `v`.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if is_enabled() {
        registry::gauge(name).set(v);
    }
}

/// Adds `d` (possibly negative) to the gauge `name`.
#[inline]
pub fn gauge_add(name: &str, d: f64) {
    if is_enabled() {
        registry::gauge(name).add(d);
    }
}

/// Records `v` into the histogram `name`. Non-finite and negative values
/// are ignored (histograms hold durations and other non-negative units).
#[inline]
pub fn observe(name: &str, v: f64) {
    if is_enabled() {
        registry::histogram(name).observe(v);
    }
}

/// Records a structured event at `level` (dropped unless recording is
/// enabled and `level <= verbosity()`).
pub fn event(level: Verbosity, target: &str, message: &str, fields: &[(&str, String)]) {
    events::record(level, target, message, fields);
}

/// Takes a point-in-time copy of every registered metric, sorted by name.
pub fn snapshot() -> Snapshot {
    registry::snapshot()
}

/// Clears all metrics, buffered events, the flight-recorder ring and
/// exemplars, and rewinds the trace/span id counters. The enabled/tracing
/// flags, verbosity level, and slow threshold are left as-is, so callers
/// can `reset()` between measurement phases without re-arming. Quiesce
/// in-flight traced requests first.
pub fn reset() {
    registry::reset();
    events::reset();
    recorder::reset();
    trace::reset();
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Obs state is global; tests that touch it serialize on this lock so
    //! the default parallel test runner cannot interleave them.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    pub fn serial() -> MutexGuard<'static, ()> {
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_record_nothing() {
        let _g = test_support::serial();
        reset();
        disable();
        inc("mbp.test.disabled.count");
        gauge_set("mbp.test.disabled.gauge", 1.0);
        observe("mbp.test.disabled.seconds", 0.5);
        event(Verbosity::Error, "mbp.test", "dropped", &[]);
        let snap = snapshot();
        assert!(
            snap.is_empty(),
            "disabled recording created metrics: {snap:?}"
        );
        assert!(drain_events().is_empty());
    }

    #[test]
    fn disabled_fast_path_is_cheap() {
        let _g = test_support::serial();
        reset();
        disable();
        // Acceptance: the disabled registry adds no measurable overhead.
        // 10M disabled incs must complete in well under a second even on a
        // loaded CI box (each is one relaxed atomic load + branch).
        let start = std::time::Instant::now();
        for _ in 0..10_000_000u64 {
            inc(std::hint::black_box("mbp.core.buy.count"));
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "10M disabled incs took {elapsed:?}"
        );
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_roundtrip_counters_gauges_histograms() {
        let _g = test_support::serial();
        reset();
        enable();
        inc("mbp.test.count");
        counter_add("mbp.test.count", 4);
        gauge_set("mbp.test.gauge", 2.5);
        gauge_add("mbp.test.gauge", -0.5);
        for v in [0.001, 0.002, 0.004] {
            observe("mbp.test.seconds", v);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("mbp.test.count"), Some(5));
        assert_eq!(snap.gauge("mbp.test.gauge"), Some(2.0));
        let h = snap.histogram("mbp.test.seconds").expect("histogram");
        assert_eq!(h.count, 3);
        assert!((h.sum - 0.007).abs() < 1e-12);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 0.004);
        disable();
        reset();
    }

    #[test]
    fn counter_wraps_on_overflow() {
        let _g = test_support::serial();
        reset();
        enable();
        counter_add("mbp.test.wrap", u64::MAX);
        inc("mbp.test.wrap");
        inc("mbp.test.wrap");
        assert_eq!(snapshot().counter("mbp.test.wrap"), Some(1));
        disable();
        reset();
    }

    #[test]
    fn reset_preserves_enabled_flag() {
        let _g = test_support::serial();
        enable();
        inc("mbp.test.reset");
        reset();
        assert!(is_enabled());
        assert!(snapshot().is_empty());
        disable();
    }
}
