//! Bounded structured event log: a ring buffer of timestamped key=value
//! events, filtered by a global verbosity level.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Maximum buffered events; older events are evicted first.
pub const RING_CAPACITY: usize = 4096;

/// Event severity, doubling as the global filter threshold: an event is
/// kept when its level is at most [`verbosity()`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Nothing is recorded.
    Off = 0,
    /// Failures only.
    Error = 1,
    /// High-level progress (the default).
    Info = 2,
    /// Per-step diagnostics.
    Debug = 3,
    /// Everything, including per-span records.
    Trace = 4,
}

impl Verbosity {
    /// Lower-case name, as emitted in JSON lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Verbosity::Off => "off",
            Verbosity::Error => "error",
            Verbosity::Info => "info",
            Verbosity::Debug => "debug",
            Verbosity::Trace => "trace",
        }
    }

    fn from_u8(b: u8) -> Verbosity {
        match b {
            0 => Verbosity::Off,
            1 => Verbosity::Error,
            2 => Verbosity::Info,
            3 => Verbosity::Debug,
            _ => Verbosity::Trace,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Info as u8);

/// Sets the global event filter threshold.
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// Current global event filter threshold.
pub fn verbosity() -> Verbosity {
    Verbosity::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// One structured log event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (gaps reveal ring evictions).
    pub seq: u64,
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub unix_micros: u64,
    /// Severity this event was recorded at.
    pub level: Verbosity,
    /// Dotted subsystem name, e.g. `mbp.core.adaptive`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key=value payload.
    pub fields: Vec<(String, String)>,
}

struct Ring {
    events: VecDeque<Event>,
    seq: u64,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::with_capacity(RING_CAPACITY),
            seq: 0,
            dropped: 0,
        })
    })
}

pub(crate) fn record(level: Verbosity, target: &str, message: &str, fields: &[(&str, String)]) {
    if !crate::is_enabled() || level == Verbosity::Off || level > verbosity() {
        return;
    }
    let unix_micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut r = ring().lock();
    let seq = r.seq;
    r.seq += 1;
    if r.events.len() == RING_CAPACITY {
        r.events.pop_front();
        r.dropped += 1;
    }
    r.events.push_back(Event {
        seq,
        unix_micros,
        level,
        target: target.to_string(),
        message: message.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Removes and returns all buffered events, oldest first.
pub fn drain_events() -> Vec<Event> {
    ring().lock().events.drain(..).collect()
}

/// Number of events evicted from the ring since the last [`crate::reset`].
pub fn dropped_events() -> u64 {
    ring().lock().dropped
}

pub(crate) fn reset() {
    let mut r = ring().lock();
    r.events.clear();
    r.seq = 0;
    r.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn ring_evicts_oldest_first() {
        let _g = test_support::serial();
        crate::reset();
        crate::enable();
        set_verbosity(Verbosity::Info);
        let extra = 10;
        for i in 0..RING_CAPACITY + extra {
            record(Verbosity::Info, "mbp.test", "e", &[("i", i.to_string())]);
        }
        assert_eq!(dropped_events(), extra as u64);
        let drained = drain_events();
        assert_eq!(drained.len(), RING_CAPACITY);
        // The survivors are the newest RING_CAPACITY events, in order.
        assert_eq!(drained[0].seq, extra as u64);
        assert_eq!(drained[0].fields[0].1, extra.to_string());
        assert_eq!(
            drained.last().unwrap().seq,
            (RING_CAPACITY + extra - 1) as u64
        );
        for pair in drained.windows(2) {
            assert_eq!(pair[0].seq + 1, pair[1].seq);
        }
        crate::disable();
        crate::reset();
    }

    #[test]
    fn verbosity_filters_levels() {
        let _g = test_support::serial();
        crate::reset();
        crate::enable();
        set_verbosity(Verbosity::Info);
        record(Verbosity::Error, "t", "kept", &[]);
        record(Verbosity::Info, "t", "kept", &[]);
        record(Verbosity::Debug, "t", "dropped", &[]);
        record(Verbosity::Trace, "t", "dropped", &[]);
        assert_eq!(drain_events().len(), 2);

        set_verbosity(Verbosity::Off);
        record(Verbosity::Error, "t", "dropped", &[]);
        assert!(drain_events().is_empty());

        set_verbosity(Verbosity::Trace);
        record(Verbosity::Trace, "t", "kept", &[]);
        assert_eq!(drain_events().len(), 1);

        set_verbosity(Verbosity::Info);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Verbosity::Off < Verbosity::Error);
        assert!(Verbosity::Error < Verbosity::Info);
        assert!(Verbosity::Info < Verbosity::Debug);
        assert!(Verbosity::Debug < Verbosity::Trace);
        assert_eq!(Verbosity::from_u8(3), Verbosity::Debug);
        assert_eq!(Verbosity::Debug.as_str(), "debug");
    }
}
